"""Quantized CNN inference on SIMDRAM (paper §5: VGG-13/16, LeNet-5).

Runs one real convolution + ReLU layer slice on the functional simulator
(multiply-accumulate µPrograms over one lane per output pixel), then
models full VGG-13, VGG-16 and LeNet-5 inference from their layer shapes
on all platforms.

Run:  python examples/cnn_inference.py
"""

import numpy as np

from repro import DramGeometry, Simdram, SimdramConfig
from repro.apps import (
    KernelHarness,
    conv2d_simdram,
    lenet_kernel,
    relu_simdram,
    vgg13_kernel,
    vgg16_kernel,
)
from repro.perf.platforms import cpu_skylake, gpu_volta


def main() -> None:
    config = SimdramConfig(
        geometry=DramGeometry.sim_small(cols=256, data_rows=512, banks=2))
    sim = Simdram(config, seed=6)

    rng = np.random.default_rng(3)
    image = rng.integers(0, 128, (14, 14))
    kernel = rng.integers(-4, 5, (3, 3))

    feature_map = conv2d_simdram(sim, image, kernel)
    activated = relu_simdram(sim, feature_map)
    golden = np.zeros_like(feature_map)
    out = feature_map.shape[0]
    for y in range(out):
        for x in range(out):
            golden[y, x] = (image[y:y + 3, x:x + 3] * kernel).sum()
    assert np.array_equal(feature_map, golden)
    assert np.array_equal(activated, np.maximum(golden, 0))
    print(f"conv 3x3 + ReLU over a {image.shape[0]}x{image.shape[1]} "
          f"input: verified on the simulator "
          f"({out * out} output pixels = {out * out} SIMD lanes)")

    print("\nmodeled full-network inference (batch=1, 8-bit weights):")
    harness = KernelHarness()
    for model in (lenet_kernel(), vgg13_kernel(), vgg16_kernel()):
        cpu = harness.measure_host(model, cpu_skylake())
        gpu = harness.measure_host(model, gpu_volta())
        ambit = harness.measure_pim(model, "ambit", 16)
        simdram = harness.measure_pim(model, "simdram", 16)
        print(f"  {model.name:8s}: CPU {cpu.time_ms:9.1f} ms | "
              f"GPU {gpu.time_ms:8.1f} ms | "
              f"Ambit {ambit.time_ms:9.1f} ms | "
              f"SIMDRAM:16 {simdram.time_ms:9.1f} ms "
              f"({ambit.time_ms / simdram.time_ms:.2f}x vs Ambit)")


if __name__ == "__main__":
    main()
