"""Defining a brand-new SIMDRAM operation (the paper's flexibility claim).

SIMDRAM's framework is not limited to its built-in 16 operations: any
combinational function can be registered as a circuit factory, and the
framework synthesizes the MAJ/NOT implementation (Step 1), compiles the
µProgram (Step 2), assigns a bbop opcode, and executes it (Step 3) with
no hardware change.

Here we add `clamp_add`: saturating unsigned addition, useful for image
processing (it fuses the add + compare + select of brightness adjustment
into ONE µProgram, halving command counts).

Run:  python examples/custom_operation.py
"""

import numpy as np

from repro import DramGeometry, Simdram, SimdramConfig
from repro.logic import library


def build_clamp_add(circuit, operands, style):
    """Saturating add: min(a + b, 2^n - 1), built from library pieces."""
    a, b = operands
    total, carry = library.ripple_add(circuit, a, b, style=style)
    # On carry-out, force all result bits to 1 (saturate).
    return [circuit.or_(bit, carry) for bit in total]


def golden_clamp_add(inputs, width):
    return np.minimum(inputs[0] + inputs[1], (1 << width) - 1)


def main() -> None:
    config = SimdramConfig(
        geometry=DramGeometry.sim_small(cols=128, data_rows=512, banks=2))
    sim = Simdram(config, seed=2)

    spec = sim.register_operation(
        "clamp_add", arity=2, build=build_clamp_add,
        golden=golden_clamp_add,
        description="saturating unsigned addition")
    print(f"registered operation {spec.name!r} "
          f"({len(sim.operations)} ops now in the catalog)")

    rng = np.random.default_rng(1)
    a_host = rng.integers(0, 256, 200)
    b_host = rng.integers(0, 256, 200)
    a = sim.array(a_host, width=8)
    b = sim.array(b_host, width=8)
    out = sim.run("clamp_add", a, b)
    assert np.array_equal(out.to_numpy(), golden_clamp_add(
        [a_host, b_host], 8))
    print("clamp_add(200 elements): results match the golden model")

    program = sim.compile("clamp_add", 8)
    print(f"\ncompiled µProgram: {program.n_aap} AAPs + {program.n_ap} APs, "
          f"{program.n_temp_rows} temp rows")
    print("first µOps of the generated program:")
    print(program.listing(max_ops=10))

    # The fused op beats the 3-op sequence it replaces:
    three_op = sum(sim.compile(op, 8).n_commands
                   for op in ("add", "gt", "if_else"))
    print(f"\nfused: {program.n_commands} commands vs "
          f"{three_op} for separate add+gt+if_else")


if __name__ == "__main__":
    main()
