#!/usr/bin/env python
"""Scale-out serving: replica processes, consistent hashing, failover.

Everything below the serving layer shares one Python process, so the
GIL caps served throughput no matter how many modules a cluster has.
This example runs the replication tier end to end:

* a :class:`repro.serve.router.ReplicaRouter` spawns 3 **replica
  processes** — each a full :class:`repro.SimdramCluster` — and places
  packed dispatches by consistent-hashing the kernel identity, so a
  given kernel keeps hitting the replica whose caches are hot for it;
* tensors travel through POSIX shared memory; work descriptors (op
  name or expression DAG + width + engine name) travel over pipes;
* mid-run, replica 0 is SIGKILLed.  The router's death handler
  re-homes its in-flight dispatches onto survivors, reusing each
  dispatch's original future — callers never see the crash;
* every result is verified bit-exact against numpy.

Run with::

    PYTHONPATH=src python examples/replicated_serving.py
"""

import time

import numpy as np

from repro import DramGeometry, SimdramConfig
from repro.serve import ServeConfig, SimdramService
from repro.serve.router import ReplicaRouter

WIDTH = 8
LANES = 512
N_REQUESTS = 36
OPS = {
    "add": lambda a, b: (a + b) % 256,
    "sub": lambda a, b: (a - b) % 256,
    "min": np.minimum,
    "max": np.maximum,
}


def main() -> int:
    rng = np.random.default_rng(7)
    config = SimdramConfig(geometry=DramGeometry.sim_small(
        cols=32, data_rows=256, banks=2))
    requests = []
    for i in range(N_REQUESTS):
        op = list(OPS)[i % len(OPS)]
        a = rng.integers(0, 128, LANES)
        b = rng.integers(0, 128, LANES)
        requests.append((op, a, b))

    manifest = [(op, WIDTH) for op in OPS]
    with ReplicaRouter(3, config=config, manifest=manifest) as router, \
            SimdramService(router,
                           ServeConfig(max_wait_s=0.001)) as service:
        handles = [service.submit(op, a, b, width=WIDTH)
                   for op, a, b in requests]

        # Put one replica down while its work is in flight.
        deadline = time.monotonic() + 30
        while (time.monotonic() < deadline
               and router.replicas.n_inflight(0) == 0
               and not all(h.done() for h in handles)):
            time.sleep(0.0005)
        router.kill(0)

        n_ok = sum(
            bool(np.array_equal(handle.result(300) % 256,
                                OPS[op](a, b)))
            for handle, (op, a, b) in zip(handles, requests))
        stats = service.stats()

    tier = stats["replica_tier"]
    print("scale-out serving with a mid-run replica kill")
    print(f"  requests verified : {n_ok} / {N_REQUESTS}")
    print(f"  replicas alive    : {tier['alive']} of 3 spawned")
    print(f"  replica deaths    : {stats['failover']['replica_deaths']}")
    print(f"  requeued          : "
          f"{stats['failover']['requeued_requests']} dispatches "
          f"re-homed onto survivors")
    for rid, counters in sorted(stats["replicas"].items()):
        print(f"  replica {rid}         : "
              f"{counters['dispatches']} dispatches, "
              f"{counters['requests']} requests")
    print(f"  result            : "
          f"{'OK — failover is invisible to callers' if n_ok == N_REQUESTS else 'MISMATCH'}")
    return 0 if n_ok == N_REQUESTS else 1


if __name__ == "__main__":
    raise SystemExit(main())
