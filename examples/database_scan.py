"""Database analytics in DRAM: TPC-H style scans and BitWeaving
(paper §5, databases).

Runs a predicated aggregation (`SELECT SUM(price) WHERE quantity < k`)
and a BitWeaving conjunctive range scan on the functional simulator,
then models both at warehouse scale on every platform.

Run:  python examples/database_scan.py
"""

from repro import DramGeometry, Simdram, SimdramConfig
from repro.apps import (
    BitSlicedColumn,
    KernelHarness,
    LineitemTable,
    bitweaving_kernel,
    filtered_sum_golden,
    filtered_sum_simdram,
    range_scan_golden,
    range_scan_simdram,
    tpch_kernel,
)
from repro.perf.platforms import cpu_skylake, gpu_volta


def main() -> None:
    config = SimdramConfig(
        geometry=DramGeometry.sim_small(cols=512, data_rows=512, banks=2))
    sim = Simdram(config, seed=4)

    # --- TPC-H style predicated aggregation, functional ---
    table = LineitemTable.synthetic(800, seed=1)
    total = filtered_sum_simdram(sim, table, quantity_below=24)
    assert total == filtered_sum_golden(table, 24)
    print(f"TPC-H scan: SUM(price) WHERE quantity < 24 = {total}  "
          f"(verified, 800 rows on the simulator)")

    # --- BitWeaving conjunctive range scan, functional ---
    column = BitSlicedColumn.synthetic(1000, seed=2)
    selection = range_scan_simdram(sim, column, low=256, high=2048)
    assert (selection == range_scan_golden(column, 256, 2048)).all()
    print(f"BitWeaving scan: {selection.sum()} of {len(selection)} codes "
          f"in [256, 2048)  (verified on the simulator)")

    # --- modeled at full scale ---
    harness = KernelHarness()
    print("\nmodeled at paper scale:")
    for kernel in (tpch_kernel(), bitweaving_kernel()):
        print(f"  {kernel.name} ({kernel.description}):")
        for measure in (harness.measure_host(kernel, cpu_skylake()),
                        harness.measure_host(kernel, gpu_volta()),
                        harness.measure_pim(kernel, "ambit", 16),
                        harness.measure_pim(kernel, "simdram", 16)):
            print(f"    {measure.platform:11s}: {measure.time_ms:9.2f} ms")


if __name__ == "__main__":
    main()
