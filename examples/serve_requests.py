"""Multi-tenant serving: many small requests, few wide dispatches.

SIMDRAM's throughput comes from amortizing one bit-serial µProgram
over thousands of SIMD lanes — but real traffic arrives as many small
independent requests.  The serving layer bridges the two: compatible
requests (same kernel, same width) are *lane-packed* into shared wide
dispatches, and each caller gets its own slice of the result through a
``ServeHandle`` future.

This example serves three tenants with different fair-share weights,
mixes catalog ops, a fused expression and a captured lazy graph in one
batch window, and prints the telemetry the packer produces.
"""

import numpy as np

from repro import SimdramCluster, SimdramConfig, lazy
from repro.core import expr
from repro.dram.geometry import DramGeometry
from repro.serve import ServeConfig, SimdramService

config = SimdramConfig(geometry=DramGeometry.sim_small(
    cols=32, data_rows=256, banks=2))
rng = np.random.default_rng(11)

with SimdramCluster(2, config=config) as cluster, \
        SimdramService(
            cluster,
            # A 20 ms batching window: plenty for this script to queue
            # everything, so compatible requests share dispatches.
            ServeConfig(max_wait_s=0.02),
            tenants={"free": 1.0, "pro": 4.0}) as service:

    # Warm the kernel caches from the declared op manifest, so the
    # first real request replays an installed µProgram.
    manifest = service.warmup([("add", 8), ("mul", 8)])
    print(f"warmed {manifest['n_kernels']} kernels in "
          f"{manifest['seconds'] * 1e3:.0f} ms")

    # 1) A burst of small catalog requests from two tenants.  All
    #    "add" @ 8-bit requests share one kernel identity, so the
    #    packer concatenates their lanes into shared dispatches.
    handles = []
    for i in range(24):
        tenant = "pro" if i % 3 else "free"
        a = rng.integers(0, 256, 4)
        b = rng.integers(0, 256, 4)
        handles.append((service.submit("add", a, b, width=8,
                                       tenant=tenant),
                        (a + b) % 256))

    # 2) A fused expression request (rides in the same window under
    #    its own kernel identity).
    root = expr.relu(expr.sub(expr.inp("x"), expr.const(100)))
    x = rng.integers(0, 256, 6)
    expr_handle = service.submit(root, feeds={"x": x}, width=8)

    # 3) A captured lazy graph — ordinary array code, serving-ready.
    px = lazy.array(rng.integers(0, 200, 5), width=8,
                    device=lazy.device(cluster))
    lazy_handle = service.submit(px + 10, tenant="pro")

    for handle, golden in handles:
        assert np.array_equal(handle.result(60), golden)
    print(f"24 catalog requests verified; e.g. {handles[0][0]!r}")
    print(f"expression request -> {expr_handle.result(60)}")
    print(f"lazy-graph request -> {lazy_handle.result(60)}")

    stats = service.stats()
    packing = stats["packing"]
    print(f"dispatches: {packing['dispatches']} for "
          f"{packing['packed_requests']} requests "
          f"({packing['requests_per_dispatch']:.1f} per dispatch, "
          f"{packing['packing_efficiency']:.0%} saved)")
    print(f"lane occupancy: {packing['lane_occupancy']:.0%} of "
          f"{stats['queue']['capacity_lanes']} lanes")
    print(f"latency p50/p99: {stats['latency_ms']['p50']:.1f} / "
          f"{stats['latency_ms']['p99']:.1f} ms")
    for tenant, counters in stats["tenants"].items():
        print(f"  tenant {tenant!r}: {counters['completed']} served, "
              f"{counters['lanes']} lanes")
