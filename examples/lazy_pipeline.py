#!/usr/bin/env python
"""Programmer-transparent pipelines on the lazy tensor frontend.

SIMDRAM's end-to-end claim is that users write ordinary array code and
the framework picks the in-DRAM implementation.  This example writes
the two PR application pipelines with **zero SIMDRAM-specific calls**:

* **brightness** — ``(px + delta).clip(0, 255)`` on a single module.
  The arithmetic records a lazy DAG; ``numpy()`` fuses it into *one*
  µProgram (the delta and clamp bounds fold into the MIG as
  constants) and dispatches it.
* **conv2d + ReLU** — plain ``x * w + acc`` tap loops on a sharded
  cluster whose modules are too small for the feature map *or* the
  working set.  The evaluation engine partitions the captured graph
  against the ``bbop`` three-source limit (fusing multiple taps per
  kernel), shards each segment across the modules, and pages tensors
  through spill/fill when rows run out.

Both results are checked bit-exactly against the numpy goldens and the
hand-written eager fused pipelines.

Run with::

    PYTHONPATH=src python examples/lazy_pipeline.py
"""

import numpy as np

from repro import DramGeometry, Simdram, SimdramConfig, lazy
from repro.apps.brightness import (
    adjust_brightness_fused,
    adjust_brightness_golden,
    adjust_brightness_lazy,
)
from repro.apps.cnn import conv2d_relu_lazy
from repro.runtime import SimdramCluster


def main() -> int:
    rng = np.random.default_rng(2021)

    # ------------------------------------------------------------------
    # brightness on one module: one fused kernel from plain arithmetic
    # ------------------------------------------------------------------
    sim = Simdram(SimdramConfig(geometry=DramGeometry.sim_small(
        cols=64, data_rows=768, banks=2)), seed=7)
    device = lazy.device(sim)
    image = rng.integers(0, 256, (8, 16)).astype(np.uint8)
    delta = 70

    adjusted = adjust_brightness_lazy(image, delta, device=device)
    report = device.last_report
    golden = adjust_brightness_golden(image, delta)
    eager = adjust_brightness_fused(sim, image, delta)
    bright_ok = (np.array_equal(adjusted, golden)
                 and np.array_equal(adjusted, eager))

    print("brightness (px + 70).clip(0, 255), 128 pixels, one module")
    print(f"  fused dispatches   : {report.n_dispatches} "
          f"(for {report.groups[0].n_nodes} catalog ops)")
    print(f"  inferred width     : {report.groups[0].width} bits")
    print(f"  vs golden + eager  : {'OK' if bright_ok else 'MISMATCH'}")

    # ------------------------------------------------------------------
    # conv2d+ReLU on a sharded, paged cluster: same transparent code
    # ------------------------------------------------------------------
    img = rng.integers(0, 32, (14, 14))
    taps = rng.integers(-3, 4, (3, 3))
    # Rows are sized so one fused segment's working set (operands +
    # output + µProgram scratch) fits, but the conv's full tensor set
    # does not — forcing the paging layer to spill and fill.
    config = SimdramConfig(geometry=DramGeometry.sim_small(
        cols=32, data_rows=256, banks=2))

    with SimdramCluster(n_modules=2, config=config) as cluster:
        device = lazy.device(cluster)
        feature_map = conv2d_relu_lazy(device, img, taps)
        report = device.last_report
        paging = cluster.paging_stats()

    golden = np.zeros((12, 12), dtype=np.int64)
    for dy in range(3):
        for dx in range(3):
            golden += taps[dy, dx] * img[dy:dy + 12, dx:dx + 12]
    golden = np.maximum(golden, 0)
    conv_ok = np.array_equal(feature_map, golden)

    group = report.groups[0]
    print("conv 3x3 + ReLU, 14x14 image -> 144 pixels, 2 small modules")
    print(f"  catalog ops        : {group.n_nodes} "
          f"(9 taps: mul + add per tap, + relu)")
    print(f"  fused dispatches   : {report.n_dispatches} "
          f"({group.n_segments} partition segments + "
          f"{group.n_batches} output batch)")
    print(f"  spills / fills     : {paging.n_spills} / {paging.n_fills}")
    print(f"  vs numpy golden    : {'OK' if conv_ok else 'MISMATCH'}")
    return 0 if bright_ok and conv_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
