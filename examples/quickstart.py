"""Quickstart: SIMD arithmetic inside simulated DRAM.

Creates a small SIMDRAM system, places two vectors into DRAM in vertical
layout (through the transposition unit), executes `add`, `mul` and `max`
µPrograms in the memory array, and reads results back — printing the
DRAM command counts and modeled latency/energy for each operation.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DramGeometry, Simdram, SimdramConfig

def main() -> None:
    # 2 banks x 256 columns = 512 SIMD lanes; each column is one lane.
    config = SimdramConfig(
        geometry=DramGeometry.sim_small(cols=256, data_rows=512, banks=2))
    sim = Simdram(config, seed=1)

    rng = np.random.default_rng(0)
    a_host = rng.integers(0, 100, 500)
    b_host = rng.integers(0, 100, 500)

    # Host -> DRAM (vertical layout) through the transposition unit.
    a = sim.array(a_host, width=8)
    b = sim.array(b_host, width=8)

    print("operation | result check | AAP+AP cmds | latency | energy")
    print("-" * 64)
    for op, golden in (("add", (a_host + b_host) % 256),
                       ("mul", (a_host * b_host) % 256),
                       ("max", np.maximum(a_host, b_host))):
        out = sim.run(op, a, b)
        result = out.to_numpy()
        assert np.array_equal(result, golden), f"{op} mismatch!"
        program = sim.compile(op, 8)
        print(f"{op:9s} | OK           | {program.n_aap:4d}+{program.n_ap:<4d}"
              f"    | {sim.last_latency_ns() / 1e3:6.1f}us"
              f" | {sim.last_energy_nj() / 1e3:6.2f}uJ")
        out.free()

    # The bbop instructions the "CPU" issued to the memory controller:
    print("\nbbop instructions issued:")
    for instr in sim.issued:
        print(f"  bbop_{instr.op}(dst=row {instr.dst}, "
              f"srcs=({instr.src0}, {instr.src1}), "
              f"n={instr.n_elements}, width={instr.element_width})")


if __name__ == "__main__":
    main()
