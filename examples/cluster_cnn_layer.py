#!/usr/bin/env python
"""A CNN layer bigger than one SIMDRAM module, on the sharded runtime.

A 5x5 convolution + ReLU over a 52x52 image produces a 48x48 = 2304
pixel feature map.  Each module here has only 256 SIMD lanes and 96
D-group rows, so a single :class:`repro.Simdram` could neither hold the
feature map in its lanes (2304 pixels need 9 shards) nor keep the per-tap working set (accumulator,
pixels, output, µProgram scratch) resident in its rows.  The
:class:`repro.SimdramCluster` runs it anyway:

* the feature map shards across 4 modules (4 x 256 lanes);
* every tap's fused multiply-accumulate kernel is compiled once and
  adopted by all modules;
* tensors that no longer fit spill to host through the transposition
  unit and fault back in on their next use (watch the spill/fill
  counters below);
* per-shard jobs of independent taps queue asynchronously per module.

Run with::

    PYTHONPATH=src python examples/cluster_cnn_layer.py
"""

import numpy as np

from repro import DramGeometry, SimdramConfig
from repro.apps.cnn import conv2d_relu_cluster
from repro.runtime import SimdramCluster


def main() -> int:
    rng = np.random.default_rng(2021)
    image = rng.integers(0, 64, (52, 52))
    kernel = rng.integers(-3, 4, (5, 5))

    config = SimdramConfig(geometry=DramGeometry.sim_small(
        cols=128, data_rows=96, banks=2))
    lanes_per_module = 128 * 2

    with SimdramCluster(n_modules=4, config=config) as cluster:
        feature_map = conv2d_relu_cluster(cluster, image, kernel)
        paging = cluster.paging_stats()
        makespan_us = cluster.makespan_ns() / 1e3

    golden = np.zeros((48, 48), dtype=np.int64)
    for dy in range(5):
        for dx in range(5):
            golden += kernel[dy, dx] * image[dy:dy + 48, dx:dx + 48]
    golden = np.maximum(golden, 0)
    ok = np.array_equal(feature_map, golden)

    print("conv 5x5 + ReLU, 52x52 image -> 48x48 feature map")
    print(f"  feature-map pixels : {feature_map.size} "
          f"(one module has {lanes_per_module} lanes)")
    print(f"  modules            : 4 ({4 * lanes_per_module} lanes)")
    print(f"  spills / fills     : {paging.n_spills} / {paging.n_fills} "
          f"({paging.spill_bits + paging.fill_bits} bits paged)")
    print(f"  modeled makespan   : {makespan_us:.1f} us")
    print(f"  result vs numpy    : {'OK' if ok else 'MISMATCH'}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
