"""k-nearest-neighbour digit classification in DRAM (paper §5, ML).

Generates a synthetic "digits" dataset (blurred class prototypes),
classifies queries with L1-distance kNN where all distance arithmetic
runs as SIMDRAM µPrograms (one reference per SIMD lane), and reports
accuracy against a pure-host implementation.

Run:  python examples/knn_digits.py
"""

import numpy as np

from repro import DramGeometry, Simdram, SimdramConfig
from repro.apps import knn_classify_golden, knn_classify_simdram, knn_kernel
from repro.apps.common import KernelHarness
from repro.perf.platforms import cpu_skylake


def synthetic_digits(prototypes, n_per_class, rng):
    """Class prototypes + noise: an MNIST-like stand-in (see DESIGN.md)."""
    features = []
    labels = []
    for label, proto in enumerate(prototypes):
        noise = rng.normal(0, 25, (n_per_class, len(proto)))
        samples = np.clip(proto + noise, 0, 255).astype(np.uint8)
        features.append(samples)
        labels += [label] * n_per_class
    return np.vstack(features), np.array(labels)


def main() -> None:
    config = SimdramConfig(
        geometry=DramGeometry.sim_small(cols=128, data_rows=512, banks=2))
    sim = Simdram(config, seed=5)

    rng = np.random.default_rng(7)
    prototypes = rng.integers(0, 256, (5, 16))
    references, labels = synthetic_digits(prototypes, n_per_class=40,
                                          rng=rng)
    queries, true_labels = synthetic_digits(prototypes, n_per_class=3,
                                            rng=rng)

    predicted = knn_classify_simdram(sim, references, labels, queries, k=5)
    host = knn_classify_golden(references, labels, queries, k=5)
    assert (predicted == host).all(), "PIM and host kNN disagree"
    accuracy = float((predicted == true_labels).mean())
    print(f"classified {len(queries)} queries against {len(references)} "
          f"references (distances computed in DRAM)")
    print(f"accuracy: {accuracy:.0%} (identical to the host implementation)")

    harness = KernelHarness()
    kernel = knn_kernel(n_references=60_000, n_features=64, n_queries=100)
    simdram = harness.measure_pim(kernel, "simdram", 16)
    cpu = harness.measure_host(kernel, cpu_skylake())
    print(f"\nmodeled at paper scale ({kernel.description}):")
    print(f"  CPU:        {cpu.time_ms:9.1f} ms")
    print(f"  SIMDRAM:16: {simdram.time_ms:9.1f} ms "
          f"({cpu.time_ms / simdram.time_ms:.1f}x speedup)")


if __name__ == "__main__":
    main()
