"""Image brightness adjustment in DRAM (paper §5, image processing).

Adjusts the brightness of a synthetic image entirely with SIMDRAM
µPrograms (add + saturating clamps), verifies against numpy, and prints
the modeled performance of a full-HD frame on all four platforms.

Run:  python examples/image_brightness.py
"""

import numpy as np

from repro import DramGeometry, Simdram, SimdramConfig
from repro.apps import (
    KernelHarness,
    adjust_brightness_golden,
    adjust_brightness_simdram,
    brightness_kernel,
)
from repro.perf.platforms import cpu_skylake, gpu_volta


def main() -> None:
    config = SimdramConfig(
        geometry=DramGeometry.sim_small(cols=512, data_rows=512, banks=2))
    sim = Simdram(config, seed=3)

    rng = np.random.default_rng(0)
    image = rng.integers(0, 256, (24, 32)).astype(np.uint8)

    for delta in (+64, -64):
        adjusted = adjust_brightness_simdram(sim, image, delta)
        golden = adjust_brightness_golden(image, delta)
        assert np.array_equal(adjusted, golden)
        saturated = int(np.sum((adjusted == 0) | (adjusted == 255)))
        print(f"delta {delta:+4d}: OK on the simulator "
              f"({saturated} of {image.size} pixels saturated)")

    print("\nmodeled full-HD frame (1920x1080):")
    harness = KernelHarness()
    kernel = brightness_kernel(1920, 1080)
    rows = [
        harness.measure_host(kernel, cpu_skylake()),
        harness.measure_host(kernel, gpu_volta()),
        harness.measure_pim(kernel, "ambit", 16),
        harness.measure_pim(kernel, "simdram", 16),
    ]
    for measure in rows:
        print(f"  {measure.platform:11s}: {measure.time_ms:7.3f} ms, "
              f"{measure.energy_mj:7.3f} mJ")


if __name__ == "__main__":
    main()
