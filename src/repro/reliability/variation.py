"""Process-variation sweeps (the paper's reliability study).

The paper evaluates SIMDRAM "under different degrees of manufacturing
process variation" and as "the DRAM process technology node scales down
to smaller sizes", concluding that correct operation is maintained.
These sweeps regenerate that study: TRA failure probability as a
function of capacitance variation, and per-operation failure probability
across technology nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.reliability.charge_sharing import (
    TraAnalogModel,
    operation_failure_probability,
)
from repro.uprog.program import MicroProgram
from repro.uprog.uops import UAap, UAp

#: Technology nodes: nm -> (cell-cap scale, intrinsic variation sigma).
#: Capacitance is largely preserved by design down to ~2x nm nodes while
#: random variation grows; values follow published DRAM scaling surveys.
TECHNOLOGY_NODES: dict[int, tuple[float, float]] = {
    55: (1.00, 0.030),
    45: (0.95, 0.038),
    32: (0.88, 0.048),
    22: (0.80, 0.062),
    14: (0.72, 0.080),
}


def count_tras(program: MicroProgram) -> int:
    """Number of triple-row activations a µProgram performs.

    Counts AP commands on triples plus AAPs whose *first* activation is a
    triple (the fused TRA-and-copy form).
    """
    total = 0
    for uop in program.uops:
        if isinstance(uop, UAp):
            total += 1
        elif isinstance(uop, UAap) and uop.src.n_wordlines == 3:
            total += 1
    return total


@dataclass(frozen=True)
class VariationPoint:
    """One point of the reliability sweep."""

    sigma_fraction: float
    p_tra: float


def sweep_variation(model: TraAnalogModel | None = None,
                    sigmas: tuple[float, ...] = (
                        0.0, 0.025, 0.05, 0.075, 0.10, 0.125, 0.15,
                        0.175, 0.20, 0.25, 0.30),
                    n_trials: int = 200_000,
                    seed: int = 0) -> list[VariationPoint]:
    """TRA failure probability across capacitance-variation levels."""
    model = model or TraAnalogModel()
    rng = np.random.default_rng(seed)
    return [VariationPoint(sigma,
                           model.failure_probability(sigma, n_trials, rng))
            for sigma in sigmas]


@dataclass(frozen=True)
class NodePoint:
    """Reliability of one operation at one technology node."""

    node_nm: int
    sigma_fraction: float
    p_tra: float
    p_operation: float


def sweep_technology(program: MicroProgram,
                     base_model: TraAnalogModel | None = None,
                     n_trials: int = 200_000,
                     seed: int = 0) -> list[NodePoint]:
    """Per-operation failure probability across technology nodes."""
    base_model = base_model or TraAnalogModel()
    n_tra = count_tras(program)
    rng = np.random.default_rng(seed)
    points = []
    for node_nm, (cap_scale, sigma) in sorted(TECHNOLOGY_NODES.items(),
                                              reverse=True):
        model = replace(base_model,
                        cell_cap_ff=base_model.cell_cap_ff * cap_scale)
        p_tra = model.failure_probability(sigma, n_trials, rng)
        points.append(NodePoint(
            node_nm=node_nm,
            sigma_fraction=sigma,
            p_tra=p_tra,
            p_operation=operation_failure_probability(p_tra, n_tra),
        ))
    return points
