"""Analog model of triple-row activation under process variation.

The paper validates TRA-based majority with SPICE Monte-Carlo across
manufacturing process variation; we reproduce the study with the
underlying closed-form charge-sharing model, which captures the same
failure mechanism:

* Before activation the bitline is precharged to ``VDD/2`` and each of
  the three cells stores ``VDD`` (logic 1) or ``0`` (logic 0) on its
  capacitor ``C_i``.
* Raising three wordlines shares charge; the bitline deviation is

      dV = (VDD / 2) * (sum_i s_i * C_i) / (C_bl + sum_i C_i)

  with ``s_i = +1`` for a stored 1 and ``-1`` for a stored 0.
* The sense amplifier resolves ``sign(dV + offset)`` where ``offset`` is
  its input-referred mismatch.  The TRA *fails* when the resolved value
  differs from the ideal majority — either because capacitor mismatch
  flips the net charge or the deviation is smaller than the amplifier
  offset.

Cell capacitances are drawn i.i.d. normal with a given fractional sigma;
technology scaling shrinks the nominal capacitance and increases
variability (DESIGN.md §3 records this substitution for SPICE).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class TraAnalogModel:
    """Electrical parameters of a TRA in one technology corner."""

    vdd_v: float = 1.2
    cell_cap_ff: float = 22.0
    #: Bitline-to-cell capacitance ratio (typical DRAM ~3.5).
    bitline_ratio: float = 3.5
    #: Sense-amplifier input-referred offset sigma (mV).
    sense_offset_mv: float = 15.0

    def __post_init__(self) -> None:
        for attr in ("vdd_v", "cell_cap_ff", "bitline_ratio"):
            if getattr(self, attr) <= 0:
                raise ConfigError(f"{attr} must be positive")
        if self.sense_offset_mv < 0:
            raise ConfigError("sense_offset_mv must be non-negative")

    @property
    def bitline_cap_ff(self) -> float:
        return self.bitline_ratio * self.cell_cap_ff

    def deviation_mv(self, stored_bits: np.ndarray,
                     caps_ff: np.ndarray) -> np.ndarray:
        """Bitline deviation (mV) for batches of TRAs.

        ``stored_bits`` and ``caps_ff`` have shape ``(n, 3)``.
        """
        signs = np.where(np.asarray(stored_bits, dtype=bool), 1.0, -1.0)
        caps = np.asarray(caps_ff, dtype=float)
        num = (signs * caps).sum(axis=1)
        den = self.bitline_cap_ff + caps.sum(axis=1)
        return 1e3 * (self.vdd_v / 2.0) * num / den

    def failure_probability(self, sigma_fraction: float,
                            n_trials: int = 200_000,
                            rng: np.random.Generator | None = None) -> float:
        """Monte-Carlo probability that one TRA senses the wrong majority.

        Uses the worst-case data pattern (a 2-vs-1 split; unanimous
        patterns cannot fail under this mechanism), matching the paper's
        worst-case reliability methodology.
        """
        if sigma_fraction < 0:
            raise ConfigError("sigma_fraction must be non-negative")
        rng = rng or np.random.default_rng(0)
        # Worst-case pattern: two 1s, one 0 (symmetric to two 0s, one 1).
        bits = np.zeros((n_trials, 3), dtype=bool)
        bits[:, :2] = True
        caps = rng.normal(self.cell_cap_ff,
                          sigma_fraction * self.cell_cap_ff,
                          size=(n_trials, 3))
        caps = np.clip(caps, 1e-3, None)  # capacitance cannot go negative
        deviation = self.deviation_mv(bits, caps)
        offset = rng.normal(0.0, self.sense_offset_mv, size=n_trials)
        sensed_one = (deviation + offset) > 0
        return float(np.mean(~sensed_one))  # ideal majority is 1


def operation_failure_probability(p_tra: float, n_tra: int) -> float:
    """Probability an operation with ``n_tra`` TRAs produces any error."""
    if not 0 <= p_tra <= 1:
        raise ConfigError(f"p_tra must be a probability, got {p_tra}")
    if n_tra < 0:
        raise ConfigError(f"n_tra must be non-negative, got {n_tra}")
    return 1.0 - (1.0 - p_tra) ** n_tra
