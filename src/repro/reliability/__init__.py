"""Reliability study: TRA charge sharing under process variation."""

from repro.reliability.charge_sharing import (
    TraAnalogModel,
    operation_failure_probability,
)
from repro.reliability.variation import (
    TECHNOLOGY_NODES,
    NodePoint,
    VariationPoint,
    count_tras,
    sweep_technology,
    sweep_variation,
)

__all__ = [
    "TraAnalogModel",
    "operation_failure_probability",
    "TECHNOLOGY_NODES",
    "NodePoint",
    "VariationPoint",
    "count_tras",
    "sweep_technology",
    "sweep_variation",
]
