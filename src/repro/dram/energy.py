"""IDD-based DRAM energy model.

Energy per command is derived from datasheet supply currents using the
standard Micron power-calculation method: the incremental energy of one
ACTIVATE-PRECHARGE cycle per chip is

    E_act = (IDD0 * tRC - IDD3N * tRAS - IDD2N * tRP) * VDD

and a rank of ``chips_per_rank`` devices activates its row segments in
lockstep, so rank energy is the per-chip value times the chip count.
Multi-wordline activations (RowClone doubles, TRA triples) restore more
cells, modeled as a small per-extra-wordline surcharge
(``extra_wordline_factor``), following the SIMDRAM/Ambit energy accounting.

Host I/O energy (used by the transposition-unit cost model) is charged per
bit moved over the channel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTiming
from repro.errors import ConfigError


@dataclass(frozen=True)
class DramEnergy:
    """Per-command DRAM energy model (derived from IDD currents).

    Defaults model a DDR4-2400 x8 device: IDD0=55 mA, IDD3N=42 mA,
    IDD2N=37 mA, VDD=1.2 V.
    """

    idd0_ma: float = 55.0
    idd3n_ma: float = 42.0
    idd2n_ma: float = 37.0
    vdd_v: float = 1.2
    #: Extra activation energy per additional simultaneously-raised
    #: wordline (cell restore current), as a fraction of E_act.
    extra_wordline_factor: float = 0.15
    #: Channel I/O + on-die datapath energy per bit read/written by host.
    io_pj_per_bit: float = 7.0

    def __post_init__(self) -> None:
        if self.idd0_ma <= self.idd3n_ma:
            raise ConfigError("IDD0 must exceed IDD3N")
        if self.vdd_v <= 0:
            raise ConfigError("VDD must be positive")
        if not 0 <= self.extra_wordline_factor < 1:
            raise ConfigError("extra_wordline_factor must be in [0, 1)")

    def act_pre_nj_chip(self, timing: DramTiming) -> float:
        """Incremental energy of one ACT-PRE cycle on a single chip (nJ)."""
        charge_mans = (self.idd0_ma * timing.t_rc_ns
                       - self.idd3n_ma * timing.t_ras_ns
                       - self.idd2n_ma * timing.t_rp_ns)
        return charge_mans * self.vdd_v * 1e-3  # mA*ns*V = pJ; /1e3 -> nJ

    def act_pre_nj(self, timing: DramTiming, geometry: DramGeometry,
                   n_wordlines: int = 1) -> float:
        """Rank energy of one ACT-PRE cycle raising ``n_wordlines`` rows."""
        base = self.act_pre_nj_chip(timing) * geometry.chips_per_rank
        return base * (1.0 + self.extra_wordline_factor * (n_wordlines - 1))

    def ap_nj(self, timing: DramTiming, geometry: DramGeometry,
              n_wordlines: int = 3) -> float:
        """Energy of one AP command (a TRA activates three wordlines)."""
        return self.act_pre_nj(timing, geometry, n_wordlines)

    def aap_nj(self, timing: DramTiming, geometry: DramGeometry,
               src_wordlines: int = 1, dst_wordlines: int = 1) -> float:
        """Energy of one AAP command: two back-to-back activations."""
        src = self.act_pre_nj(timing, geometry, src_wordlines)
        dst = self.act_pre_nj(timing, geometry, dst_wordlines)
        return src + dst

    def io_nj(self, n_bits: int) -> float:
        """Energy to move ``n_bits`` over the channel (host read/write)."""
        return n_bits * self.io_pj_per_bit * 1e-3

    @classmethod
    def ddr4(cls) -> "DramEnergy":
        """The paper's DDR4 energy constants."""
        return cls()
