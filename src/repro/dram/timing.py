"""DDR timing parameters and latency of the Ambit/SIMDRAM command primitives.

SIMDRAM executes µPrograms made of two composite commands (Ambit §5):

* ``AP``  (ACTIVATE → PRECHARGE): performs a triple-row activation (TRA)
  when the activated address maps to three wordlines; latency
  ``tRAS + tRP``.
* ``AAP`` (ACTIVATE → ACTIVATE → PRECHARGE): RowClone-FPM copy of the
  first row (or TRA result) into the second; latency ``2*tRAS + tRP``.
  This is conservative — Ambit overlaps part of the second activation —
  but the same constant applies to SIMDRAM and the Ambit baseline, so all
  relative results are unaffected (see DESIGN.md §7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class DramTiming:
    """DDR timing parameters (nanoseconds) plus channel I/O rate.

    Defaults model DDR4-2400 (the configuration used in the paper's
    evaluation): tRAS=32 ns, tRP=13.32 ns, tRCD=13.32 ns, 19.2 GB/s pin
    bandwidth per channel.
    """

    t_ras_ns: float = 32.0
    t_rp_ns: float = 13.32
    t_rcd_ns: float = 13.32
    t_ck_ns: float = 0.833
    channel_gbps: float = 19.2  # GB/s of the DDR4-2400 channel

    def __post_init__(self) -> None:
        for name in ("t_ras_ns", "t_rp_ns", "t_rcd_ns", "t_ck_ns",
                     "channel_gbps"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")

    @property
    def t_rc_ns(self) -> float:
        """Row cycle time: ACTIVATE-to-ACTIVATE on the same bank."""
        return self.t_ras_ns + self.t_rp_ns

    @property
    def ap_ns(self) -> float:
        """Latency of one AP command (ACTIVATE, PRECHARGE)."""
        return self.t_ras_ns + self.t_rp_ns

    @property
    def aap_ns(self) -> float:
        """Latency of one AAP command (ACTIVATE, ACTIVATE, PRECHARGE)."""
        return 2.0 * self.t_ras_ns + self.t_rp_ns

    def io_ns_per_byte(self) -> float:
        """Time to move one byte over the channel at full bandwidth."""
        return 1.0 / self.channel_gbps  # GB/s == bytes/ns

    @classmethod
    def ddr4_2400(cls) -> "DramTiming":
        """The paper's DDR4-2400 timing."""
        return cls()

    @classmethod
    def ddr3_1600(cls) -> "DramTiming":
        """DDR3-1600 (the Ambit paper's configuration), for sensitivity
        studies: tRAS=35 ns, tRP=13.75 ns, 12.8 GB/s channel."""
        return cls(t_ras_ns=35.0, t_rp_ns=13.75, t_rcd_ns=13.75,
                   t_ck_ns=1.25, channel_gbps=12.8)
