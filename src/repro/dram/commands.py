"""Command accounting: statistics and optional traces of executed commands.

Every performance and energy claim in the paper reduces to *how many AAP
and AP commands* an operation issues; :class:`CommandStats` is therefore
the central currency of the evaluation harness.  The functional simulator
also keeps an optional :class:`CommandTrace` so tests can assert on the
exact command sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.energy import DramEnergy
from repro.dram.geometry import DramGeometry
from repro.dram.rows import RowAddress
from repro.dram.timing import DramTiming


@dataclass
class CommandStats:
    """Counters for DRAM commands issued by a program or a whole run."""

    n_ap: int = 0
    n_aap: int = 0
    #: Sum over APs of wordlines activated (energy accounting).
    ap_wordlines: int = 0
    #: Sum over AAPs of (src wordlines, dst wordlines).
    aap_src_wordlines: int = 0
    aap_dst_wordlines: int = 0
    #: Host row reads/writes through the normal datapath (transposition).
    host_bits_read: int = 0
    host_bits_written: int = 0
    #: Paging traffic (runtime eviction layer): logical operand bits
    #: spilled to host and filled back.  Spill/fill moves through the
    #: transposition unit, so the raw channel traffic is *also* counted
    #: in ``host_bits_read``/``host_bits_written`` at the subarray; these
    #: counters exist so paging pressure is observable on its own.
    n_spills: int = 0
    n_fills: int = 0
    spill_bits: int = 0
    fill_bits: int = 0

    def record_ap(self, n_wordlines: int) -> None:
        """Account one AP command activating ``n_wordlines`` rows."""
        self.n_ap += 1
        self.ap_wordlines += n_wordlines

    def record_aap(self, src_wordlines: int, dst_wordlines: int) -> None:
        """Account one AAP command."""
        self.n_aap += 1
        self.aap_src_wordlines += src_wordlines
        self.aap_dst_wordlines += dst_wordlines

    def record_spill(self, bits: int) -> None:
        """Account one shard eviction of ``bits`` operand bits."""
        self.n_spills += 1
        self.spill_bits += bits

    def record_fill(self, bits: int) -> None:
        """Account one shard fault-in of ``bits`` operand bits."""
        self.n_fills += 1
        self.fill_bits += bits

    @property
    def n_commands(self) -> int:
        """Total composite commands issued."""
        return self.n_ap + self.n_aap

    @property
    def n_activations(self) -> int:
        """Total ACTIVATE operations (an AAP contains two)."""
        return self.n_ap + 2 * self.n_aap

    def latency_ns(self, timing: DramTiming) -> float:
        """Serial latency of the recorded command stream in one bank."""
        return self.n_ap * timing.ap_ns + self.n_aap * timing.aap_ns

    def energy_nj(self, timing: DramTiming, geometry: DramGeometry,
                  energy: DramEnergy) -> float:
        """Energy of the recorded commands plus host I/O."""
        base = energy.act_pre_nj_chip(timing) * geometry.chips_per_rank
        extra = energy.extra_wordline_factor
        ap_nj = self.n_ap * base + extra * base * (
            self.ap_wordlines - self.n_ap)
        aap_nj = 2 * self.n_aap * base + extra * base * (
            self.aap_src_wordlines + self.aap_dst_wordlines - 2 * self.n_aap)
        io_nj = energy.io_nj(self.host_bits_read + self.host_bits_written)
        return ap_nj + aap_nj + io_nj

    def accumulate(self, other: "CommandStats") -> None:
        """Add ``other``'s counters into this object in place.

        The vectorized executor computes one per-bank :class:`CommandStats`
        for a whole µProgram and folds it into every participating bank's
        counters, so bank stats match the per-bank path exactly.
        """
        self.n_ap += other.n_ap
        self.n_aap += other.n_aap
        self.ap_wordlines += other.ap_wordlines
        self.aap_src_wordlines += other.aap_src_wordlines
        self.aap_dst_wordlines += other.aap_dst_wordlines
        self.host_bits_read += other.host_bits_read
        self.host_bits_written += other.host_bits_written
        self.n_spills += other.n_spills
        self.n_fills += other.n_fills
        self.spill_bits += other.spill_bits
        self.fill_bits += other.fill_bits

    def merged_with(self, other: "CommandStats") -> "CommandStats":
        """Return a new stats object combining both operands."""
        return CommandStats(
            n_ap=self.n_ap + other.n_ap,
            n_aap=self.n_aap + other.n_aap,
            ap_wordlines=self.ap_wordlines + other.ap_wordlines,
            aap_src_wordlines=(self.aap_src_wordlines
                               + other.aap_src_wordlines),
            aap_dst_wordlines=(self.aap_dst_wordlines
                               + other.aap_dst_wordlines),
            host_bits_read=self.host_bits_read + other.host_bits_read,
            host_bits_written=(self.host_bits_written
                               + other.host_bits_written),
            n_spills=self.n_spills + other.n_spills,
            n_fills=self.n_fills + other.n_fills,
            spill_bits=self.spill_bits + other.spill_bits,
            fill_bits=self.fill_bits + other.fill_bits,
        )

    def scaled(self, factor: int) -> "CommandStats":
        """Stats for ``factor`` repetitions of the recorded stream."""
        return CommandStats(
            n_ap=self.n_ap * factor,
            n_aap=self.n_aap * factor,
            ap_wordlines=self.ap_wordlines * factor,
            aap_src_wordlines=self.aap_src_wordlines * factor,
            aap_dst_wordlines=self.aap_dst_wordlines * factor,
            host_bits_read=self.host_bits_read * factor,
            host_bits_written=self.host_bits_written * factor,
            n_spills=self.n_spills * factor,
            n_fills=self.n_fills * factor,
            spill_bits=self.spill_bits * factor,
            fill_bits=self.fill_bits * factor,
        )


@dataclass(frozen=True)
class TraceEntry:
    """One executed composite command (for tests and debugging)."""

    kind: str  # "AP" or "AAP"
    src: RowAddress
    dst: RowAddress | None = None

    def __str__(self) -> str:
        if self.kind == "AP":
            return f"AP({self.src})"
        return f"AAP({self.src} -> {self.dst})"


@dataclass
class CommandTrace:
    """Ordered record of the composite commands a subarray executed."""

    entries: list[TraceEntry] = field(default_factory=list)

    def record(self, entry: TraceEntry) -> None:
        self.entries.append(entry)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def clear(self) -> None:
        self.entries.clear()
