"""DRAM organization parameters.

Two geometries matter in this reproduction:

* ``DramGeometry.paper()`` — the configuration evaluated in the SIMDRAM
  paper (DDR4, 8 KB rows = 65536 bitlines per subarray, 16 banks).  It is
  used by the analytical throughput/energy models, which never allocate
  cell arrays.
* ``DramGeometry.sim_small()`` — a scaled-down configuration used by the
  bit-accurate functional simulator so that tests run in milliseconds.
  Command *counts* are identical at any width because µPrograms operate on
  whole rows; only the number of SIMD lanes differs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GeometryError

#: Number of B-group (bitwise) wordlines reserved per subarray (Ambit).
N_BITWISE_ROWS = 8
#: Number of C-group (control: constant zero / one) rows per subarray.
N_CONTROL_ROWS = 2


@dataclass(frozen=True)
class DramGeometry:
    """Physical organization of the DRAM device used for computation.

    Attributes:
        cols: Bitlines per subarray row; each column is one SIMD lane.
        data_rows: D-group rows available for operands and temporaries.
        subarrays_per_bank: Subarrays in a bank (capacity, not parallelism;
            like Ambit, one subarray per bank computes at a time).
        banks: Banks per module; SIMDRAM:B uses ``B`` banks in parallel.
        chips_per_rank: Devices ganged on the channel (affects energy).
    """

    cols: int = 65536
    data_rows: int = 1006
    subarrays_per_bank: int = 16
    banks: int = 16
    chips_per_rank: int = 8

    def __post_init__(self) -> None:
        if self.cols < 1:
            raise GeometryError(f"cols must be >= 1, got {self.cols}")
        if self.data_rows < 1:
            raise GeometryError(f"data_rows must be >= 1, got {self.data_rows}")
        if self.subarrays_per_bank < 1:
            raise GeometryError(
                f"subarrays_per_bank must be >= 1, got {self.subarrays_per_bank}")
        if self.banks < 1:
            raise GeometryError(f"banks must be >= 1, got {self.banks}")
        if self.chips_per_rank < 1:
            raise GeometryError(
                f"chips_per_rank must be >= 1, got {self.chips_per_rank}")

    @property
    def rows_per_subarray(self) -> int:
        """Total wordlines per subarray, including reserved B/C groups."""
        return self.data_rows + N_BITWISE_ROWS + N_CONTROL_ROWS

    @property
    def row_bytes(self) -> int:
        """Size of one subarray row in bytes."""
        return self.cols // 8

    def lanes(self, n_banks: int | None = None) -> int:
        """SIMD lanes available with ``n_banks`` banks computing in parallel."""
        used = self.banks if n_banks is None else n_banks
        if not 1 <= used <= self.banks:
            raise GeometryError(
                f"n_banks must be in [1, {self.banks}], got {used}")
        return self.cols * used

    @classmethod
    def paper(cls) -> "DramGeometry":
        """Paper-scale configuration (DDR4 module, 8 KB rows, 16 banks)."""
        return cls()

    @classmethod
    def sim_small(cls, cols: int = 256, data_rows: int = 512,
                  banks: int = 2) -> "DramGeometry":
        """Small configuration for the bit-accurate functional simulator."""
        return cls(cols=cols, data_rows=data_rows, banks=banks)
