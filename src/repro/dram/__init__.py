"""DRAM substrate: geometry, timing, energy, rows and the bit-accurate
subarray/bank/module simulator that SIMDRAM and Ambit both execute on."""

from repro.dram.bank import Bank, DramModule
from repro.dram.commands import CommandStats, CommandTrace, TraceEntry
from repro.dram.energy import DramEnergy
from repro.dram.geometry import DramGeometry, N_BITWISE_ROWS, N_CONTROL_ROWS
from repro.dram.rows import (
    B_ADDRESS_MAP,
    DCC_PAIRS,
    TRA_TRIPLES,
    WORDLINE_ADDRESS,
    RowAddress,
    RowGroup,
    Wordline,
    b_row,
    ctrl_row,
    data_row,
    tra_address,
)
from repro.dram.subarray import Subarray, majority3
from repro.dram.timing import DramTiming

__all__ = [
    "Bank",
    "DramModule",
    "CommandStats",
    "CommandTrace",
    "TraceEntry",
    "DramEnergy",
    "DramGeometry",
    "N_BITWISE_ROWS",
    "N_CONTROL_ROWS",
    "B_ADDRESS_MAP",
    "DCC_PAIRS",
    "TRA_TRIPLES",
    "WORDLINE_ADDRESS",
    "RowAddress",
    "RowGroup",
    "Wordline",
    "b_row",
    "ctrl_row",
    "data_row",
    "tra_address",
    "Subarray",
    "majority3",
    "DramTiming",
]
