"""Bank and module layers above the subarray simulator.

Like Ambit, SIMDRAM computes in one subarray per bank at a time; the
throughput knob is the *number of banks* computing in lockstep
(``SIMDRAM:1/4/16`` in the paper).  :class:`DramModule` models that: the
control unit broadcasts each µOp to all participating banks, and the
vector being processed is striped across the banks' columns.
"""

from __future__ import annotations

import numpy as np

from repro.dram.commands import CommandStats
from repro.dram.geometry import DramGeometry
from repro.dram.rows import RowAddress
from repro.dram.subarray import N_B_PLANES, Subarray
from repro.errors import GeometryError
from repro.obs.pmu import get_pmu


class Bank:
    """One DRAM bank exposing its active compute subarray."""

    def __init__(self, geometry: DramGeometry, bank_id: int,
                 trace: bool = False,
                 rng: np.random.Generator | None = None,
                 data_storage: np.ndarray | None = None,
                 b_storage: np.ndarray | None = None) -> None:
        self.geometry = geometry
        self.bank_id = bank_id
        self.subarray = Subarray(geometry, trace=trace, rng=rng,
                                 data_storage=data_storage,
                                 b_storage=b_storage)

    @property
    def stats(self) -> CommandStats:
        """Command statistics of the active subarray."""
        return self.subarray.stats

    def ap(self, address: RowAddress) -> None:
        """Issue an AP to the active subarray."""
        self.subarray.ap(address)

    def aap(self, src: RowAddress, dst: RowAddress) -> None:
        """Issue an AAP to the active subarray."""
        self.subarray.aap(src, dst)


class DramModule:
    """A module of ``banks`` identical banks computing in lockstep.

    The module is the functional-simulation counterpart of the paper's
    ``SIMDRAM:B`` configurations: a µOp broadcast reaches every bank, and
    a logical vector of up to ``banks * cols`` elements is striped across
    banks (element ``i`` lives in bank ``i // cols``, column ``i % cols``).
    """

    def __init__(self, geometry: DramGeometry, trace: bool = False,
                 seed: int | None = None) -> None:
        self.geometry = geometry
        rngs: list[np.random.Generator | None]
        if seed is None:
            rngs = [None] * geometry.banks
        else:
            seq = np.random.SeedSequence(seed)
            rngs = [np.random.default_rng(s)
                    for s in seq.spawn(geometry.banks)]
        # All banks' cells live in two stacked arrays; each subarray gets
        # a per-bank view.  The vectorized execution engine operates on
        # the stacks directly, the per-bank slow path goes through the
        # subarray objects — both mutate the same memory.
        self._data_state = np.zeros(
            (geometry.banks, geometry.data_rows, geometry.cols), dtype=bool)
        self._b_state = np.zeros(
            (geometry.banks, N_B_PLANES, geometry.cols), dtype=bool)
        self.banks = [Bank(geometry, bank_id=i, trace=trace, rng=rngs[i],
                           data_storage=self._data_state[i],
                           b_storage=self._b_state[i])
                      for i in range(geometry.banks)]
        #: Device-PMU registration: per-bank counter rows for this
        #: module live under this id (see :mod:`repro.obs.pmu`).
        self.pmu_id = get_pmu().register_module(
            geometry.banks, self.lanes)

    @property
    def lanes(self) -> int:
        """Total SIMD lanes across all banks."""
        return self.geometry.banks * self.geometry.cols

    def broadcast_ap(self, address: RowAddress,
                     n_banks: int | None = None) -> None:
        """Issue an AP to the first ``n_banks`` banks (all by default)."""
        for bank in self._active(n_banks):
            bank.ap(address)

    def broadcast_aap(self, src: RowAddress, dst: RowAddress,
                      n_banks: int | None = None) -> None:
        """Issue an AAP to the first ``n_banks`` banks (all by default)."""
        for bank in self._active(n_banks):
            bank.aap(src, dst)

    def _active(self, n_banks: int | None) -> list[Bank]:
        if n_banks is None:
            return self.banks
        if not 1 <= n_banks <= len(self.banks):
            raise GeometryError(
                f"n_banks must be in [1, {len(self.banks)}], got {n_banks}")
        return self.banks[:n_banks]

    # ------------------------------------------------------------------
    # vectorized execution support
    # ------------------------------------------------------------------
    def vector_state(self, n_banks: int | None = None
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Stacked cell-state views for the first ``n_banks`` banks.

        Returns ``(data, b_planes)`` of shapes ``(n, data_rows, cols)``
        and ``(n, N_B_PLANES, cols)``.  These are *views*: mutating them
        is exactly mutating the banks' subarrays.
        """
        n = len(self._active(n_banks))
        return self._data_state[:n], self._b_state[:n]

    def supports_vectorized(self, n_banks: int | None = None) -> bool:
        """Whether the stacked fast path is equivalent to the per-bank
        path for the first ``n_banks`` banks.

        False when any selected bank traces commands or injects TRA
        faults (both are per-bank, per-command behaviours the stacked
        executor does not model), or when a bank's subarray no longer
        aliases the module's stacked storage (e.g. a test swapped it).
        """
        for bank in self._active(n_banks):
            subarray = bank.subarray
            if subarray.trace is not None or subarray.tra_fault_rate > 0.0:
                return False
            if (subarray._data.base is not self._data_state
                    or subarray._b_planes.base is not self._b_state):
                return False
        return True

    def total_stats(self) -> CommandStats:
        """Merged command statistics across all banks."""
        total = CommandStats()
        for bank in self.banks:
            total = total.merged_with(bank.stats)
        return total

    # ------------------------------------------------------------------
    # striped row access: logical rows spanning all banks
    # ------------------------------------------------------------------
    def write_striped(self, address: RowAddress, bits: np.ndarray) -> None:
        """Write a logical row of ``lanes`` bits, striped across banks."""
        bits = np.asarray(bits, dtype=bool)
        cols = self.geometry.cols
        if bits.shape != (self.lanes,):
            raise GeometryError(
                f"striped row must have {self.lanes} bits, got {bits.shape}")
        for i, bank in enumerate(self.banks):
            bank.subarray.write_row(address, bits[i * cols:(i + 1) * cols])
        get_pmu().record_transposition(self.pmu_id, self.lanes)

    def read_striped(self, address: RowAddress) -> np.ndarray:
        """Read a logical row of ``lanes`` bits, striped across banks."""
        cols = self.geometry.cols
        out = np.empty(self.lanes, dtype=bool)
        for i, bank in enumerate(self.banks):
            out[i * cols:(i + 1) * cols] = bank.subarray.read_row(address)
        get_pmu().record_transposition(self.pmu_id, self.lanes)
        return out
