"""Row address space of a SIMDRAM subarray.

A subarray exposes three row groups (Ambit §5.2, reused unchanged by
SIMDRAM):

* **D-group** — regular data rows holding vertically-laid-out operands and
  compiler temporaries.
* **C-group** — two control rows, ``C0`` (all zeros) and ``C1`` (all
  ones), used as the constant third operand that turns a majority into
  AND/OR.
* **B-group** — eight wordlines ``T0..T3, DCC0, !DCC0, DCC1, !DCC1``
  driven by a special row decoder with sixteen *reserved addresses*; an
  address may raise one, two, or three wordlines at once.  Raising three
  wordlines performs a triple-row activation (TRA) that computes the
  bitwise majority of the three rows.  ``DCCi``/``!DCCi`` are the two
  ports of a dual-contact cell: they always read as complements of each
  other, which is how SIMDRAM obtains NOT.

The sixteen B-group addresses below follow Table 1 of the Ambit paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import AddressError


class RowGroup(enum.Enum):
    """The three row groups of a compute-capable subarray."""

    DATA = "D"
    CTRL = "C"
    BITWISE = "B"


class Wordline(enum.IntEnum):
    """Physical B-group wordlines."""

    T0 = 0
    T1 = 1
    T2 = 2
    T3 = 3
    DCC0 = 4
    DCC0N = 5
    DCC1 = 6
    DCC1N = 7


#: Wordlines whose cell is shared with a complemented port.
DCC_PAIRS: dict[Wordline, Wordline] = {
    Wordline.DCC0: Wordline.DCC0N,
    Wordline.DCC0N: Wordline.DCC0,
    Wordline.DCC1: Wordline.DCC1N,
    Wordline.DCC1N: Wordline.DCC1,
}

#: B-group reserved-address decoder (Ambit, Table 1): address index ->
#: simultaneously raised wordlines.
B_ADDRESS_MAP: dict[int, tuple[Wordline, ...]] = {
    0: (Wordline.T0,),
    1: (Wordline.T1,),
    2: (Wordline.T2,),
    3: (Wordline.T3,),
    4: (Wordline.DCC0N,),
    5: (Wordline.DCC1N,),
    6: (Wordline.DCC0,),
    7: (Wordline.DCC1,),
    8: (Wordline.DCC0N, Wordline.T0),
    9: (Wordline.DCC1N, Wordline.T1),
    10: (Wordline.T2, Wordline.T3),
    11: (Wordline.T0, Wordline.T3),
    12: (Wordline.T0, Wordline.T1, Wordline.T2),
    13: (Wordline.T1, Wordline.T2, Wordline.T3),
    14: (Wordline.DCC0N, Wordline.T1, Wordline.T2),
    15: (Wordline.DCC1N, Wordline.T0, Wordline.T3),
}

#: The four TRA-capable wordline triples and the B address that fires each.
TRA_TRIPLES: dict[frozenset[Wordline], int] = {
    frozenset(wls): addr for addr, wls in B_ADDRESS_MAP.items()
    if len(wls) == 3
}


@dataclass(frozen=True, order=True)
class RowAddress:
    """An address in a subarray's row space.

    ``index`` means: D-group — data row number; C-group — 0 for the
    all-zeros row, 1 for the all-ones row; B-group — one of the sixteen
    reserved decoder addresses of :data:`B_ADDRESS_MAP`.
    """

    group: RowGroup
    index: int

    def __post_init__(self) -> None:
        if self.group is RowGroup.CTRL and self.index not in (0, 1):
            raise AddressError(f"C-group has rows 0 and 1, got {self.index}")
        if self.group is RowGroup.BITWISE and self.index not in B_ADDRESS_MAP:
            raise AddressError(
                f"B-group has reserved addresses 0..15, got {self.index}")
        if self.group is RowGroup.DATA and self.index < 0:
            raise AddressError(f"negative data row {self.index}")

    def wordlines(self) -> tuple[Wordline, ...]:
        """B-group wordlines raised by this address (empty for D/C rows)."""
        if self.group is RowGroup.BITWISE:
            return B_ADDRESS_MAP[self.index]
        return ()

    @property
    def n_wordlines(self) -> int:
        """How many wordlines this address raises (1 for D/C rows)."""
        return len(self.wordlines()) if self.group is RowGroup.BITWISE else 1

    def __str__(self) -> str:
        if self.group is RowGroup.BITWISE:
            names = "+".join(w.name for w in self.wordlines())
            return f"B{self.index}({names})"
        if self.group is RowGroup.CTRL:
            return f"C{self.index}"
        return f"D{self.index}"


def data_row(index: int) -> RowAddress:
    """Shorthand for a D-group row address."""
    return RowAddress(RowGroup.DATA, index)


def ctrl_row(index: int) -> RowAddress:
    """Shorthand for a C-group row address (0 = zeros, 1 = ones)."""
    return RowAddress(RowGroup.CTRL, index)


def b_row(index: int) -> RowAddress:
    """Shorthand for a B-group reserved address."""
    return RowAddress(RowGroup.BITWISE, index)


#: Single-wordline B addresses for each physical wordline.
WORDLINE_ADDRESS: dict[Wordline, RowAddress] = {
    Wordline.T0: b_row(0),
    Wordline.T1: b_row(1),
    Wordline.T2: b_row(2),
    Wordline.T3: b_row(3),
    Wordline.DCC0N: b_row(4),
    Wordline.DCC1N: b_row(5),
    Wordline.DCC0: b_row(6),
    Wordline.DCC1: b_row(7),
}


def tra_address(wordlines: frozenset[Wordline]) -> RowAddress:
    """Return the B-group address that fires a TRA on ``wordlines``.

    Raises :class:`AddressError` if the triple is not wired in the B-group
    decoder (only the four triples of :data:`TRA_TRIPLES` exist).
    """
    addr = TRA_TRIPLES.get(wordlines)
    if addr is None:
        names = "+".join(sorted(w.name for w in wordlines))
        raise AddressError(f"no TRA address for wordline set {names}")
    return b_row(addr)
