"""Bit-accurate functional model of a compute-capable DRAM subarray.

The subarray is the substrate both SIMDRAM and the Ambit baseline execute
on.  It models, at the bit level and for every column in parallel:

* **Triple-row activation (TRA)** — an ``AP`` on a B-group address that
  raises three wordlines.  Charge sharing among the three cells followed
  by sense amplification computes the bitwise *majority* of the three
  rows, and the result is restored **destructively** into all three cells
  (Ambit §3).
* **RowClone-FPM copy** — an ``AAP``: the first activation latches a row
  (or TRA result) in the sense amplifiers, the second activation
  overwrites the destination wordline(s) with that value (RowClone §3).
* **Dual-contact cells (DCC)** — each of ``DCC0``/``DCC1`` is one cell
  with two ports; reading or writing through the negated port (``!DCCi``)
  complements the value, providing NOT.
* **Control rows** — ``C0``/``C1`` read as constant all-zeros/all-ones
  and are never legal copy destinations.

Undefined analog behaviour is checked, not guessed: activating a
two-wordline address whose cells disagree, for example, raises
:class:`~repro.errors.CommandError` instead of silently picking a value.
"""

from __future__ import annotations

import numpy as np

from repro.dram.commands import CommandStats, CommandTrace, TraceEntry
from repro.dram.geometry import DramGeometry
from repro.dram.rows import (
    DCC_PAIRS,
    RowAddress,
    RowGroup,
    Wordline,
)
from repro.errors import AddressError, CommandError

#: Map each B-group wordline to (storage plane, True if non-inverting port).
#: Shared with the vectorized execution-plan compiler
#: (:mod:`repro.exec.plan`), which classifies µOps against the same
#: storage model so both executors stay bit-identical.
WORDLINE_PLANE: dict[Wordline, tuple[int, bool]] = {
    Wordline.T0: (0, True),
    Wordline.T1: (1, True),
    Wordline.T2: (2, True),
    Wordline.T3: (3, True),
    Wordline.DCC0: (4, True),
    Wordline.DCC0N: (4, False),
    Wordline.DCC1: (5, True),
    Wordline.DCC1N: (5, False),
}
#: Number of physical B-group storage planes (DCC ports share a cell).
N_B_PLANES = 6

# Backwards-compatible aliases (pre-vectorization private names).
_WORDLINE_PLANE = WORDLINE_PLANE
_N_B_PLANES = N_B_PLANES


def majority3(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Bitwise 3-input majority — the Boolean function a TRA computes."""
    return (a & b) | (b & c) | (a & c)


class Subarray:
    """One DRAM subarray with Ambit B/C row groups and D data rows.

    Args:
        geometry: Dimensions; only ``cols`` and ``data_rows`` are used here.
        trace: When true, keep a :class:`CommandTrace` of every AP/AAP.
        rng: Optional generator; when given, D-group and B-group cells
            start with random contents (as real DRAM does at power-up),
            which makes tests catch µPrograms that rely on residual state.
        tra_fault_rate: Fault-injection knob: probability, per lane and
            per TRA, that charge sharing senses the wrong value (models
            the process-variation failures of the reliability study;
            0.0 = ideal device).
        fault_rng: Generator driving fault injection (defaults to a
            fixed-seed generator when ``tra_fault_rate`` > 0).
        data_storage: Optional external ``(data_rows, cols)`` bool array
            to use as the D-group cell storage.  A :class:`DramModule`
            passes per-bank views of one stacked ``(banks, rows, cols)``
            array so the vectorized execution engine can operate on all
            banks at once while this per-subarray model stays the
            bit-identical slow path (the two share memory).
        b_storage: Optional external ``(N_B_PLANES, cols)`` bool array
            for the B-group cells, same contract as ``data_storage``.
    """

    def __init__(self, geometry: DramGeometry, trace: bool = False,
                 rng: np.random.Generator | None = None,
                 tra_fault_rate: float = 0.0,
                 fault_rng: np.random.Generator | None = None,
                 data_storage: np.ndarray | None = None,
                 b_storage: np.ndarray | None = None) -> None:
        if not 0.0 <= tra_fault_rate <= 1.0:
            raise CommandError(
                f"tra_fault_rate must be a probability, "
                f"got {tra_fault_rate}")
        self.geometry = geometry
        self.stats = CommandStats()
        self.trace: CommandTrace | None = CommandTrace() if trace else None
        self.tra_fault_rate = tra_fault_rate
        self._fault_rng = fault_rng
        if tra_fault_rate > 0 and self._fault_rng is None:
            self._fault_rng = np.random.default_rng(0)
        #: TRA bit flips injected so far (observability for tests).
        self.faults_injected = 0
        cols = geometry.cols
        data_shape = (geometry.data_rows, cols)
        b_shape = (N_B_PLANES, cols)
        if data_storage is None:
            data_storage = np.empty(data_shape, dtype=bool)
        if b_storage is None:
            b_storage = np.empty(b_shape, dtype=bool)
        if data_storage.shape != data_shape or data_storage.dtype != bool:
            raise CommandError(
                f"data_storage must be a bool array of shape {data_shape}, "
                f"got {data_storage.dtype} {data_storage.shape}")
        if b_storage.shape != b_shape or b_storage.dtype != bool:
            raise CommandError(
                f"b_storage must be a bool array of shape {b_shape}, "
                f"got {b_storage.dtype} {b_storage.shape}")
        self._data = data_storage
        self._b_planes = b_storage
        if rng is None:
            self._data[...] = False
            self._b_planes[...] = False
        else:
            self._data[...] = rng.integers(
                0, 2, size=data_shape).astype(bool)
            self._b_planes[...] = rng.integers(
                0, 2, size=b_shape).astype(bool)

    @property
    def cols(self) -> int:
        """Number of bitlines (SIMD lanes) in this subarray."""
        return self.geometry.cols

    # ------------------------------------------------------------------
    # internal cell access
    # ------------------------------------------------------------------
    def _check_data_index(self, index: int) -> None:
        if not 0 <= index < self.geometry.data_rows:
            raise AddressError(
                f"data row {index} out of range "
                f"[0, {self.geometry.data_rows})")

    def _read_wordline(self, wordline: Wordline) -> np.ndarray:
        plane, positive = _WORDLINE_PLANE[wordline]
        value = self._b_planes[plane]
        return value if positive else ~value

    def _write_wordline(self, wordline: Wordline, value: np.ndarray) -> None:
        plane, positive = _WORDLINE_PLANE[wordline]
        self._b_planes[plane] = value if positive else ~value

    def _sense(self, address: RowAddress) -> np.ndarray:
        """First activation of ``address``: sense amplifier contents.

        For a triple this performs the (destructive) TRA.  For a double it
        checks that charge sharing is deterministic.
        """
        if address.group is RowGroup.DATA:
            self._check_data_index(address.index)
            return self._data[address.index].copy()
        if address.group is RowGroup.CTRL:
            constant = bool(address.index)
            return np.full(self.cols, constant, dtype=bool)

        wordlines = address.wordlines()
        if len(wordlines) == 1:
            return self._read_wordline(wordlines[0]).copy()
        if len(wordlines) == 2:
            a = self._read_wordline(wordlines[0])
            b = self._read_wordline(wordlines[1])
            if not np.array_equal(a, b):
                raise CommandError(
                    f"activating {address} would charge-share two unequal "
                    "rows; the sensed value is nondeterministic")
            return a.copy()
        # Triple-row activation: majority, restored into all three cells.
        values = [self._read_wordline(w) for w in wordlines]
        result = majority3(*values)
        if self.tra_fault_rate > 0.0:
            flips = self._fault_rng.random(self.cols) < self.tra_fault_rate
            self.faults_injected += int(flips.sum())
            result = result ^ flips
        for wordline in wordlines:
            self._write_wordline(wordline, result)
        return result

    def _drive(self, address: RowAddress, value: np.ndarray) -> None:
        """Second activation of an AAP: overwrite ``address`` with ``value``."""
        if address.group is RowGroup.CTRL:
            raise CommandError(
                f"C-group row {address} holds a hardwired constant and "
                "cannot be a copy destination")
        if address.group is RowGroup.DATA:
            self._check_data_index(address.index)
            self._data[address.index] = value.copy()
            return
        wordlines = address.wordlines()
        written_cells: set[int] = set()
        for wordline in wordlines:
            plane, _ = _WORDLINE_PLANE[wordline]
            if plane in written_cells and wordline in DCC_PAIRS:
                raise CommandError(
                    f"{address} drives both ports of a dual-contact cell")
            written_cells.add(plane)
            self._write_wordline(wordline, value)

    # ------------------------------------------------------------------
    # composite commands (the µOp ISA of the substrate)
    # ------------------------------------------------------------------
    def ap(self, address: RowAddress) -> None:
        """ACTIVATE-PRECHARGE.  On a triple address this is a TRA (MAJ)."""
        self._sense(address)
        self.stats.record_ap(address.n_wordlines)
        if self.trace is not None:
            self.trace.record(TraceEntry("AP", address))

    def aap(self, src: RowAddress, dst: RowAddress) -> None:
        """ACTIVATE-ACTIVATE-PRECHARGE: copy ``src`` (or its TRA) to ``dst``."""
        value = self._sense(src)
        self._drive(dst, value)
        self.stats.record_aap(src.n_wordlines, dst.n_wordlines)
        if self.trace is not None:
            self.trace.record(TraceEntry("AAP", src, dst))

    # ------------------------------------------------------------------
    # host datapath (normal reads/writes, used by the transposition unit)
    # ------------------------------------------------------------------
    def read_row(self, address: RowAddress) -> np.ndarray:
        """Read a full row through the normal datapath."""
        if address.n_wordlines != 1:
            raise CommandError(
                f"host reads must target a single wordline, got {address}")
        value = self._sense(address)
        self.stats.host_bits_read += self.cols
        return value

    def write_row(self, address: RowAddress, value: np.ndarray) -> None:
        """Write a full row through the normal datapath."""
        value = np.asarray(value, dtype=bool)
        if value.shape != (self.cols,):
            raise CommandError(
                f"row value must have shape ({self.cols},), "
                f"got {value.shape}")
        if address.n_wordlines != 1:
            raise CommandError(
                f"host writes must target a single wordline, got {address}")
        self._drive(address, value)
        self.stats.host_bits_written += self.cols

    # ------------------------------------------------------------------
    # debug / test helpers (no stats side effects)
    # ------------------------------------------------------------------
    def peek(self, address: RowAddress) -> np.ndarray:
        """Read a single-wordline row without timing/energy accounting."""
        if address.group is RowGroup.DATA:
            self._check_data_index(address.index)
            return self._data[address.index].copy()
        if address.group is RowGroup.CTRL:
            return np.full(self.cols, bool(address.index), dtype=bool)
        wordlines = address.wordlines()
        if len(wordlines) != 1:
            raise CommandError(f"peek needs a single-wordline address, "
                               f"got {address}")
        return self._read_wordline(wordlines[0]).copy()

    def poke(self, address: RowAddress, value: np.ndarray) -> None:
        """Write a row without accounting (test setup only)."""
        self._drive(address, np.asarray(value, dtype=bool))
