"""Command-line interface: inspect and exercise the SIMDRAM framework.

Examples::

    python -m repro ops                        # list the operation catalog
    python -m repro compile add 8              # show a µProgram
    python -m repro compile mul 16 --backend ambit --full
    python -m repro compare add 32             # all platforms, one op
    python -m repro demo                       # end-to-end functional run
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import __version__
from repro.core.compiler import compile_cached
from repro.core.framework import Simdram, SimdramConfig
from repro.core.operations import CATALOG, PAPER_OPERATIONS
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTiming
from repro.perf.model import measure_all_platforms
from repro.util.tables import format_table


def _cmd_ops(_args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(CATALOG):
        spec = CATALOG[name]
        marker = "paper" if name in PAPER_OPERATIONS else "extension"
        rows.append((name, spec.arity, spec.category, marker,
                     spec.description))
    print(format_table(
        ["operation", "arity", "category", "origin", "description"],
        rows, title=f"SIMDRAM operation catalog ({len(rows)} operations)"))
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    program = compile_cached(args.op, args.width, args.backend)
    timing = DramTiming.ddr4_2400()
    print(program.listing(max_ops=None if args.full else 20))
    print(f"\nlatency: {program.latency_ns(timing) / 1e3:.2f} us per batch "
          f"of {DramGeometry.paper().cols} elements per bank")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    measures = measure_all_platforms(args.op, args.width)
    rows = [(m.platform, round(m.throughput_gops, 3),
             round(m.energy_nj_per_element, 5)) for m in measures]
    print(format_table(
        ["platform", "GOPS", "nJ/element"], rows,
        title=f"{args.op} at {args.width}-bit across platforms"))
    return 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    sim = Simdram(SimdramConfig(
        geometry=DramGeometry.sim_small(cols=128, data_rows=512, banks=2)))
    rng = np.random.default_rng(0)
    a_host = rng.integers(0, 100, 200)
    b_host = rng.integers(1, 100, 200)
    a = sim.array(a_host, width=8)
    b = sim.array(b_host, width=8)
    for op, golden in (("add", (a_host + b_host) % 256),
                       ("div", a_host // b_host),
                       ("max", np.maximum(a_host, b_host))):
        out = sim.run(op, a, b)
        ok = np.array_equal(out.to_numpy(), golden)
        stats = sim.last_stats
        print(f"{op:4s}: {'OK' if ok else 'MISMATCH'}  "
              f"({stats.n_aap} AAPs + {stats.n_ap} APs across "
              f"{sim.config.geometry.banks} banks)")
        out.free()
        if not ok:
            return 1
    print("demo complete: results verified against numpy")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SIMDRAM (ASPLOS 2021) reproduction toolkit")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("ops", help="list the operation catalog")

    compile_parser = sub.add_parser(
        "compile", help="compile one operation and print its µProgram")
    compile_parser.add_argument("op", choices=sorted(CATALOG))
    compile_parser.add_argument("width", type=int)
    compile_parser.add_argument("--backend", default="simdram",
                                choices=("simdram", "ambit"))
    compile_parser.add_argument("--full", action="store_true",
                                help="print every µOp")

    compare_parser = sub.add_parser(
        "compare", help="model one operation on all platforms")
    compare_parser.add_argument("op", choices=sorted(CATALOG))
    compare_parser.add_argument("width", type=int)

    sub.add_parser("demo", help="run a functional end-to-end demo")
    return parser


_HANDLERS = {
    "ops": _cmd_ops,
    "compile": _cmd_compile,
    "compare": _cmd_compare,
    "demo": _cmd_demo,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
