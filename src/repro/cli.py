"""Command-line interface: inspect and exercise the SIMDRAM framework.

Examples::

    python -m repro ops                        # list the operation catalog
    python -m repro compile add 8              # show a µProgram
    python -m repro compile mul 16 --backend ambit --full
    python -m repro compare add 32             # all platforms, one op
    python -m repro demo                       # end-to-end functional run
    python -m repro cluster --modules 4 --op add --n 4096
    python -m repro serve-demo --requests 96   # multi-tenant serving demo
    python -m repro serve-cluster --replicas 4 --kill-one
    python -m repro serve-cluster --trace-out trace.json   # Perfetto
    python -m repro serve-stream --streams 4 --steps 6     # streaming
    python -m repro stats                      # Prometheus exposition
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import __version__
from repro.core.compiler import compile_cached
from repro.core.framework import Simdram, SimdramConfig
from repro.core.operations import CATALOG, PAPER_OPERATIONS
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTiming
from repro.perf.model import measure_all_platforms
from repro.util.tables import format_table


def _cmd_ops(_args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(CATALOG):
        spec = CATALOG[name]
        marker = "paper" if name in PAPER_OPERATIONS else "extension"
        rows.append((name, spec.arity, spec.category, marker,
                     spec.description))
    print(format_table(
        ["operation", "arity", "category", "origin", "description"],
        rows, title=f"SIMDRAM operation catalog ({len(rows)} operations)"))
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    program = compile_cached(args.op, args.width, args.backend)
    timing = DramTiming.ddr4_2400()
    print(program.listing(max_ops=None if args.full else 20))
    print(f"\nlatency: {program.latency_ns(timing) / 1e3:.2f} us per batch "
          f"of {DramGeometry.paper().cols} elements per bank")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    measures = measure_all_platforms(args.op, args.width)
    rows = [(m.platform, round(m.throughput_gops, 3),
             round(m.energy_nj_per_element, 5)) for m in measures]
    print(format_table(
        ["platform", "GOPS", "nJ/element"], rows,
        title=f"{args.op} at {args.width}-bit across platforms"))
    return 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    sim = Simdram(SimdramConfig(
        geometry=DramGeometry.sim_small(cols=128, data_rows=512, banks=2)))
    rng = np.random.default_rng(0)
    a_host = rng.integers(0, 100, 200)
    b_host = rng.integers(1, 100, 200)
    a = sim.array(a_host, width=8)
    b = sim.array(b_host, width=8)
    for op, golden in (("add", (a_host + b_host) % 256),
                       ("div", a_host // b_host),
                       ("max", np.maximum(a_host, b_host))):
        out = sim.run(op, a, b)
        ok = np.array_equal(out.to_numpy(), golden)
        stats = sim.last_stats
        print(f"{op:4s}: {'OK' if ok else 'MISMATCH'}  "
              f"({stats.n_aap} AAPs + {stats.n_ap} APs across "
              f"{sim.config.geometry.banks} banks)")
        out.free()
        if not ok:
            return 1
    print("demo complete: results verified against numpy")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    """Exercise the sharded runtime end to end: device tensors, async
    submission, paging, and the modeled multi-module speedup."""
    from repro.core.operations import get_operation
    from repro.runtime import SimdramCluster

    spec = get_operation(args.op)
    geometry = DramGeometry.sim_small(
        cols=args.cols, data_rows=args.data_rows, banks=args.banks)
    config = SimdramConfig(geometry=geometry)
    rng = np.random.default_rng(args.seed)
    vectors = [rng.integers(0, 1 << in_width, args.n).astype(np.int64)
               for in_width in spec.in_widths(args.width)]

    with SimdramCluster(args.modules, config=config) as cluster:
        tensors = [cluster.tensor(v, w) for v, w in
                   zip(vectors, spec.in_widths(args.width))]
        handle = cluster.submit(args.op, *tensors)
        result = handle.result().to_numpy()
        # Golden models produce unsigned two's-complement encodings;
        # compare in that domain so signed ops (max, relu, ...) match.
        from repro.util.bitops import to_unsigned
        out_width = spec.out_width(args.width)
        golden = np.asarray(spec.golden(vectors, args.width))
        ok = np.array_equal(to_unsigned(result, out_width), golden)

        streamed = cluster.map(args.op, *vectors, width=args.width)
        map_ok = np.array_equal(to_unsigned(streamed, out_width), golden)

        stats = cluster.total_stats()
        paging = cluster.paging_stats()
        rows = [
            ("modules", cluster.n_modules),
            ("SIMD lanes", cluster.lanes),
            ("elements", args.n),
            ("shards", len(tensors[0].shards)),
            ("AAP commands", stats.n_aap),
            ("AP commands", stats.n_ap),
            ("spills / fills", f"{paging.n_spills} / {paging.n_fills}"),
            ("modeled makespan (us)",
             round(cluster.makespan_ns() / 1e3, 2)),
            ("tensor result", "OK" if ok else "MISMATCH"),
            ("sharded map result", "OK" if map_ok else "MISMATCH"),
        ]
    print(format_table(
        ["metric", "value"], rows,
        title=f"{args.op} at {args.width}-bit on a "
              f"{args.modules}-module cluster"))
    return 0 if ok and map_ok else 1


def _make_tracer(args: argparse.Namespace):
    """A tracer for one CLI run: enabled iff ``--trace-out`` was given
    (a private instance, so runs never share trace buffers)."""
    from repro.obs.tracing import Tracer
    path = getattr(args, "trace_out", None)
    return Tracer(enabled=path is not None), path


def _write_trace(tracer, path: str | None) -> list[tuple[str, str]]:
    """Export the run's traces; returns table rows describing them."""
    if path is None:
        return []
    from repro.obs.export import write_chrome_trace
    n_traces = write_chrome_trace(path, tracer)
    return [("trace", f"{n_traces} request trees -> {path}")]


def _cmd_serve_demo(args: argparse.Namespace) -> int:
    """Load-generator demo of the multi-tenant serving layer: many
    small requests from weighted tenants lane-pack into shared wide
    dispatches; every result is verified against numpy."""
    from repro.core import expr
    from repro.core.operations import get_operation
    from repro.runtime import SimdramCluster
    from repro.serve import ServeConfig, SimdramService
    from repro.util.bitops import to_unsigned

    width = args.width
    geometry = DramGeometry.sim_small(
        cols=args.cols, data_rows=args.data_rows, banks=args.banks)
    config = SimdramConfig(geometry=geometry)
    rng = np.random.default_rng(args.seed)
    brighten = expr.relu(expr.sub(expr.inp("px"), expr.const(40)))
    catalog_ops = ("add", "mul", "min")
    tenants = {"free": 1.0, "pro": 4.0, "batch": 2.0}

    tracer, trace_path = _make_tracer(args)
    with SimdramCluster(args.modules, config=config) as cluster, \
            SimdramService(
                cluster,
                ServeConfig(max_wait_s=args.max_wait_ms / 1e3),
                tenants=tenants, tracer=tracer) as service:
        warm = service.warmup(
            [(op, width) for op in catalog_ops] + [(brighten, width)])

        handles = []
        for i in range(args.requests):
            tenant = list(tenants)[i % len(tenants)]
            n = int(rng.integers(1, args.max_request_lanes + 1))
            if i % 4 == 3:
                px = rng.integers(0, 1 << width, n)
                golden = np.asarray(expr.golden(
                    brighten, {"px": px}, width))
                handle = service.submit(brighten, feeds={"px": px},
                                        width=width, tenant=tenant)
            else:
                op = catalog_ops[i % len(catalog_ops)]
                spec = get_operation(op)
                vecs = [rng.integers(0, 1 << w, n)
                        for w in spec.in_widths(width)]
                golden = np.asarray(spec.golden(vecs, width))
                handle = service.submit(op, *vecs, width=width,
                                        tenant=tenant)
            handles.append((handle, golden))

        n_ok = 0
        for handle, golden in handles:
            out_width = width  # every demo op is width-preserving
            got = to_unsigned(handle.result(120), out_width)
            n_ok += bool(np.array_equal(got, golden))
        stats = service.stats()

    packing = stats["packing"]
    latency = stats["latency_ms"]
    rows = [
        ("requests verified", f"{n_ok} / {args.requests}"),
        ("kernels warmed", warm["n_kernels"]),
        ("dispatches", packing["dispatches"]),
        ("requests / dispatch",
         round(packing["requests_per_dispatch"], 2)),
        ("lane occupancy", f"{packing['lane_occupancy']:.0%}"),
        ("packing efficiency",
         f"{packing['packing_efficiency']:.0%} dispatches saved"),
        ("latency p50 / p99 (ms)",
         f"{latency['p50']:.2f} / {latency['p99']:.2f}"),
        ("spills / fills",
         f"{stats['paging']['n_spills']} / "
         f"{stats['paging']['n_fills']}"),
        ("modeled busy (us)",
         round(stats["modeled_busy_ns"] / 1e3, 2)),
    ]
    for tenant, counters in stats["tenants"].items():
        rows.append((f"tenant {tenant!r}",
                     f"{counters['completed']} requests, "
                     f"{counters['lanes']} lanes"))
    rows.extend(_write_trace(tracer, trace_path))
    print(format_table(
        ["metric", "value"], rows,
        title=f"{args.requests} requests from {len(tenants)} tenants "
              f"on a {args.modules}-module cluster"))
    return 0 if n_ok == args.requests else 1


def _cmd_serve_cluster(args: argparse.Namespace) -> int:
    """Serve mixed traffic over N replica *processes* behind the
    consistent-hash router; optionally SIGKILL one replica mid-flight
    to demonstrate failover.  Every result is verified against numpy."""
    import time

    from repro.serve import ServeConfig, SimdramService
    from repro.serve.router import ReplicaRouter

    width = args.width
    mask = (1 << width) - 1
    geometry = DramGeometry.sim_small(
        cols=args.cols, data_rows=args.data_rows, banks=args.banks)
    config = SimdramConfig(geometry=geometry)
    rng = np.random.default_rng(args.seed)
    ops = ("add", "sub", "min", "max")
    goldens = {"add": lambda a, b: (a + b) & mask,
               "sub": lambda a, b: (a - b) & mask,
               "min": np.minimum, "max": np.maximum}

    requests = []
    for i in range(args.requests):
        op = ops[i % len(ops)]
        a = rng.integers(0, 1 << (width - 1), args.lanes)
        b = rng.integers(0, 1 << (width - 1), args.lanes)
        requests.append((op, a, b))

    manifest = [(op, width) for op in ops]
    tracer, trace_path = _make_tracer(args)
    with ReplicaRouter(args.replicas, config=config,
                       manifest=manifest) as router, \
            SimdramService(
                router,
                ServeConfig(max_wait_s=args.max_wait_ms / 1e3),
                tracer=tracer) as service:
        handles = [service.submit(op, a, b, width=width)
                   for op, a, b in requests]
        if args.kill_one and args.replicas > 1:
            victim = 0
            deadline = time.monotonic() + 30
            while (time.monotonic() < deadline
                   and router.replicas.n_inflight(victim) == 0
                   and not all(h.done() for h in handles)):
                time.sleep(0.0005)
            router.kill(victim)
        n_ok = sum(
            bool(np.array_equal(handle.result(300) & mask,
                                goldens[op](a, b)))
            for handle, (op, a, b) in zip(handles, requests))
        stats = service.stats()

    postmortem_path = None
    if args.postmortem:
        # Dumped after close(): cleanly-stopped replicas shipped their
        # rings home, a killed one was recovered from its spill file —
        # the merged JSON is the drill's black box.
        from repro.obs.flightrec import get_flight_recorder
        postmortem_path = get_flight_recorder().dump_to(
            args.postmortem, reason="serve-cluster drill")

    tier = stats["replica_tier"]
    rows = [
        ("replicas (alive at end)",
         f"{args.replicas} ({len(tier['alive'])})"),
        ("requests verified", f"{n_ok} / {args.requests}"),
        ("dispatches", stats["packing"]["dispatches"]),
        ("replica deaths", stats["failover"]["replica_deaths"]),
        ("requeued requests", stats["failover"]["requeued_requests"]),
        ("router rebalances", tier["router"]["rebalanced"]),
        ("modeled makespan (us)",
         round(max((info.get("busy_ns", 0) for info in
                    tier["replicas"].values()), default=0) / 1e3, 2)),
    ]
    for rid, counters in sorted(stats["replicas"].items()):
        rows.append((f"replica {rid}",
                     f"{counters['dispatches']} dispatches, "
                     f"{counters['requests']} requests"))
    rows.extend(_write_trace(tracer, trace_path))
    if postmortem_path:
        rows.append(("flight-recorder postmortem", postmortem_path))
    print(format_table(
        ["metric", "value"], rows,
        title=f"{args.requests} requests over {args.replicas} replica "
              f"processes"
              + (" (one killed mid-flight)" if args.kill_one else "")))
    return 0 if n_ok == args.requests else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    """Run a small deterministic serve workload and print the unified
    metrics: Prometheus text exposition by default, the structured
    snapshot with ``--json``, and optionally a Chrome trace.

    The workload carries per-request deadlines (every third request is
    generous, one is already lapsed) so the SLO series — goodput, shed
    counts, on-time splits — and the modeled energy histogram all show
    real values.  With ``--requests 0`` no traffic runs at all and the
    scrape demonstrates the schema-stable zero-valued series.

    ``--watch N`` re-scrapes and re-prints every N seconds (bound the
    run with ``--frames``), reusing the ``repro top`` refresh loop."""
    import json

    from repro.errors import DeadlineExceeded
    from repro.obs.dashboard import refresh_loop
    from repro.obs.metrics import MetricsRegistry
    from repro.runtime import SimdramCluster
    from repro.serve import ServeConfig, SimdramService

    geometry = DramGeometry.sim_small(
        cols=args.cols, data_rows=256, banks=2)
    config = SimdramConfig(geometry=geometry)
    rng = np.random.default_rng(args.seed)
    tracer, trace_path = _make_tracer(args)
    registry = MetricsRegistry()   # private: one run, one namespace
    with SimdramCluster(2, config=config) as cluster, \
            SimdramService(cluster,
                           ServeConfig(max_wait_s=0.002, slo_aware=True),
                           tenants={"alpha": 2.0, "beta": 1.0},
                           tracer=tracer, registry=registry) as service:
        handles = []
        for i in range(args.requests):
            op = ("add", "sub", "min")[i % 3]
            tenant = ("alpha", "beta")[i % 2]
            n = int(rng.integers(1, 9))
            a = rng.integers(0, 1 << args.width, n)
            b = rng.integers(0, 1 << args.width, n)
            # A lapsed deadline on the first request exercises the
            # shed path; generous ones populate the on-time series.
            deadline_s = (0.0 if i == 0
                          else 30.0 if i % 3 == 0 else None)
            handles.append(service.submit(op, a, b, width=args.width,
                                          tenant=tenant,
                                          deadline_s=deadline_s))
        for handle in handles:
            try:
                handle.result(120)
            except DeadlineExceeded:
                pass   # the intentionally lapsed request
        def scrape(_frame: int) -> str:
            if args.json:
                return json.dumps(registry.snapshot(), indent=2,
                                  sort_keys=True, default=float)
            return service.prometheus()

        if args.watch is not None:
            refresh_loop(scrape, interval_s=args.watch,
                         frames=args.frames, screen="plain")
        else:
            print(scrape(0), end="" if not args.json else "\n")
    for label, detail in _write_trace(tracer, trace_path):
        print(f"# {label}: {detail}", file=sys.stderr)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Live observability dashboard over a synthetic serve workload.

    Each frame submits a small batch, waits for it, evaluates the SLO
    burn-rate rules and renders one ``repro top`` screen (curses on a
    terminal, plain text otherwise).  ``--scenario collapse`` walks
    warm → goodput collapse (every deadline already lapsed, so all
    requests shed) → recovery, which fires and then resolves the
    ``goodput_floor`` alert on screen.  Alert windows advance one tick
    per frame, so the scenario is deterministic at any ``--interval``.
    """
    from repro.errors import DeadlineExceeded
    from repro.obs.alerts import AlertManager, default_rules
    from repro.obs.dashboard import collect_view, refresh_loop, render_top
    from repro.obs.flightrec import get_flight_recorder
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.pmu import get_pmu
    from repro.runtime import SimdramCluster
    from repro.serve import ServeConfig, SimdramService

    geometry = DramGeometry.sim_small(
        cols=args.cols, data_rows=256, banks=2)
    config = SimdramConfig(geometry=geometry)
    rng = np.random.default_rng(args.seed)
    registry = MetricsRegistry()
    # Burn windows are sized in frame ticks (evaluate(now=frame)), not
    # wall seconds: 1.5 ticks short / 3.5 ticks long means "two points"
    # and "four points" regardless of how long a frame really takes.
    manager = AlertManager(registry, default_rules(
        goodput_floor_rps=args.goodput_floor,
        p99_ceiling_ms=1000.0,
        shed_rate_max=0.5,
        occupancy_floor=1e-9,
        short_s=1.5, long_s=3.5))

    third = max(3, (args.frames or 12) // 3)

    def phase_of(frame: int) -> str:
        if args.scenario != "collapse":
            return "steady"
        if frame < third:
            return "warm"
        if frame < 2 * third:
            return "collapse"
        return "recover"

    ops = ("add", "sub", "min")
    with SimdramCluster(2, config=config) as cluster, \
            SimdramService(cluster,
                           ServeConfig(max_wait_s=0.002, slo_aware=True),
                           tenants={"alpha": 2.0, "beta": 1.0},
                           registry=registry) as service:

        def frame(index: int) -> str:
            phase = phase_of(index)
            handles = []
            for j in range(args.batch):
                n = int(rng.integers(2, 9))
                a = rng.integers(0, 1 << args.width, n)
                b = rng.integers(0, 1 << args.width, n)
                deadline_s = 0.0 if phase == "collapse" else 30.0
                handles.append(service.submit(
                    ops[j % len(ops)], a, b, width=args.width,
                    tenant=("alpha", "beta")[j % 2],
                    deadline_s=deadline_s))
            for handle in handles:
                try:
                    handle.result(120)
                except DeadlineExceeded:
                    pass   # the collapse phase sheds everything
            manager.evaluate(now=float(index))
            return render_top(collect_view(
                service.stats(), alerts=manager, pmu=get_pmu(),
                recorder=get_flight_recorder(),
                title=f"repro top · {args.scenario}:{phase}"))

        refresh_loop(frame, interval_s=args.interval,
                     frames=args.frames,
                     screen="plain" if args.plain else "auto")

    if manager.events:
        print("alert transitions:")
        for event in manager.events:
            print(f"  {event}")
    if args.scenario == "collapse" and args.frames:
        fired = any(e.rule == "goodput_floor" and e.state == "firing"
                    for e in manager.events)
        resolved = any(e.rule == "goodput_floor"
                       and e.state == "resolved"
                       for e in manager.events)
        return 0 if fired and resolved else 1
    return 0


def _cmd_serve_stream(args: argparse.Namespace) -> int:
    """Streaming-inference demo: staggered multi-step streams served
    with continuous batching, side by side with the
    drain-between-steps baseline.  Every stream's final activation is
    verified against the numpy fold; the table shows why re-packing
    between steps wins (fewer, fuller dispatches)."""
    import time

    from repro.runtime import SimdramCluster
    from repro.serve import (
        ServeConfig,
        SimdramService,
        StreamingServer,
        affine_relu_step,
        stream_golden,
    )

    width = args.width
    geometry = DramGeometry.sim_small(
        cols=args.cols, data_rows=256, banks=args.banks)
    config = SimdramConfig(geometry=geometry)
    step = affine_relu_step()
    rng = np.random.default_rng(args.seed)
    spec = [(rng.integers(1, 1 << (width - 1), args.lanes),
             rng.integers(0, 4, args.lanes))
            for _ in range(2 * args.streams)]

    modes = {}
    for mode, drain in (("continuous", False), ("drain", True)):
        # The Perfetto trace (one serve.stream tree per stream, with
        # serve.step children) only covers the continuous run.
        tracer, trace_path = (_make_tracer(args) if not drain
                              else (None, None))
        with SimdramCluster(args.modules, config=config) as cluster, \
                SimdramService(
                    cluster,
                    ServeConfig(max_wait_s=0.002, slo_aware=True),
                    tracer=tracer) as service, \
                StreamingServer(service,
                                drain_between_steps=drain) as server:
            service.warmup([(step, width)])
            service.metrics.reset()
            t0 = time.monotonic()

            def start(x0, w, server=server):
                return server.submit(
                    step, x0, n_steps=args.steps, width=width,
                    feeds={"w": w}, deadline_s=args.deadline_s)

            wave1 = [start(x0, w) for x0, w in spec[:args.streams]]
            # Stagger: the second wave arrives while the first is
            # mid-sequence — continuous batching packs it straight
            # into the in-flight streams' next step.
            limit = time.monotonic() + 30
            while (time.monotonic() < limit
                   and not all(h.steps_done >= 2 or h.done()
                               for h in wave1)):
                time.sleep(0.0005)
            wave2 = [start(x0, w) for x0, w in spec[args.streams:]]
            streams = wave1 + wave2
            server.drain(120)
            wall_ms = (time.monotonic() - t0) * 1e3

            n_ok = sum(
                bool(np.array_equal(
                    h.result(120),
                    stream_golden(step, x0, args.steps, {"w": w},
                                  width)))
                for h, (x0, w) in zip(streams, spec))
            stats = service.stats()
            energies = [h.energy_nj for h in streams
                        if h.energy_nj is not None]
            modes[mode] = {
                "verified": f"{n_ok} / {len(streams)}",
                "dispatches": stats["packing"]["dispatches"],
                "lane occupancy":
                    f"{stats['packing']['lane_occupancy']:.0%}",
                "on-time streams":
                    sum(bool(h.on_time) for h in streams),
                "mean energy (nJ/stream)":
                    round(float(np.mean(energies)), 2)
                    if energies else "n/a",
                "goodput (req/s)":
                    round(stats["slo"]["goodput_rps"], 1),
                "wall (ms)": round(wall_ms, 1),
            }
            if mode == "continuous":
                trace_rows = _write_trace(tracer, trace_path)
                all_ok = n_ok == len(streams)
            else:
                all_ok = all_ok and n_ok == len(streams)

    rows = [(metric, modes["continuous"][metric],
             modes["drain"][metric])
            for metric in modes["continuous"]]
    rows.extend((label, detail, "") for label, detail in trace_rows)
    print(format_table(
        ["metric", "continuous", "drain-between-steps"], rows,
        title=f"{2 * args.streams} staggered streams x {args.steps} "
              f"steps of relu((x + w) - 1)"))
    return 0 if all_ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SIMDRAM (ASPLOS 2021) reproduction toolkit")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("ops", help="list the operation catalog")

    compile_parser = sub.add_parser(
        "compile", help="compile one operation and print its µProgram")
    compile_parser.add_argument("op", choices=sorted(CATALOG))
    compile_parser.add_argument("width", type=int)
    compile_parser.add_argument("--backend", default="simdram",
                                choices=("simdram", "ambit"))
    compile_parser.add_argument("--full", action="store_true",
                                help="print every µOp")

    compare_parser = sub.add_parser(
        "compare", help="model one operation on all platforms")
    compare_parser.add_argument("op", choices=sorted(CATALOG))
    compare_parser.add_argument("width", type=int)

    sub.add_parser("demo", help="run a functional end-to-end demo")

    cluster_parser = sub.add_parser(
        "cluster",
        help="run an operation on the sharded multi-module runtime")
    cluster_parser.add_argument("--modules", type=int, default=4,
                                help="number of SIMDRAM modules")
    cluster_parser.add_argument("--op", default="add",
                                choices=sorted(CATALOG))
    cluster_parser.add_argument("--width", type=int, default=8)
    cluster_parser.add_argument("--n", type=int, default=4096,
                                help="elements in the input vectors")
    cluster_parser.add_argument("--cols", type=int, default=128,
                                help="SIMD lanes per bank")
    cluster_parser.add_argument("--data-rows", type=int, default=256,
                                help="D-group rows per module (small "
                                     "values exercise the paging layer)")
    cluster_parser.add_argument("--banks", type=int, default=2)
    cluster_parser.add_argument("--seed", type=int, default=0)

    serve_parser = sub.add_parser(
        "serve-demo",
        help="run a multi-tenant lane-packing serving demo")
    serve_parser.add_argument("--requests", type=int, default=96,
                              help="requests to generate")
    serve_parser.add_argument("--max-request-lanes", type=int, default=8,
                              help="largest per-request vector")
    serve_parser.add_argument("--modules", type=int, default=2)
    serve_parser.add_argument("--width", type=int, default=8)
    serve_parser.add_argument("--max-wait-ms", type=float, default=20.0,
                              help="batching window before a partial "
                                   "pack group flushes")
    serve_parser.add_argument("--cols", type=int, default=64)
    serve_parser.add_argument("--data-rows", type=int, default=256)
    serve_parser.add_argument("--banks", type=int, default=2)
    serve_parser.add_argument("--seed", type=int, default=0)
    serve_parser.add_argument("--trace-out", metavar="PATH",
                              help="write a Chrome/Perfetto trace of "
                                   "every request to PATH")

    sc_parser = sub.add_parser(
        "serve-cluster",
        help="serve over N replica processes with failover")
    sc_parser.add_argument("--replicas", type=int, default=2,
                           help="replica processes to spawn")
    sc_parser.add_argument("--requests", type=int, default=32)
    sc_parser.add_argument("--lanes", type=int, default=256,
                           help="elements per request vector")
    sc_parser.add_argument("--width", type=int, default=8)
    sc_parser.add_argument("--kill-one", action="store_true",
                           help="SIGKILL one replica mid-flight to "
                                "demonstrate failover")
    sc_parser.add_argument("--max-wait-ms", type=float, default=1.0)
    sc_parser.add_argument("--cols", type=int, default=32)
    sc_parser.add_argument("--data-rows", type=int, default=256)
    sc_parser.add_argument("--banks", type=int, default=2)
    sc_parser.add_argument("--seed", type=int, default=0)
    sc_parser.add_argument("--trace-out", metavar="PATH",
                           help="write a Chrome/Perfetto trace of "
                                "every request to PATH (tracks per "
                                "replica process)")
    sc_parser.add_argument("--postmortem", metavar="PATH",
                           help="write the merged flight-recorder dump "
                                "(all replica black boxes) to PATH "
                                "after the run")

    ss_parser = sub.add_parser(
        "serve-stream",
        help="serve multi-step streams with continuous batching vs "
             "the drain-between-steps baseline")
    ss_parser.add_argument("--streams", type=int, default=4,
                           help="streams per wave (two staggered "
                                "waves are submitted)")
    ss_parser.add_argument("--steps", type=int, default=6,
                           help="dependent steps per stream")
    ss_parser.add_argument("--lanes", type=int, default=8,
                           help="elements per stream vector")
    ss_parser.add_argument("--width", type=int, default=8)
    ss_parser.add_argument("--deadline-s", type=float, default=60.0,
                           help="SLO for each whole sequence")
    ss_parser.add_argument("--modules", type=int, default=1)
    ss_parser.add_argument("--cols", type=int, default=32)
    ss_parser.add_argument("--banks", type=int, default=2)
    ss_parser.add_argument("--seed", type=int, default=0)
    ss_parser.add_argument("--trace-out", metavar="PATH",
                           help="write a Chrome/Perfetto trace of the "
                                "continuous run (serve.stream trees "
                                "with serve.step children)")

    stats_parser = sub.add_parser(
        "stats",
        help="run a small serve workload and print unified metrics")
    stats_parser.add_argument("--requests", type=int, default=24)
    stats_parser.add_argument("--width", type=int, default=8)
    stats_parser.add_argument("--cols", type=int, default=32)
    stats_parser.add_argument("--seed", type=int, default=0)
    stats_parser.add_argument("--json", action="store_true",
                              help="print the JSON snapshot instead of "
                                   "Prometheus text")
    stats_parser.add_argument("--trace-out", metavar="PATH",
                              help="also write a Chrome/Perfetto trace")
    stats_parser.add_argument("--watch", type=float, metavar="N",
                              help="re-scrape and re-print every N "
                                   "seconds instead of printing once")
    stats_parser.add_argument("--frames", type=int,
                              help="with --watch: stop after this many "
                                   "scrapes (default: until ^C)")

    top_parser = sub.add_parser(
        "top",
        help="live dashboard: serving stats, PMU bars, burn-rate "
             "alerts and the flight-recorder tail")
    top_parser.add_argument("--scenario", default="steady",
                            choices=("steady", "collapse"),
                            help="collapse walks warm -> all-deadlines-"
                                 "lapsed -> recovery to fire and "
                                 "resolve the goodput_floor alert")
    top_parser.add_argument("--frames", type=int,
                            help="frames to render (default: until ^C "
                                 "or q; collapse phases are thirds of "
                                 "this)")
    top_parser.add_argument("--interval", type=float, default=0.5,
                            help="seconds between frames")
    top_parser.add_argument("--batch", type=int, default=6,
                            help="requests submitted per frame")
    top_parser.add_argument("--goodput-floor", type=float, default=1.0,
                            help="goodput_floor alert threshold "
                                 "(on-time completions per tick)")
    top_parser.add_argument("--width", type=int, default=8)
    top_parser.add_argument("--cols", type=int, default=32)
    top_parser.add_argument("--seed", type=int, default=0)
    top_parser.add_argument("--plain", action="store_true",
                            help="never use curses; append plain-text "
                                 "frames (good for piping)")
    return parser


_HANDLERS = {
    "ops": _cmd_ops,
    "compile": _cmd_compile,
    "compare": _cmd_compare,
    "demo": _cmd_demo,
    "cluster": _cmd_cluster,
    "serve-demo": _cmd_serve_demo,
    "serve-cluster": _cmd_serve_cluster,
    "serve-stream": _cmd_serve_stream,
    "stats": _cmd_stats,
    "top": _cmd_top,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
