"""SIMDRAM: a framework for bit-serial SIMD processing using DRAM.

Full reproduction of Hajinazar, Oliveira, et al. (ASPLOS 2021).  The
public API centres on :class:`repro.Simdram`:

    >>> from repro import Simdram
    >>> sim = Simdram()
    >>> a = sim.array([1, 2, 3], width=8)
    >>> b = sim.array([10, 20, 30], width=8)
    >>> sim.run("add", a, b).to_numpy()
    array([11, 22, 33])

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.dram` — the DRAM substrate simulator (Ambit B/C/D row
  groups, triple-row activation, RowClone, dual-contact cells);
* :mod:`repro.logic` — circuits, the arithmetic library and
  majority-inverter graphs (framework Step 1);
* :mod:`repro.uprog` — the µProgram scheduler (Step 2);
* :mod:`repro.exec` + :mod:`repro.isa` — control unit, transposition
  unit and the bbop ISA (Step 3 and system integration);
* :mod:`repro.core` — the operation catalog and the Simdram facade;
* :mod:`repro.lazy` — the programmer-transparent lazy tensor frontend
  (ordinary array code captured into fused µPrograms);
* :mod:`repro.ambit` — the Ambit baseline;
* :mod:`repro.perf` — throughput/energy/area models for SIMDRAM, Ambit,
  CPU and GPU;
* :mod:`repro.reliability` — process-variation Monte Carlo;
* :mod:`repro.apps` — the seven application kernels of the paper;
* :mod:`repro.runtime` — the sharded multi-module runtime: clusters,
  device-resident tensors, the paging allocator and the async job
  scheduler;
* :mod:`repro.serve` — the multi-tenant serving layer: lane-packing
  request batcher, admission control, weighted fair scheduling and
  serving telemetry;
* :mod:`repro.obs` — observability: the monotonic clock shim,
  request span tracing with Chrome-trace (Perfetto) export, and the
  unified metrics registry with Prometheus text exposition.
"""

from repro.core.framework import Simdram, SimdramArray, SimdramConfig
from repro.core.operations import CATALOG, PAPER_OPERATIONS, get_operation
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTiming
from repro.errors import SimdramError
from repro.exec.engines import (
    ExecutionEngine,
    get_engine,
    list_engines,
    register_engine,
)
from repro.runtime import DeviceTensor, SimdramCluster
from repro.serve import ServeConfig, SimdramService

__version__ = "1.2.0"

__all__ = [
    "Simdram",
    "SimdramArray",
    "SimdramConfig",
    "SimdramCluster",
    "SimdramService",
    "ServeConfig",
    "DeviceTensor",
    "ExecutionEngine",
    "register_engine",
    "get_engine",
    "list_engines",
    "CATALOG",
    "PAPER_OPERATIONS",
    "get_operation",
    "DramGeometry",
    "DramTiming",
    "SimdramError",
    "__version__",
]
