"""Step 2 of the SIMDRAM framework: allocate MIG nodes to DRAM rows and
emit the AAP/AP sequence that computes the operation.

The scheduler walks the optimized MIG in topological order and, for each
MAJ node, (1) picks one of the four TRA-capable wordline triples of the
Ambit B-group, (2) marshals the three operands into the triple's
wordlines with AAP copies — exploiting values already present in the
B-group, constant rows, input rows, temporaries and previously written
outputs — and (3) fires the TRA with an AP.  Complemented edges are
served by routing values through a dual-contact cell, whose negated port
yields NOT for free on read.

Because a TRA destroys its three source rows, any value that is still
live and has no other copy is spilled to a D-group temporary (or directly
to its output row when possible) before the activation.  A peephole pass
then merges each ``AP(triple)`` with an immediately following copy out of
the triple into a single ``AAP(triple, dst)``, exactly the composite
command Ambit uses.

Two scheduling modes support the paper's ablation study:

* ``reuse=True`` (default) — the full SIMDRAM Step-2 behaviour described
  above, minimizing row activations.
* ``reuse=False`` — a naive per-gate schedule (load three operands, fire,
  store) that reproduces the command streams of gate-at-a-time baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations

from repro.dram.rows import B_ADDRESS_MAP
from repro.errors import SchedulingError
from repro.logic.mig import CONST_NODE, Mig, Ref
from repro.uprog.program import MicroProgram, OperandSpec
from repro.uprog.uops import MicroOp, Space, UAap, UAp, URow

# ---------------------------------------------------------------------------
# B-group plane model: 6 storage planes behind the 8 wordlines.
# Planes 0..3 are T0..T3 (positive port only); planes 4/5 are DCC0/DCC1
# with a positive port (d-wordline) and a negated port (n-wordline).
# ---------------------------------------------------------------------------
PLANE_POS_ADDR: dict[int, int] = {0: 0, 1: 1, 2: 2, 3: 3, 4: 6, 5: 7}
PLANE_NEG_ADDR: dict[int, int] = {4: 4, 5: 5}
DCC_PLANES = (4, 5)

#: TRA triples: B-group AP address -> ((plane, port_is_negated), ...).
TRIPLES: dict[int, tuple[tuple[int, bool], ...]] = {
    12: ((0, False), (1, False), (2, False)),
    13: ((1, False), (2, False), (3, False)),
    14: ((4, True), (1, False), (2, False)),
    15: ((5, True), (0, False), (3, False)),
}

#: A value: (MIG node id, negated).  A plane "content" is the value read
#: through the plane's positive port.
Value = tuple[int, bool]


@dataclass(frozen=True)
class ScheduleOptions:
    """Knobs for the Step-2 scheduler (ablation support)."""

    reuse: bool = True      # exploit values already in the B-group
    peephole: bool = True   # merge AP + copy-out into one AAP


@dataclass
class _State:
    """Mutable scheduling state: where every live value currently is."""

    plane: list[Value | None] = field(default_factory=lambda: [None] * 6)
    temp: dict[int, Value] = field(default_factory=dict)   # temp idx -> value
    written_out: dict[URow, Value] = field(default_factory=dict)
    free_temps: list[int] = field(default_factory=list)
    next_temp: int = 0
    high_water: int = 0

    def alloc_temp(self) -> int:
        if self.free_temps:
            return self.free_temps.pop()
        idx = self.next_temp
        self.next_temp += 1
        self.high_water = max(self.high_water, self.next_temp)
        return idx

    def free_dead_temps(self, is_live) -> None:
        dead = [idx for idx, (node, _) in self.temp.items()
                if not is_live(node)]
        for idx in dead:
            del self.temp[idx]
            self.free_temps.append(idx)


def cone_order(mig: Mig) -> list[int]:
    """Alternative Step-2 node order: complete each output's whole fanin
    cone (depth-first) before starting the next output's.

    Compared to the default topological order this keeps values close to
    their consumers, shortening live ranges across the six B-group
    planes — a large win for wide/deep graphs (the multiplier array,
    fused multi-operation pipelines) and a small loss for shallow ones.
    :func:`schedule` tries both orders and keeps the cheaper program.
    """
    order: list[int] = []
    seen: set[int] = set()
    for _, out_ref in mig.outputs:
        stack: list[tuple[int, bool]] = [(out_ref.node, False)]
        while stack:
            node, expanded = stack.pop()
            if node in seen:
                continue
            children = mig.children_of(node)
            if children is None:  # leaf
                seen.add(node)
                continue
            if expanded:
                seen.add(node)
                order.append(node)
                continue
            stack.append((node, True))
            stack.extend((ref.node, False) for ref in reversed(children))
    return order


class Scheduler:
    """Compiles one MIG into a :class:`MicroProgram`."""

    def __init__(self, mig: Mig, input_rows: dict[str, URow],
                 output_rows: dict[str, URow],
                 options: ScheduleOptions | None = None,
                 order: list[int] | None = None) -> None:
        self.mig = mig
        self.options = options or ScheduleOptions()
        self.input_rows = dict(input_rows)
        self.output_rows = dict(output_rows)
        self.uops: list[MicroOp] = []
        self.state = _State()

        self.input_loc: dict[int, URow] = {}
        for name in mig.input_names:
            if name not in self.input_rows:
                raise SchedulingError(f"no row binding for input {name!r}")
        missing = {name for name, _ in mig.outputs} - set(self.output_rows)
        if missing:
            raise SchedulingError(f"no row binding for outputs {missing}")

        self.order = mig.live_nodes() if order is None else order
        if order is not None and sorted(order) != sorted(mig.live_nodes()):
            raise SchedulingError(
                "explicit schedule order must be a permutation of the "
                "MIG's live nodes")
        self.remaining_uses: dict[int, int] = {}
        for node in self.order:
            for ref in mig.children_of(node):
                if not self._is_leaf(ref.node):
                    self.remaining_uses[ref.node] = (
                        self.remaining_uses.get(ref.node, 0) + 1)
        #: node -> [(out_row, negated)] still to be written.
        self.pending_out: dict[int, list[tuple[URow, bool]]] = {}
        for name, ref in mig.outputs:
            self.pending_out.setdefault(ref.node, []).append(
                (self.output_rows[name], ref.negated))

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _is_leaf(self, node: int) -> bool:
        return self.mig.children_of(node) is None

    def _is_live(self, node: int) -> bool:
        return (self.remaining_uses.get(node, 0) > 0
                or bool(self.pending_out.get(node)))

    def _input_row(self, node: int) -> URow | None:
        name = self.mig.input_name(node)
        if name is None:
            return None
        return self.input_rows[name]

    def _find_source(self, node: int, negated: bool,
                     use_planes: bool = True,
                     avoid_planes: frozenset[int] = frozenset(),
                     ) -> URow | None:
        """A row currently readable as the value (node, negated)."""
        if use_planes and self.options.reuse:
            for p, content in enumerate(self.state.plane):
                if content is None or p in avoid_planes:
                    continue
                held_node, held_neg = content
                if held_node != node:
                    continue
                if held_neg == negated:
                    return URow(Space.BGROUP, PLANE_POS_ADDR[p])
                if p in PLANE_NEG_ADDR:
                    return URow(Space.BGROUP, PLANE_NEG_ADDR[p])
        for idx, (held_node, held_neg) in self.state.temp.items():
            if held_node == node and held_neg == negated:
                return URow(Space.TEMP, idx)
        for row, (held_node, held_neg) in self.state.written_out.items():
            if held_node == node and held_neg == negated:
                return row
        if node == CONST_NODE:
            return URow(Space.CTRL, 1 if negated else 0)
        if not negated:
            return self._input_row(node)
        return None

    def _has_copy_outside(self, node: int, planes: frozenset[int]) -> bool:
        """True if the value survives clobbering the given planes."""
        if self._is_leaf(node):
            return True  # inputs/constants always have a home row
        for p, content in enumerate(self.state.plane):
            if p in planes or content is None:
                continue
            if content[0] == node:
                return True
        if any(held == node for held, _ in self.state.temp.values()):
            return True
        return any(held == node
                   for held, _ in self.state.written_out.values())

    # ------------------------------------------------------------------
    # emission primitives
    # ------------------------------------------------------------------
    def _emit(self, uop: MicroOp) -> None:
        self.uops.append(uop)

    def _plane_read_addr(self, plane: int, negated: bool) -> URow | None:
        """Address reading plane ``plane`` as (node, negated) given content."""
        content = self.state.plane[plane]
        if content is None:
            return None
        if content[1] == negated:
            return URow(Space.BGROUP, PLANE_POS_ADDR[plane])
        if plane in PLANE_NEG_ADDR:
            return URow(Space.BGROUP, PLANE_NEG_ADDR[plane])
        return None

    def _spill_plane(self, plane: int) -> None:
        """Preserve a live, sole-copy plane value before it is clobbered."""
        content = self.state.plane[plane]
        node, held_neg = content
        # Prefer writing a pending output row: same cost, more progress.
        for i, (out_row, out_neg) in enumerate(self.pending_out.get(node, [])):
            addr = self._plane_read_addr(plane, out_neg)
            if addr is not None:
                self._emit(UAap(addr, out_row))
                self.state.written_out[out_row] = (node, out_neg)
                self.pending_out[node].pop(i)
                if not self.pending_out[node]:
                    del self.pending_out[node]
                return
        idx = self.state.alloc_temp()
        self._emit(UAap(URow(Space.BGROUP, PLANE_POS_ADDR[plane]),
                        URow(Space.TEMP, idx)))
        self.state.temp[idx] = (node, held_neg)

    def _install(self, plane: int, want: Value,
                 triple_planes: frozenset[int]) -> None:
        """Make plane ``plane`` hold content ``want`` (positive-port view)."""
        node, want_neg = want
        # Prefer sources outside the triple: in-triple planes are about to
        # be overwritten, so reading them creates ordering hazards.
        src = self._find_source(node, want_neg, avoid_planes=triple_planes)
        if src is None:
            src = self._find_source(node, want_neg)
        if src is not None:
            self._emit(UAap(src, URow(Space.BGROUP, PLANE_POS_ADDR[plane])))
            self.state.plane[plane] = want
            return
        src = self._find_source(node, not want_neg)
        if src is None:
            raise SchedulingError(
                f"value for node {node} unavailable during scheduling")
        if plane in PLANE_NEG_ADDR:
            # Write the complement through the negated port.
            self._emit(UAap(src, URow(Space.BGROUP, PLANE_NEG_ADDR[plane])))
            self.state.plane[plane] = want
            return
        # T-plane needing a complement: route through a free DCC first.
        dcc = self._pick_dcc(triple_planes)
        self._emit(UAap(src, URow(Space.BGROUP, PLANE_NEG_ADDR[dcc])))
        self.state.plane[dcc] = (node, want_neg)
        self._emit(UAap(URow(Space.BGROUP, PLANE_POS_ADDR[dcc]),
                        URow(Space.BGROUP, PLANE_POS_ADDR[plane])))
        self.state.plane[plane] = want

    def _pick_dcc(self, triple_planes: frozenset[int]) -> int:
        """Choose a DCC plane to use as a NOT gateway, spilling if needed."""
        candidates = [p for p in DCC_PLANES if p not in triple_planes]
        if not candidates:
            candidates = list(DCC_PLANES)
        # Prefer a dead or duplicated plane.  Copies inside the current
        # triple do not count: the TRA is about to destroy them.
        for p in candidates:
            content = self.state.plane[p]
            if content is None or not self._is_live(content[0]) \
                    or self._has_copy_outside(content[0],
                                              triple_planes | {p}):
                return p
        p = candidates[0]
        self._spill_plane(p)
        return p

    # ------------------------------------------------------------------
    # per-node scheduling
    # ------------------------------------------------------------------
    def _plan_cost(self, slots: tuple[tuple[int, bool], ...],
                   children: tuple[Ref, ...]) -> int:
        """Estimate AAPs to run this node's TRA with this assignment."""
        cost = 0
        triple_planes = frozenset(p for p, _ in slots)
        uses_after = dict(self.remaining_uses)
        for ref in children:
            if not self._is_leaf(ref.node):
                uses_after[ref.node] = uses_after.get(ref.node, 0) - 1
        # Install costs.
        for (plane, port_neg), ref in zip(slots, children):
            content = self.state.plane[plane]
            want = (ref.node, ref.negated ^ port_neg)
            if self.options.reuse and content == want:
                continue
            if self._find_source(ref.node, want[1]) is not None:
                cost += 1
            elif plane in PLANE_NEG_ADDR and self._find_source(
                    ref.node, not want[1]) is not None:
                cost += 1
            else:
                cost += 2
        # Spill costs: distinct live values that exist only inside the triple.
        if self.options.reuse:
            spilled: set[int] = set()
            for plane in triple_planes:
                content = self.state.plane[plane]
                if content is None or content[0] in spilled:
                    continue
                node = content[0]
                live = (uses_after.get(node, 0) > 0
                        or bool(self.pending_out.get(node)))
                if live and not self._has_copy_outside(node, triple_planes):
                    cost += 1
                    spilled.add(node)
        return cost

    def _schedule_node(self, node: int) -> None:
        children = self.mig.children_of(node)
        best: tuple[int, int, tuple[Ref, ...]] | None = None
        for ap_index, slots in TRIPLES.items():
            for perm in permutations(children):
                cost = self._plan_cost(slots, perm)
                if best is None or cost < best[0]:
                    best = (cost, ap_index, perm)
        _, ap_index, perm = best
        slots = TRIPLES[ap_index]
        triple_planes = frozenset(p for p, _ in slots)

        # 1. Spill live sole-copy values out of the triple.
        if self.options.reuse:
            uses_after = dict(self.remaining_uses)
            for ref in children:
                if not self._is_leaf(ref.node):
                    uses_after[ref.node] = uses_after.get(ref.node, 0) - 1
            for plane in sorted(triple_planes):
                content = self.state.plane[plane]
                if content is None:
                    continue
                held = content[0]
                live = (uses_after.get(held, 0) > 0
                        or bool(self.pending_out.get(held)))
                if live and not self._has_copy_outside(held, triple_planes):
                    self._spill_plane(plane)

        # 2. Marshal operands into the triple, keeping matches in place.
        pending_installs: list[tuple[int, Value]] = []
        for (plane, port_neg), ref in zip(slots, perm):
            want = (ref.node, ref.negated ^ port_neg)
            if self.options.reuse and self.state.plane[plane] == want:
                continue
            pending_installs.append((plane, want))
        # Installs sourced from planes inside the triple must run before
        # those planes are overwritten; _install prefers outside sources,
        # so a simple greedy order suffices: install planes whose current
        # content is not needed as a source by later installs first.
        for plane, want in self._order_installs(pending_installs,
                                                triple_planes):
            self._install(plane, want, triple_planes)

        # 3. Fire the TRA.
        self._emit(UAp(URow(Space.BGROUP, ap_index)))
        for plane, port_neg in slots:
            self.state.plane[plane] = (node, port_neg)

        # 4. Update liveness.
        for ref in children:
            if not self._is_leaf(ref.node):
                self.remaining_uses[ref.node] -= 1
        self.state.free_dead_temps(self._is_live)

        # 5. Persist the result when needed.
        self._persist_result(node, triple_planes)

    def _order_installs(self, installs: list[tuple[int, Value]],
                        triple_planes: frozenset[int],
                        ) -> list[tuple[int, Value]]:
        """Order installs so in-triple sources are consumed before the
        planes holding them are overwritten.

        An install *depends on* every plane that holds the only remaining
        copy of the value it needs.  Kahn's algorithm orders the (at most
        three) installs; a dependency cycle is broken by copying one
        trapped value out to a temporary first.
        """
        if len(installs) <= 1:
            return installs

        def in_triple_only(node: int) -> set[int]:
            """Planes in the triple holding ``node`` when no copy survives
            elsewhere (empty set means the install is hazard-free)."""
            if self._is_leaf(node) or self._has_copy_outside(
                    node, triple_planes):
                return set()
            return {p for p in triple_planes
                    if self.state.plane[p] is not None
                    and self.state.plane[p][0] == node}

        def order_is_safe(order: tuple[tuple[int, Value], ...]) -> bool:
            done: set[int] = set()
            for plane, want in order:
                holders = in_triple_only(want[0])
                # An install may read its own plane before overwriting it
                # (DCC port flip), so the plane it writes never blocks it.
                if holders and not (holders - done) :
                    return False
                done.add(plane)
            return True

        for candidate in permutations(installs):
            if order_is_safe(candidate):
                return list(candidate)
        # Dependency cycle: free one trapped value via a temp copy, then
        # any order that respects the remaining constraints works.
        _, want = installs[0]
        holders = in_triple_only(want[0])
        plane = min(holders)
        content = self.state.plane[plane]
        idx = self.state.alloc_temp()
        self._emit(UAap(URow(Space.BGROUP, PLANE_POS_ADDR[plane]),
                        URow(Space.TEMP, idx)))
        self.state.temp[idx] = content
        return self._order_installs(installs, triple_planes)

    def _persist_result(self, node: int, triple_planes: frozenset[int]) -> None:
        """Eagerly satisfy cheap output writes; spill in naive mode."""
        for out_row, out_neg in list(self.pending_out.get(node, [])):
            src = self._find_source(node, out_neg)
            if src is None and not self.options.reuse:
                # Naive mode keeps nothing in planes conceptually, but the
                # result is physically there right now: read it directly.
                src = self._plane_result_addr(node, out_neg, triple_planes)
            if src is not None:
                self._emit(UAap(src, out_row))
                self.state.written_out[out_row] = (node, out_neg)
                self.pending_out[node].remove((out_row, out_neg))
        if not self.pending_out.get(node) and node in self.pending_out:
            del self.pending_out[node]

        if not self.options.reuse and self._is_live(node):
            addr = self._plane_result_addr(node, False, triple_planes)
            idx = self.state.alloc_temp()
            self._emit(UAap(addr, URow(Space.TEMP, idx)))
            self.state.temp[idx] = (node, False)
            for plane in triple_planes:
                self.state.plane[plane] = None

    def _plane_result_addr(self, node: int, negated: bool,
                           triple_planes: frozenset[int]) -> URow | None:
        for plane in sorted(triple_planes):
            content = self.state.plane[plane]
            if content is None or content[0] != node:
                continue
            addr = self._plane_read_addr(plane, negated)
            if addr is not None:
                return addr
        return None

    # ------------------------------------------------------------------
    # output flush
    # ------------------------------------------------------------------
    def _flush_outputs(self) -> None:
        for node in list(self.pending_out):
            for out_row, out_neg in list(self.pending_out[node]):
                src = self._find_source(node, out_neg)
                if src is None:
                    src = self._route_through_dcc(node, out_neg)
                self._emit(UAap(src, out_row))
                self.state.written_out[out_row] = (node, out_neg)
                self.pending_out[node].remove((out_row, out_neg))
            del self.pending_out[node]

    def _route_through_dcc(self, node: int, negated: bool) -> URow:
        """Materialize a complement via a dual-contact cell round trip."""
        src = self._find_source(node, not negated)
        if src is None:
            raise SchedulingError(
                f"lost value of node {node} before output flush")
        dcc = self._pick_dcc(frozenset())
        self._emit(UAap(src, URow(Space.BGROUP, PLANE_NEG_ADDR[dcc])))
        self.state.plane[dcc] = (node, negated)
        return URow(Space.BGROUP, PLANE_POS_ADDR[dcc])

    # ------------------------------------------------------------------
    # peephole: AP(triple) + AAP(member, dst) -> AAP(triple, dst)
    # ------------------------------------------------------------------
    def _peephole(self, uops: list[MicroOp]) -> list[MicroOp]:
        out: list[MicroOp] = []
        i = 0
        while i < len(uops):
            op = uops[i]
            if (isinstance(op, UAp) and i + 1 < len(uops)
                    and isinstance(uops[i + 1], UAap)):
                nxt = uops[i + 1]
                if (nxt.src.space is Space.BGROUP
                        and nxt.src.n_wordlines == 1
                        and B_ADDRESS_MAP[nxt.src.index][0]
                        in B_ADDRESS_MAP[op.addr.index]):
                    out.append(UAap(op.addr, nxt.dst))
                    i += 2
                    continue
            out.append(op)
            i += 1
        return out

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def run(self) -> tuple[list[MicroOp], int]:
        """Schedule the whole MIG; returns (µops, temp row count)."""
        for node in self.order:
            self._schedule_node(node)
        self._flush_outputs()
        uops = self.uops
        if self.options.peephole:
            uops = self._peephole(uops)
        return uops, self.state.high_water


def schedule(mig: Mig, op_name: str, backend: str, element_width: int,
             input_specs: list[OperandSpec], output_spec: OperandSpec,
             input_rows: dict[str, URow], output_rows: dict[str, URow],
             options: ScheduleOptions | None = None,
             source_hash: str | None = None) -> MicroProgram:
    """Compile ``mig`` into a :class:`MicroProgram` (the paper's Step 2).

    Schedules the graph under both node orders (topological and
    per-output cone, see :func:`cone_order`) and keeps whichever
    produces fewer commands — compilation is offline (µPrograms are
    built once, at boot in the paper), so trying both is free at
    execution time and consistently shrinks wide programs.
    """
    topo = mig.live_nodes()
    candidates: list[list[int]] = [topo]
    cone = cone_order(mig)
    if cone != topo:
        candidates.append(cone)
    best: tuple[tuple[int, int], list[MicroOp], int] | None = None
    for order in candidates:
        scheduler = Scheduler(mig, input_rows, output_rows, options,
                              order=order)
        uops, n_temp = scheduler.run()
        key = (len(uops), n_temp)
        if best is None or key < best[0]:
            best = (key, uops, n_temp)
    _, uops, n_temp = best
    return MicroProgram(
        op_name=op_name,
        backend=backend,
        element_width=element_width,
        inputs=input_specs,
        output=output_spec,
        uops=uops,
        n_temp_rows=n_temp,
        source_hash=source_hash,
    )


def schedule_stitched(mig: Mig, op_name: str, backend: str,
                      element_width: int, input_specs: list[OperandSpec],
                      input_rows: dict[str, URow],
                      output_groups: list[tuple[str, list[str]]],
                      options: ScheduleOptions | None = None,
                      source_hash: str | None = None,
                      ) -> tuple[MicroProgram, dict[str, tuple[int, int]]]:
    """Schedule a stitched multi-operation MIG with packed outputs.

    The fusion compiler stitches several catalog operations into one MIG
    whose outputs may belong to several logical results (e.g. the roots
    of an expression DAG).  This entry packs each named *output group* —
    ``(group_name, [mig output names, bit 0 first])`` — into one
    contiguous region of the OUTPUT space, schedules the whole graph in
    a single pass (so cross-operation temp-row reuse and dead-temp
    freeing happen exactly as within one operation), and returns the
    µProgram together with each group's ``(bit offset, width)`` inside
    the OUTPUT block.
    """
    if not output_groups:
        raise SchedulingError("schedule_stitched needs >= 1 output group")
    output_rows: dict[str, URow] = {}
    group_slices: dict[str, tuple[int, int]] = {}
    offset = 0
    for group_name, bit_names in output_groups:
        if group_name in group_slices:
            raise SchedulingError(
                f"duplicate output group {group_name!r}")
        if not bit_names:
            raise SchedulingError(
                f"output group {group_name!r} has no bits")
        for i, bit_name in enumerate(bit_names):
            if bit_name in output_rows:
                raise SchedulingError(
                    f"MIG output {bit_name!r} assigned to two groups")
            output_rows[bit_name] = URow(Space.OUTPUT, offset + i)
        group_slices[group_name] = (offset, len(bit_names))
        offset += len(bit_names)
    program = schedule(
        mig, op_name=op_name, backend=backend, element_width=element_width,
        input_specs=input_specs,
        output_spec=OperandSpec(Space.OUTPUT, offset),
        input_rows=input_rows, output_rows=output_rows, options=options,
        source_hash=source_hash)
    return program, group_slices
