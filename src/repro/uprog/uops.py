"""µOps — the instruction set of SIMDRAM µPrograms.

A µProgram (paper §3, step 2) is a sequence of two composite DRAM
commands, ``AAP`` and ``AP``, over *symbolic* row references.  Row
references name a :class:`Space` plus an index inside it; the control
unit binds spaces to concrete subarray rows when a ``bbop`` instruction
supplies its operand addresses (step 3).  This mirrors the paper, where
one stored µProgram serves any operand location.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dram.rows import B_ADDRESS_MAP
from repro.errors import SchedulingError


class Space(enum.Enum):
    """Symbolic row spaces a µOp may reference."""

    INPUT0 = "in0"    # first source operand, bit i at index i
    INPUT1 = "in1"    # second source operand
    INPUT2 = "in2"    # third source operand (e.g. if_else select)
    OUTPUT = "out"    # destination operand
    TEMP = "tmp"      # compiler-managed scratch rows (D-group)
    CTRL = "ctl"      # C-group constants: index 0 = zeros, 1 = ones
    BGROUP = "bg"     # B-group reserved addresses 0..15

    @property
    def is_input(self) -> bool:
        return self in (Space.INPUT0, Space.INPUT1, Space.INPUT2)


INPUT_SPACES = (Space.INPUT0, Space.INPUT1, Space.INPUT2)


@dataclass(frozen=True, order=True)
class URow:
    """A symbolic row reference: a space plus an index within it."""

    space: Space
    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise SchedulingError(f"negative row index {self.index}")
        if self.space is Space.CTRL and self.index not in (0, 1):
            raise SchedulingError(f"CTRL rows are 0/1, got {self.index}")
        if self.space is Space.BGROUP and self.index not in B_ADDRESS_MAP:
            raise SchedulingError(f"B-group addresses are 0..15, "
                                  f"got {self.index}")

    @property
    def n_wordlines(self) -> int:
        """Wordlines this reference activates (B-group may raise 1-3)."""
        if self.space is Space.BGROUP:
            return len(B_ADDRESS_MAP[self.index])
        return 1

    def __str__(self) -> str:
        return f"{self.space.value}[{self.index}]"


@dataclass(frozen=True)
class UAap:
    """ACTIVATE-ACTIVATE-PRECHARGE: copy ``src`` (or its TRA) into ``dst``."""

    src: URow
    dst: URow

    def __str__(self) -> str:
        return f"AAP {self.src} -> {self.dst}"


@dataclass(frozen=True)
class UAp:
    """ACTIVATE-PRECHARGE on a B-group triple: a TRA (in-place majority)."""

    addr: URow

    def __post_init__(self) -> None:
        if self.addr.space is not Space.BGROUP or self.addr.n_wordlines != 3:
            raise SchedulingError(
                f"AP µOps must target a B-group triple, got {self.addr}")

    def __str__(self) -> str:
        return f"AP  {self.addr}"


MicroOp = UAap | UAp
