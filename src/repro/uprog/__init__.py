"""µProgram layer (Step 2): µOps, programs, and the MIG-to-DRAM scheduler."""

from repro.uprog.program import MicroProgram, OperandSpec
from repro.uprog.scheduler import ScheduleOptions, Scheduler, schedule
from repro.uprog.uops import INPUT_SPACES, MicroOp, Space, UAap, UAp, URow

__all__ = [
    "MicroProgram",
    "OperandSpec",
    "ScheduleOptions",
    "Scheduler",
    "schedule",
    "INPUT_SPACES",
    "MicroOp",
    "Space",
    "UAap",
    "UAp",
    "URow",
]
