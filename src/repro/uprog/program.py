"""µProgram container: the artifact produced by Step 2.

A :class:`MicroProgram` bundles the symbolic AAP/AP sequence for one
operation at one element width, together with its operand interface and
cost metadata.  It is what the control unit stores in its µProgram
scratchpad and replays on every matching ``bbop`` instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.commands import CommandStats
from repro.dram.energy import DramEnergy
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTiming
from repro.errors import SchedulingError
from repro.uprog.uops import MicroOp, Space, UAap, UAp, URow


@dataclass(frozen=True)
class OperandSpec:
    """One operand of a µProgram: which space it binds and how many rows."""

    space: Space
    width: int  # number of bit rows (bit i of the operand at index i)

    def __post_init__(self) -> None:
        if self.width < 1:
            raise SchedulingError(f"operand width must be >= 1, "
                                  f"got {self.width}")


@dataclass
class MicroProgram:
    """A compiled SIMDRAM operation: symbolic command stream + metadata."""

    op_name: str
    backend: str                      # "simdram" or "ambit"
    element_width: int                # input element width in bits
    inputs: list[OperandSpec]
    output: OperandSpec
    uops: list[MicroOp] = field(default_factory=list)
    n_temp_rows: int = 0
    #: Stable identity of the source the program was compiled from (the
    #: expression-DAG hash for fused kernels, ``None`` for catalog ops).
    #: Folded into :meth:`fingerprint`, so execution-plan cache keys
    #: distinguish fused kernels even across name collisions.
    source_hash: str | None = None

    def __post_init__(self) -> None:
        seen = set()
        for spec in self.inputs:
            if not spec.space.is_input:
                raise SchedulingError(
                    f"input operand bound to non-input space {spec.space}")
            if spec.space in seen:
                raise SchedulingError(
                    f"duplicate input space {spec.space}")
            seen.add(spec.space)
        if self.output.space is not Space.OUTPUT:
            raise SchedulingError("output operand must use Space.OUTPUT")
        self._fingerprint: int | None = None

    def fingerprint(self) -> int:
        """Stable content hash of the command stream and interface.

        The control unit keys its execution-plan cache on this, so a
        reinstalled µProgram with different contents never hits a stale
        plan, while identical contents share one.  Cached: µPrograms are
        immutable by convention once compiled.
        """
        if self._fingerprint is None:
            uop_sig = tuple(
                (op.addr.space.value, op.addr.index) if isinstance(op, UAp)
                else (op.src.space.value, op.src.index,
                      op.dst.space.value, op.dst.index)
                for op in self.uops)
            self._fingerprint = hash((
                self.op_name, self.backend, self.element_width,
                self.source_hash,
                tuple((s.space.value, s.width) for s in self.inputs),
                (self.output.space.value, self.output.width),
                self.n_temp_rows, uop_sig))
        return self._fingerprint

    # ------------------------------------------------------------------
    # cost metadata
    # ------------------------------------------------------------------
    @property
    def n_aap(self) -> int:
        return sum(1 for op in self.uops if isinstance(op, UAap))

    @property
    def n_ap(self) -> int:
        return sum(1 for op in self.uops if isinstance(op, UAp))

    @property
    def n_commands(self) -> int:
        return len(self.uops)

    @property
    def n_operand_copies(self) -> int:
        """AAPs that read or write a *named operand row block* (an
        INPUT*/OUTPUT space).

        This is the vector-row traffic an operation exchanges with its
        operands — exactly the commands fusion removes for
        intermediates, since a fused pipeline's inner values live only
        in B-group planes and compiler temporaries.  Step-by-step
        execution of a pipeline pays this per stage (each stage's
        output block is the next stage's input block)."""
        return sum(1 for op in self.uops if isinstance(op, UAap)
                   and (op.src.space.is_input or op.src.space is Space.OUTPUT
                        or op.dst.space.is_input
                        or op.dst.space is Space.OUTPUT))

    def stats(self) -> CommandStats:
        """Command statistics of one execution in one subarray."""
        stats = CommandStats()
        for op in self.uops:
            if isinstance(op, UAp):
                stats.record_ap(op.addr.n_wordlines)
            else:
                stats.record_aap(op.src.n_wordlines, op.dst.n_wordlines)
        return stats

    def latency_ns(self, timing: DramTiming) -> float:
        """Serial latency of one execution (per subarray; lanes are free)."""
        return self.stats().latency_ns(timing)

    def energy_nj(self, timing: DramTiming, geometry: DramGeometry,
                  energy: DramEnergy) -> float:
        """DRAM energy of one execution across the active rank rows."""
        return self.stats().energy_nj(timing, geometry, energy)

    def rows_touched(self) -> int:
        """Total D-group rows the program needs (operands + temps)."""
        operand_rows = sum(s.width for s in self.inputs) + self.output.width
        return operand_rows + self.n_temp_rows

    # ------------------------------------------------------------------
    # serialization (µPrograms are installed into the control unit at
    # boot in the paper; round-tripping them keeps that workflow honest)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        def row(urow: URow) -> list:
            return [urow.space.value, urow.index]

        ops = []
        for op in self.uops:
            if isinstance(op, UAp):
                ops.append(["AP", row(op.addr)])
            else:
                ops.append(["AAP", row(op.src), row(op.dst)])
        return {
            "op_name": self.op_name,
            "backend": self.backend,
            "element_width": self.element_width,
            "inputs": [[s.space.value, s.width] for s in self.inputs],
            "output": [self.output.space.value, self.output.width],
            "n_temp_rows": self.n_temp_rows,
            "source_hash": self.source_hash,
            "uops": ops,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MicroProgram":
        space_by_value = {s.value: s for s in Space}

        def row(item: list) -> URow:
            return URow(space_by_value[item[0]], item[1])

        uops: list[MicroOp] = []
        for item in data["uops"]:
            if item[0] == "AP":
                uops.append(UAp(row(item[1])))
            elif item[0] == "AAP":
                uops.append(UAap(row(item[1]), row(item[2])))
            else:
                raise SchedulingError(f"unknown µOp kind {item[0]!r}")
        return cls(
            op_name=data["op_name"],
            backend=data["backend"],
            element_width=data["element_width"],
            inputs=[OperandSpec(space_by_value[s], w)
                    for s, w in data["inputs"]],
            output=OperandSpec(space_by_value[data["output"][0]],
                               data["output"][1]),
            uops=uops,
            n_temp_rows=data["n_temp_rows"],
            source_hash=data.get("source_hash"),
        )

    def listing(self, max_ops: int | None = None) -> str:
        """Human-readable assembly-style listing."""
        header = (f"; µProgram {self.op_name} ({self.backend}, "
                  f"{self.element_width}-bit): "
                  f"{self.n_aap} AAP + {self.n_ap} AP, "
                  f"{self.n_temp_rows} temp rows")
        shown = self.uops if max_ops is None else self.uops[:max_ops]
        lines = [header] + [f"  {op}" for op in shown]
        if max_ops is not None and len(self.uops) > max_ops:
            lines.append(f"  ... ({len(self.uops) - max_ops} more)")
        return "\n".join(lines)
