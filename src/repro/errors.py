"""Exception hierarchy for the SIMDRAM reproduction.

All exceptions raised by :mod:`repro` derive from :class:`SimdramError` so
callers can catch framework failures with a single ``except`` clause while
still being able to distinguish the layer that failed.
"""

from __future__ import annotations


class SimdramError(Exception):
    """Base class for every error raised by this library."""


class GeometryError(SimdramError):
    """A DRAM geometry parameter is inconsistent or out of range."""


class AddressError(SimdramError):
    """A row/column address does not exist or is illegal for the command."""


class CommandError(SimdramError):
    """A DRAM command sequence violates the substrate's protocol."""


class SynthesisError(SimdramError):
    """Step 1 failed: a circuit could not be converted to MAJ/NOT form."""


class SchedulingError(SimdramError):
    """Step 2 failed: a MIG could not be mapped to legal AAP/AP sequences."""


class AllocationError(SimdramError):
    """The vertical-layout memory allocator ran out of rows or misaligned."""


class IsaError(SimdramError):
    """A bbop instruction is malformed or cannot be decoded."""


class ExecutionError(SimdramError):
    """Step 3 failed: the control unit could not execute a µProgram."""


class EngineError(ExecutionError):
    """An execution engine is unknown, unavailable, or cannot run the
    requested program (e.g. a vectorizable-only engine on a traced
    module).  Subclasses :class:`ExecutionError` so legacy callers that
    catch engine-selection failures keep working."""


class ReplicaError(ExecutionError):
    """The multi-process replica tier failed a request: a replica
    process died with no survivor to fail over to, a payload could not
    cross the process boundary, or the replica set is shutting down.
    Subclasses :class:`ExecutionError` because from the caller's view a
    replicated dispatch is just an execution that could not complete."""


class OperationError(SimdramError):
    """An operation is unknown, or its operands are invalid."""


class AdmissionError(SimdramError):
    """The serving layer rejected a request (queue full or closed)."""


class DeadlineExceeded(SimdramError):
    """A request's SLO deadline lapsed before it could be served, so
    the SLO-aware scheduler shed it without executing — or a failover
    found the request's remaining budget already spent.  Distinct from
    :class:`AdmissionError` (never admitted) and from execution
    failures (ran and broke): a shed request consumed no lanes."""


class ConfigError(SimdramError):
    """A performance/energy/reliability model was configured inconsistently."""
