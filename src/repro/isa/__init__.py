"""The bbop ISA extension: instruction formats, opcodes, encode/decode."""

from repro.isa.instructions import (
    OPCODES,
    BbopInstruction,
    BbopKind,
    bbop,
    bbop_trsp_init,
    register_opcode,
)

__all__ = [
    "OPCODES",
    "BbopInstruction",
    "BbopKind",
    "bbop",
    "bbop_trsp_init",
    "register_opcode",
]
