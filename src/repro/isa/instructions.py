"""The bbop ISA extension (paper §4).

SIMDRAM extends the host ISA with *bulk bitwise operation* instructions
that the CPU issues to the memory controller:

* ``bbop_trsp_init`` announces that an object will be used in vertical
  layout, so the transposition unit starts tracking it;
* one ``bbop_<op>`` instruction per SIMDRAM operation, carrying the
  destination and source base addresses, the vector size, and the
  element width.

Instructions encode to a fixed 128-bit little-endian word so tests can
round-trip them exactly as a real controller queue would see them.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.errors import IsaError

_STRUCT = struct.Struct("<HBBIIH2x")  # opcode, kind, width, dst, src0, ...
_FORMAT_BYTES = 16


class BbopKind(enum.IntEnum):
    """Instruction families of the bbop extension."""

    TRSP_INIT = 0
    UNARY = 1
    BINARY = 2
    TERNARY = 3


#: Registered operation opcodes (stable across the library).
OPCODES: dict[str, int] = {
    "trsp_init": 0,
    "abs": 1,
    "add": 2,
    "sub": 3,
    "mul": 4,
    "div": 5,
    "eq": 6,
    "gt": 7,
    "ge": 8,
    "max": 9,
    "min": 10,
    "if_else": 11,
    "relu": 12,
    "bitcount": 13,
    "and_red": 14,
    "or_red": 15,
    "xor_red": 16,
}

_OPCODE_NAMES = {code: name for name, code in OPCODES.items()}


def register_opcode(name: str) -> int:
    """Assign an opcode to a user-defined operation (paper: new ops need
    no hardware change, only a new µProgram and an opcode)."""
    if name in OPCODES:
        return OPCODES[name]
    code = max(OPCODES.values()) + 1
    OPCODES[name] = code
    _OPCODE_NAMES[code] = name
    return code


@dataclass(frozen=True)
class BbopInstruction:
    """One decoded bbop instruction."""

    op: str                 # operation name, e.g. "add" or "trsp_init"
    kind: BbopKind
    element_width: int      # bits per element
    dst: int                # destination base address (row units)
    src0: int               # first source base address
    src1: int = 0           # second source base (BINARY/TERNARY)
    src2: int = 0           # third source base (TERNARY)
    n_elements: int = 0     # vector length in elements

    def __post_init__(self) -> None:
        if self.op not in OPCODES:
            raise IsaError(f"unknown bbop operation {self.op!r}")
        if not 1 <= self.element_width <= 64:
            raise IsaError(
                f"element width must be in [1, 64], got {self.element_width}")
        for field_name in ("dst", "src0", "src1", "src2", "n_elements"):
            if getattr(self, field_name) < 0:
                raise IsaError(f"{field_name} must be non-negative")

    # ------------------------------------------------------------------
    # binary encoding
    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        """Encode to the fixed 128-bit instruction word."""
        word0 = _STRUCT.pack(OPCODES[self.op], int(self.kind),
                             self.element_width, self.dst, self.src0,
                             self.n_elements & 0xFFFF)
        word1 = struct.pack("<IIII", self.src1, self.src2,
                            self.n_elements >> 16, 0)
        return (word0 + word1)[:2 * _FORMAT_BYTES]

    @classmethod
    def decode(cls, raw: bytes) -> "BbopInstruction":
        """Decode a 128-bit instruction word."""
        if len(raw) != 2 * _FORMAT_BYTES:
            raise IsaError(
                f"bbop instructions are {2 * _FORMAT_BYTES} bytes, "
                f"got {len(raw)}")
        opcode, kind, width, dst, src0, n_lo = _STRUCT.unpack(
            raw[:_FORMAT_BYTES])
        src1, src2, n_hi, _ = struct.unpack("<IIII", raw[_FORMAT_BYTES:])
        name = _OPCODE_NAMES.get(opcode)
        if name is None:
            raise IsaError(f"unknown opcode {opcode}")
        return cls(op=name, kind=BbopKind(kind), element_width=width,
                   dst=dst, src0=src0, src1=src1, src2=src2,
                   n_elements=(n_hi << 16) | n_lo)


def bbop_trsp_init(base: int, n_elements: int,
                   element_width: int) -> BbopInstruction:
    """Announce a vertically laid-out object to the transposition unit."""
    return BbopInstruction(op="trsp_init", kind=BbopKind.TRSP_INIT,
                           element_width=element_width, dst=base,
                           src0=base, n_elements=n_elements)


def bbop(op: str, dst: int, srcs: list[int], n_elements: int,
         element_width: int) -> BbopInstruction:
    """Build a compute bbop instruction with 1-3 sources."""
    if not 1 <= len(srcs) <= 3:
        raise IsaError(f"bbop takes 1-3 sources, got {len(srcs)}")
    kind = (BbopKind.UNARY, BbopKind.BINARY, BbopKind.TERNARY)[len(srcs) - 1]
    padded = list(srcs) + [0] * (3 - len(srcs))
    return BbopInstruction(op=op, kind=kind, element_width=element_width,
                           dst=dst, src0=padded[0], src1=padded[1],
                           src2=padded[2], n_elements=n_elements)
