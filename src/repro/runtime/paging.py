"""Paging layer: spill cold shards to host, fault them back on use.

Each cluster module gets one :class:`PagingManager`.  It registers
itself as the module allocator's ``reclaim`` hook, so any row
allocation that would fail — an operand, an output, or a µProgram's
scratch reservation — first evicts least-recently-used *unpinned*
resident shards (through the transposition unit, like any other host
traffic) and retries.  Working sets larger than a subarray's D-group
therefore run to completion; only a request that cannot be satisfied
even with every evictable shard spilled raises
:class:`~repro.errors.AllocationError`.

Spills and fills are counted in a per-module
:class:`~repro.dram.commands.CommandStats` (``n_spills``/``spill_bits``
etc.); the raw channel traffic additionally lands in the subarrays'
host-I/O counters, so the perf model's I/O time and energy include
paging automatically.
"""

from __future__ import annotations

import contextlib
from collections import OrderedDict
from typing import TYPE_CHECKING, Iterable

from repro.dram.commands import CommandStats
from repro.errors import ExecutionError

if TYPE_CHECKING:
    from repro.core.framework import Simdram
    from repro.runtime.tensor import TensorShard


class PagingManager:
    """LRU eviction of device-resident tensor shards for one module.

    Not thread-safe by itself: the cluster confines each manager (and
    its module) to that module's single scheduler worker thread.
    """

    def __init__(self, sim: "Simdram") -> None:
        self.sim = sim
        #: Spill/fill accounting for this module.
        self.stats = CommandStats()
        #: Resident shards in LRU order (oldest first).
        self._resident: "OrderedDict[TensorShard, None]" = OrderedDict()
        sim._allocator.set_reclaim(self._reclaim)

    # ------------------------------------------------------------------
    # residency bookkeeping
    # ------------------------------------------------------------------
    def register(self, shard: "TensorShard") -> None:
        """Start managing a shard that just became resident."""
        self._resident[shard] = None
        self._resident.move_to_end(shard)

    def touch(self, shard: "TensorShard") -> None:
        """Mark a shard most-recently-used."""
        if shard in self._resident:
            self._resident.move_to_end(shard)

    def unregister(self, shard: "TensorShard") -> None:
        """Stop managing a shard (freed or evicted)."""
        self._resident.pop(shard, None)

    @property
    def resident_shards(self) -> list["TensorShard"]:
        return list(self._resident)

    # ------------------------------------------------------------------
    # pinning
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def pinning(self, shards: Iterable["TensorShard"]):
        """Pin ``shards`` for the duration of one operation, so the
        allocations it performs (outputs, µProgram scratch) can never
        evict its own operands."""
        shards = list(shards)
        for shard in shards:
            shard.pins += 1
        try:
            yield
        finally:
            for shard in shards:
                shard.pins -= 1

    # ------------------------------------------------------------------
    # eviction (the allocator's reclaim hook)
    # ------------------------------------------------------------------
    def _reclaim(self, width: int) -> bool:
        """Evict the least-recently-used unpinned shard; one at a time,
        the allocator retries after every successful eviction."""
        for shard in self._resident:
            if shard.pins == 0:
                self.evict(shard)
                return True
        return False

    def evict(self, shard: "TensorShard") -> None:
        """Spill one resident shard to host memory."""
        self.unregister(shard)
        shard.host = self.sim.spill(shard.array, stats=self.stats)
        shard.array = None

    def ensure_resident(self, shard: "TensorShard") -> None:
        """Fault a shard in if it was evicted; touch it either way."""
        if shard.resident:
            self.touch(shard)
            return
        if shard.host is None:
            raise ExecutionError(
                f"{shard!r} has neither resident rows nor a spilled "
                "host copy (tensor freed?)")
        values = shard.host
        shard.array = self.sim.array(values, shard.width,
                                     signed=shard.signed)
        shard.host = None
        self.stats.record_fill(shard.n_elements * shard.width)
        self.register(shard)
