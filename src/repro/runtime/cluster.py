"""``SimdramCluster``: N independent SIMDRAM modules behind one API.

The cluster is the runtime's facade.  It mirrors the single-module
:class:`~repro.Simdram` programming interface — ``run`` over the
catalog, ``run_expr`` over fused expression DAGs, ``map`` streaming
over host vectors — but operands are :class:`DeviceTensor` objects
sharded across the member modules, operations dispatch per shard to
the module already holding it, and every operation goes through the
:class:`~repro.runtime.scheduler.JobScheduler`, so ``submit`` gives the
same semantics asynchronously.

Compilation happens once per (operation, width, backend) at the cluster
level; every module *adopts* the same µProgram into its control unit,
and each module's plan/kernel caches then work exactly as in the
single-module system.

Each module also keeps a modeled busy-time clock (command latency plus
channel I/O for transposition and paging, in simulated nanoseconds).
Modules are independent channels, so the cluster's modeled makespan is
the *maximum* per-module busy time — the quantity the scaling
benchmarks gate on.
"""

from __future__ import annotations

from concurrent.futures import Future
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.compiler import compile_operation
from repro.core.expr import Expr, dag_hash
from repro.core.framework import Simdram, SimdramConfig
from repro.core.fuse import FusedKernel, MultiKernel, multi_digest
from repro.core.fuse import compile_expr as _compile_expr
from repro.core.fuse import compile_multi as _compile_multi
from repro.core.operations import get_operation
from repro.dram.commands import CommandStats
from repro.errors import OperationError
from repro.exec.engines import ExecutionEngine, get_engine
from repro.obs.pmu import get_pmu
from repro.obs.tracing import span as obs_span
from repro.runtime.paging import PagingManager
from repro.runtime.scheduler import JobScheduler, Subtask
from repro.runtime.tensor import DeviceTensor, TensorShard, plan_shards
from repro.uprog.program import MicroProgram


@dataclass
class JobHandle:
    """An asynchronously running cluster operation.

    ``tensor`` is the operation's output handle (usable immediately as
    an operand of further submissions — the scheduler orders them);
    ``future`` resolves when the job has executed on every shard.
    """

    future: Future
    tensor: DeviceTensor
    #: The execution engine the job was resolved to at submission —
    #: one instance carried through every shard closure, instead of a
    #: string re-interpreted per layer.
    engine: "ExecutionEngine | None" = None

    def result(self, timeout: float | None = None) -> DeviceTensor:
        """Wait for completion (re-raising failures); returns the
        output tensor."""
        self.future.result(timeout)
        return self.tensor

    def done(self) -> bool:
        return self.future.done()


class SimdramCluster:
    """N SIMDRAM modules, device-resident tensors, paging, async jobs."""

    def __init__(self, n_modules: int = 4,
                 config: SimdramConfig | None = None,
                 seed: int | None = 1) -> None:
        if n_modules < 1:
            raise OperationError(
                f"a cluster needs >= 1 module, got {n_modules}")
        self.config = config or SimdramConfig()
        self.modules = [
            Simdram(self.config,
                    seed=None if seed is None else seed + i)
            for i in range(n_modules)
        ]
        self.pagers = [PagingManager(sim) for sim in self.modules]
        self.scheduler = JobScheduler(n_modules)
        self._programs: dict[tuple[str, int, str], MicroProgram] = {}
        self._kernels: dict[tuple[str, int, str], FusedKernel] = {}
        self._multis: dict[tuple[str, int, str], MultiKernel] = {}
        #: Modeled busy time per module, simulated nanoseconds.  Only
        #: the module's own worker thread writes its entry.
        self.busy_ns = [0.0] * n_modules

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def n_modules(self) -> int:
        return len(self.modules)

    @property
    def lanes_per_module(self) -> int:
        return self.modules[0].module.lanes

    @property
    def lanes(self) -> int:
        """Total SIMD lanes across the cluster."""
        return self.lanes_per_module * self.n_modules

    @property
    def kernel_cache_size(self) -> int:
        """Compiled kernels cached at the cluster level (catalog
        µPrograms, fused single-root and multi-root kernels)."""
        return (len(self._programs) + len(self._kernels)
                + len(self._multis))

    # ------------------------------------------------------------------
    # cluster-level compilation (shared across modules)
    # ------------------------------------------------------------------
    def compile(self, op_name: str, width: int,
                backend: str | None = None) -> MicroProgram:
        """Compile once; member modules adopt the program on dispatch."""
        backend = backend or self.config.backend
        key = (op_name, width, backend)
        program = self._programs.get(key)
        if program is None:
            options = (self.config.schedule if backend == "simdram"
                       else None)
            program = compile_operation(
                get_operation(op_name), width, backend=backend,
                options=options, optimize_mig=self.config.optimize_mig)
            self._programs[key] = program
        return program

    def compile_expr(self, root: Expr, width: int,
                     backend: str | None = None
                     ) -> tuple[tuple[str, int, str], FusedKernel]:
        """Compile a fused kernel once; returns its cache key too (the
        key modules adopt it under)."""
        backend = backend or self.config.backend
        key = (dag_hash(root), width, backend)
        kernel = self._kernels.get(key)
        if kernel is None:
            options = (self.config.schedule if backend == "simdram"
                       else None)
            kernel = _compile_expr(
                root, width, backend=backend, options=options,
                optimize_mig=self.config.optimize_mig)
            self._kernels[key] = kernel
        return key, kernel

    def compile_multi(self, roots: dict[str, Expr], width: int,
                      backend: str | None = None
                      ) -> tuple[tuple[str, int, str], MultiKernel]:
        """Compile a multi-root kernel once; returns its cache key too
        (the key modules adopt it under)."""
        backend = backend or self.config.backend
        key = (multi_digest(roots), width, backend)
        kernel = self._multis.get(key)
        if kernel is None:
            options = (self.config.schedule if backend == "simdram"
                       else None)
            kernel = _compile_multi(
                roots, width, backend=backend, options=options,
                optimize_mig=self.config.optimize_mig)
            self._multis[key] = kernel
        return key, kernel

    def warm(self, op_or_root: "str | Expr", width: int,
             engine: "str | ExecutionEngine" = "auto") -> None:
        """Precompile one kernel on every member module.

        Compiles the operation (or fused ``Expr`` DAG) once at the
        cluster level, has every module adopt it, and warms each
        module's execution plan plus the engine's compiled executor
        against the row layout a batched dispatch binds — the serving
        layer's manifest warmup, and the replica tier's spawn-time
        cache fill, both go through here.
        """
        engine = get_engine(engine)
        if isinstance(op_or_root, Expr):
            key, kernel = self.compile_expr(op_or_root, width)
            for sim in self.modules:
                sim.adopt_kernel(key, kernel)
                sim.warm_executor(kernel.program, kernel.input_widths,
                                  kernel.out_width, engine)
        else:
            name = str(op_or_root)
            program = self.compile(name, width)
            spec = get_operation(name)
            for sim in self.modules:
                sim.adopt_program(program)
                sim.warm_executor(program, spec.in_widths(width),
                                  spec.out_width(width), engine)

    # ------------------------------------------------------------------
    # modeled time accounting (worker-thread confined per module)
    # ------------------------------------------------------------------
    def _account(self, module_index: int,
                 before: CommandStats) -> None:
        sim = self.modules[module_index]
        after = sim.module.total_stats()
        timing = self.config.timing
        banks = sim.config.geometry.banks
        # Banks execute in lockstep: latency is the per-bank stream.
        compute_ns = (((after.n_ap - before.n_ap) // banks)
                      * timing.ap_ns
                      + ((after.n_aap - before.n_aap) // banks)
                      * timing.aap_ns)
        bits = ((after.host_bits_read - before.host_bits_read)
                + (after.host_bits_written - before.host_bits_written))
        io_ns = ((bits + 7) // 8) * timing.io_ns_per_byte()
        self.busy_ns[module_index] += compute_ns + io_ns
        pmu_id = getattr(sim.module, "pmu_id", None)
        if pmu_id is not None and (compute_ns or io_ns):
            get_pmu().record_boundary(pmu_id, compute_ns + io_ns,
                                      io_bits=bits)

    def makespan_ns(self) -> float:
        """Modeled wall time so far: modules are independent channels,
        so the cluster finishes when its busiest module does."""
        return max(self.busy_ns)

    def paging_stats(self) -> CommandStats:
        """Merged spill/fill accounting across all modules."""
        total = CommandStats()
        for pager in self.pagers:
            total = total.merged_with(pager.stats)
        return total

    def total_stats(self) -> CommandStats:
        """Merged DRAM command statistics across all modules."""
        total = CommandStats()
        for sim in self.modules:
            total = total.merged_with(sim.module.total_stats())
        return total.merged_with(self.paging_stats())

    # ------------------------------------------------------------------
    # tensors
    # ------------------------------------------------------------------
    def tensor(self, values, width: int,
               signed: bool = False) -> DeviceTensor:
        """Shard a host vector across the cluster and load it into DRAM
        (asynchronously; the returned handle is usable immediately)."""
        values = np.asarray(values)
        if values.ndim != 1:
            raise OperationError(
                "SimdramCluster.tensor expects a 1-D vector")
        chunks = plan_shards(len(values), self.n_modules,
                             self.lanes_per_module)
        shards = [TensorShard(m, offset, count, width, signed)
                  for m, offset, count in chunks]
        tensor = DeviceTensor(self, shards, len(values), width, signed)

        def load(shard: TensorShard,
                 chunk: np.ndarray) -> None:
            sim = self.modules[shard.module_index]
            pager = self.pagers[shard.module_index]
            before = sim.module.total_stats()
            shard.array = sim.array(chunk, shard.width,
                                    signed=shard.signed)
            pager.register(shard)
            self._account(shard.module_index, before)

        # Snapshot each chunk now: the load runs asynchronously, and a
        # caller mutating its array after tensor() returns must not
        # race with the deferred transpose-in.
        subtasks: list[Subtask] = [
            (shard.module_index,
             (lambda s=shard,
              c=values[shard.offset:shard.offset
                       + shard.n_elements].copy():
              load(s, c)))
            for shard in shards
        ]
        self.scheduler.submit(subtasks, writes=[tensor],
                              label=f"load[{len(values)}]")
        return tensor

    def read_tensor(self, tensor: DeviceTensor) -> np.ndarray:
        """Gather a tensor to the host, after all pending producers."""
        tensor.require_live()

        def gather(shard: TensorShard) -> np.ndarray:
            pager = self.pagers[shard.module_index]
            if shard.resident:
                pager.touch(shard)
                sim = self.modules[shard.module_index]
                before = sim.module.total_stats()
                chunk = sim.read(shard.array)
                self._account(shard.module_index, before)
                return chunk
            if shard.host is None:
                # A producing job failed before materializing this
                # shard; surface it through the dependency chain.
                raise OperationError(f"{shard!r} was never materialized")
            return shard.host.copy()

        subtasks: list[Subtask] = [
            (shard.module_index, (lambda s=shard: gather(s)))
            for shard in tensor.shards
        ]
        future = self.scheduler.submit(
            subtasks, reads=[tensor], finalizer=np.concatenate,
            label=f"gather[{tensor.n_elements}]")
        return future.result()

    def free_tensor(self, tensor: DeviceTensor) -> None:
        """Release a tensor's shards, ordered after every outstanding
        job that touches it (idempotent)."""
        if tensor.status != "live":
            return
        tensor.status = "freed"

        def release(shard: TensorShard) -> None:
            pager = self.pagers[shard.module_index]
            pager.unregister(shard)
            if shard.array is not None:
                shard.array.free()
                shard.array = None
            shard.host = None

        subtasks: list[Subtask] = [
            (shard.module_index, (lambda s=shard: release(s)))
            for shard in tensor.shards
        ]
        self.scheduler.submit(subtasks, writes=[tensor],
                              label=f"free[{tensor.n_elements}]")

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def submit(self, op: "str | Expr", *tensors: DeviceTensor,
               feeds: dict[str, DeviceTensor] | None = None,
               width: int | None = None, backend: str | None = None,
               engine: "str | ExecutionEngine" = "auto") -> JobHandle:
        """Queue an operation; returns immediately with a handle.

        ``op`` is a catalog operation name (positional ``tensors``
        operands) or an :class:`Expr` DAG (``feeds`` binding).  The
        output tensor is usable as an operand of further submissions
        right away — the scheduler serializes dependent jobs and runs
        independent ones concurrently across modules.

        ``engine`` (a registry name or an
        :class:`~repro.exec.engines.ExecutionEngine`) is resolved once
        here; the resolved instance rides on the :class:`JobHandle` and
        every shard closure.
        """
        engine = get_engine(engine)
        if isinstance(op, Expr):
            if tensors:
                raise OperationError(
                    "expression jobs bind operands via feeds=")
            return self._submit_expr(op, feeds or {}, width=width,
                                     backend=backend, engine=engine)
        if feeds is not None:
            raise OperationError(
                "catalog operations take positional operands")
        return self._submit_run(op, tensors, backend=backend,
                                engine=engine)

    def run(self, op_name: str, *operands: DeviceTensor,
            backend: str | None = None,
            engine: "str | ExecutionEngine" = "auto") -> DeviceTensor:
        """Synchronous :meth:`submit` over the catalog: waits for the
        sharded execution and returns the output tensor."""
        return self._submit_run(op_name, operands, backend=backend,
                                engine=get_engine(engine)).result()

    def run_expr(self, root: Expr, feeds: dict[str, DeviceTensor],
                 *, width: int | None = None, backend: str | None = None,
                 engine: "str | ExecutionEngine" = "auto") -> DeviceTensor:
        """Synchronous fused-expression execution across the cluster."""
        return self._submit_expr(root, feeds, width=width,
                                 backend=backend,
                                 engine=get_engine(engine)).result()

    def run_multi(self, roots: dict[str, Expr],
                  feeds: dict[str, DeviceTensor], *,
                  width: int | None = None, backend: str | None = None,
                  engine: "str | ExecutionEngine" = "auto"
                  ) -> dict[str, np.ndarray]:
        """Sharded :meth:`Simdram.run_multi`: one multi-output fused
        dispatch per shard, each root's slices gathered back to host.

        All roots share at most three DRAM-resident input tensors; the
        kernel is compiled once at the cluster level and adopted by
        every participating module.  Returns root name -> host vector.
        """
        engine = get_engine(engine)
        if not roots:
            raise OperationError("run_multi needs at least one root")
        if not feeds:
            raise OperationError("run_multi needs at least one tensor")
        for tensor in feeds.values():
            tensor.require_live()
        if width is None:
            width = max(t.width for t in feeds.values())
        key, kernel = self.compile_multi(roots, width, backend)
        names = list(kernel.input_names)
        missing = set(names) - set(feeds)
        extra = set(feeds) - set(names)
        if missing or extra:
            raise OperationError(
                f"fused expression inputs are {sorted(names)}"
                + (f"; missing {sorted(missing)}" if missing else "")
                + (f"; unexpected {sorted(extra)}" if extra else ""))
        operands = tuple(feeds[name] for name in names)
        for name, tensor, expected in zip(names, operands,
                                          kernel.input_widths):
            if tensor.width != expected:
                raise OperationError(
                    f"fused input {name!r} must be {expected}-bit, "
                    f"got {tensor.width}-bit")
        self._aligned_shards(operands, "fused multi expression")

        def run_shard(index: int) -> dict[str, np.ndarray]:
            in_shards = [t.shards[index] for t in operands]
            module_index = in_shards[0].module_index
            sim = self.modules[module_index]
            pager = self.pagers[module_index]
            before = sim.module.total_stats()
            with obs_span("cluster.dispatch", module=module_index,
                          label=f"multi@{width}"), pager.pinning(in_shards):
                for shard in in_shards:
                    pager.ensure_resident(shard)
                sim.adopt_multi(key, kernel)
                chunk = sim.run_multi_kernel(
                    kernel,
                    dict(zip(names, (s.array for s in in_shards))),
                    engine=engine)
            self._account(module_index, before)
            return chunk

        def merge(parts: list[dict[str, np.ndarray]]
                  ) -> dict[str, np.ndarray]:
            return {name: np.concatenate([part[name] for part in parts])
                    for name in kernel.slices}

        subtasks: list[Subtask] = [
            (shard.module_index, (lambda i=index: run_shard(i)))
            for index, shard in enumerate(operands[0].shards)
        ]
        reads = list({id(t): t for t in operands}.values())
        future = self.scheduler.submit(subtasks, reads=reads,
                                       finalizer=merge,
                                       label=f"multi@{width}")
        return future.result()

    def _aligned_shards(self, operands: Sequence[DeviceTensor],
                        what: str) -> None:
        lengths = [t.n_elements for t in operands]
        if any(n != lengths[0] for n in lengths):
            raise OperationError(
                f"{what}: operand lengths differ: {lengths}")
        layout = operands[0].sharding()
        if any(t.sharding() != layout for t in operands):
            raise OperationError(
                f"{what}: operands are sharded differently; create "
                "them on the same cluster with the same length")

    def _submit_run(self, op_name: str,
                    operands: tuple[DeviceTensor, ...],
                    backend: str | None,
                    engine: ExecutionEngine) -> JobHandle:
        spec = get_operation(op_name)
        if len(operands) != spec.arity:
            raise OperationError(
                f"{op_name} takes {spec.arity} operands, "
                f"got {len(operands)}")
        for tensor in operands:
            tensor.require_live()
        width = operands[-1].width
        for i, (tensor, expected) in enumerate(
                zip(operands, spec.in_widths(width))):
            if tensor.width != expected:
                raise OperationError(
                    f"{op_name} operand {i} must be {expected}-bit, "
                    f"got {tensor.width}-bit")
        self._aligned_shards(operands, op_name)
        program = self.compile(op_name, width, backend)
        out = self._empty_like(operands[0], spec.out_width(width),
                               spec.signed)

        def run_shard(index: int) -> None:
            sim = self.modules[out.shards[index].module_index]

            def execute(arrays):
                sim.adopt_program(program)
                return sim.run(op_name, *arrays, backend=backend,
                               engine=engine)

            self._run_on_module(
                sim, [t.shards[index] for t in operands],
                out.shards[index], execute)

        return self._submit_shard_jobs(out, operands, run_shard,
                                       label=f"{op_name}@{width}",
                                       engine=engine)

    def _submit_expr(self, root: Expr, feeds: dict[str, DeviceTensor],
                     width: int | None, backend: str | None,
                     engine: ExecutionEngine) -> JobHandle:
        if not feeds:
            raise OperationError(
                "run_expr needs at least one input tensor")
        for tensor in feeds.values():
            tensor.require_live()
        if width is None:
            width = max(t.width for t in feeds.values())
        key, kernel = self.compile_expr(root, width, backend)
        names = list(kernel.input_names)
        missing = set(names) - set(feeds)
        extra = set(feeds) - set(names)
        if missing or extra:
            raise OperationError(
                f"fused expression inputs are {sorted(names)}"
                + (f"; missing {sorted(missing)}" if missing else "")
                + (f"; unexpected {sorted(extra)}" if extra else ""))
        operands = tuple(feeds[name] for name in names)
        for name, tensor, expected in zip(names, operands,
                                          kernel.input_widths):
            if tensor.width != expected:
                raise OperationError(
                    f"fused input {name!r} must be {expected}-bit, "
                    f"got {tensor.width}-bit")
        self._aligned_shards(operands, "fused expression")
        out = self._empty_like(operands[0], kernel.out_width,
                               kernel.signed)

        def run_shard(index: int) -> None:
            sim = self.modules[out.shards[index].module_index]

            def execute(arrays):
                sim.adopt_kernel(key, kernel)
                return sim.run_expr(root, dict(zip(names, arrays)),
                                    width=width, backend=backend,
                                    engine=engine)

            self._run_on_module(
                sim, [t.shards[index] for t in operands],
                out.shards[index], execute)

        return self._submit_shard_jobs(out, operands, run_shard,
                                       label=f"expr@{width}",
                                       engine=engine)

    def _empty_like(self, template: DeviceTensor, width: int,
                    signed: bool) -> DeviceTensor:
        shards = [TensorShard(s.module_index, s.offset, s.n_elements,
                              width, signed)
                  for s in template.shards]
        return DeviceTensor(self, shards, template.n_elements, width,
                            signed)

    def _run_on_module(self, sim: Simdram,
                       in_shards: list[TensorShard],
                       out_shard: TensorShard, execute) -> None:
        """Shared per-shard body: fault operands in, pin everything the
        operation touches, execute, adopt the output into the pager."""
        module_index = out_shard.module_index
        pager = self.pagers[module_index]
        before = sim.module.total_stats()
        with obs_span("cluster.dispatch", module=module_index), \
                pager.pinning([*in_shards, out_shard]):
            for shard in in_shards:
                pager.ensure_resident(shard)
            result = execute([shard.array for shard in in_shards])
            result.signed = out_shard.signed
            out_shard.array = result
            pager.register(out_shard)
        self._account(module_index, before)

    def _submit_shard_jobs(self, out: DeviceTensor,
                           operands: Sequence[DeviceTensor],
                           run_shard, label: str,
                           engine: "ExecutionEngine | None" = None,
                           ) -> JobHandle:
        subtasks: list[Subtask] = [
            (shard.module_index, (lambda i=index: run_shard(i)))
            for index, shard in enumerate(out.shards)
        ]
        # Operands may repeat (e.g. run("add", a, a)); dedupe reads.
        reads = list({id(t): t for t in operands}.values())
        future = self.scheduler.submit(subtasks, reads=reads,
                                       writes=[out], label=label)
        return JobHandle(future, out, engine)

    # ------------------------------------------------------------------
    # streaming execution over host vectors of any length
    # ------------------------------------------------------------------
    def map(self, op_name: str, *host_operands, width: int = 8,
            backend: str | None = None,
            engine: "str | ExecutionEngine" = "auto") -> np.ndarray:
        """Sharded :meth:`Simdram.map`: host vectors are split into
        contiguous per-module chunks that stream through all modules
        concurrently; each module batches its chunk exactly like the
        single-module path, so plan caches hit from batch 2 on."""
        engine = get_engine(engine)
        spec = get_operation(op_name)
        if len(host_operands) != spec.arity:
            raise OperationError(
                f"{op_name} takes {spec.arity} operands, "
                f"got {len(host_operands)}")
        vectors = [np.asarray(v) for v in host_operands]
        program = self.compile(op_name, width, backend)
        return self._map_sharded(
            vectors,
            lambda sim, chunks: sim.map(op_name, *chunks, width=width,
                                        backend=backend, engine=engine),
            program, f"map:{op_name}@{width}")

    def map_expr(self, root: Expr, feeds: dict[str, np.ndarray], *,
                 width: int = 8, backend: str | None = None,
                 engine: "str | ExecutionEngine" = "auto") -> np.ndarray:
        """Sharded :meth:`Simdram.map_expr` (fused streaming)."""
        engine = get_engine(engine)
        key, kernel = self.compile_expr(root, width, backend)
        names = list(kernel.input_names)
        missing = set(names) - set(feeds)
        extra = set(feeds) - set(names)
        if missing or extra:
            raise OperationError(
                f"fused expression inputs are {sorted(names)}"
                + (f"; missing {sorted(missing)}" if missing else "")
                + (f"; unexpected {sorted(extra)}" if extra else ""))
        vectors = [np.asarray(feeds[name]) for name in names]

        def run_chunk(sim: Simdram, chunks: list[np.ndarray]):
            sim.adopt_kernel(key, kernel)
            return sim.map_expr(root, dict(zip(names, chunks)),
                                width=width, backend=backend,
                                engine=engine)

        return self._map_sharded(vectors, run_chunk, kernel.program,
                                 f"map_expr@{width}")

    def _map_sharded(self, vectors: list[np.ndarray], run_chunk,
                     program: MicroProgram, label: str) -> np.ndarray:
        n_total = len(vectors[0])
        if any(len(v) != n_total for v in vectors):
            raise OperationError(
                f"map: operand lengths differ: "
                f"{[len(v) for v in vectors]}")
        if n_total == 0:
            raise OperationError("map needs at least one element")
        # Contiguous split, one chunk per module, remainder spread over
        # the leading modules; empty chunks are skipped.
        base, rem = divmod(n_total, self.n_modules)
        bounds = [0]
        for i in range(self.n_modules):
            bounds.append(bounds[-1] + base + (1 if i < rem else 0))

        def run_module(module_index: int) -> np.ndarray:
            lo, hi = bounds[module_index], bounds[module_index + 1]
            sim = self.modules[module_index]
            sim.adopt_program(program)
            before = sim.module.total_stats()
            with obs_span("cluster.dispatch", module=module_index,
                          label=label, n_elements=hi - lo):
                chunk = run_chunk(sim, [v[lo:hi] for v in vectors])
            self._account(module_index, before)
            return chunk

        subtasks: list[Subtask] = [
            (m, (lambda i=m: run_module(i)))
            for m in range(self.n_modules)
            if bounds[m + 1] > bounds[m]
        ]
        future = self.scheduler.submit(subtasks,
                                       finalizer=np.concatenate,
                                       label=label)
        return future.result()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def synchronize(self) -> None:
        """Wait for every outstanding job (re-raising failures)."""
        self.scheduler.barrier()

    def close(self) -> None:
        """Drain the scheduler and stop the module workers."""
        self.scheduler.close()

    def __enter__(self) -> "SimdramCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
