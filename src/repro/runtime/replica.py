"""Multi-process replication: N ``SimdramCluster`` replicas.

Everything below the serving layer runs in one Python process, so
worker threads only overlap the numpy portions of a dispatch — the
Python fraction still serializes on the GIL.  This module is the
scale-out answer: a :class:`ReplicaSet` spawns N replicas, each a full
:class:`~repro.runtime.cluster.SimdramCluster` living in its **own
process**, and gives the parent a thread-safe transport to them:

* **work descriptors** travel over a duplex pipe as pickled
  :class:`WorkDescriptor` objects — a catalog op name or a whole
  :class:`~repro.core.expr.Expr` DAG, the pipeline width and the
  execution-engine registry name (engine *instances* never cross the
  boundary; each replica resolves the name against its own registry);
* **tensor payloads** travel through POSIX shared memory
  (:mod:`multiprocessing.shared_memory`): the parent copies the packed
  operand vectors into one segment per dispatch, the replica maps them
  as ndarrays with zero deserialization cost, and the result comes
  back the same way;
* **health** is a heartbeat loop: a monitor thread pings every replica
  and watches process liveness; a broken pipe, a dead process or (when
  ``max_silent_s`` is set) a prolonged silence marks the replica dead,
  fails nothing silently, and hands its in-flight jobs to a death
  handler — the serving router's failover hook — or, absent one, fails
  their futures with :class:`~repro.errors.ReplicaError`;
* **warmup**: each replica fills its kernel caches from a declared
  manifest at spawn (and on demand via :meth:`ReplicaSet.warm`), so a
  fresh replica's first dispatch replays a warm pipeline.

The parent keeps every in-flight job's descriptor *and* payload until
it resolves, so a job lost to a dying replica can be re-sent to a
survivor byte-for-byte — the property the failover drill gates on.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import shutil
import signal
import tempfile
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field, replace
from multiprocessing import resource_tracker, shared_memory
from typing import Callable, Sequence

import numpy as np

from repro.core.expr import Expr
from repro.errors import OperationError, ReplicaError
from repro.obs import clock
from repro.obs.flightrec import get_flight_recorder
from repro.obs.tracing import NOOP_SPAN, Span, current_span, use_span

#: (offset, shape, dtype string) of one vector inside a shared segment.
SlotMeta = tuple[int, tuple[int, ...], str]


@dataclass(frozen=True)
class WorkDescriptor:
    """One dispatch, in the form that crosses the process boundary.

    ``kind`` is ``"op"`` (catalog operation, positional slots) or
    ``"expr"`` (fused DAG; ``slot_names`` binds the payload vectors to
    leaf names).  ``engine`` is an execution-engine *registry name* —
    the replica resolves it locally.
    """

    kind: str
    op_name: str | None
    root: Expr | None
    slot_names: tuple[str, ...]
    width: int
    engine: str
    #: Trace context crossing the process boundary: when True, the
    #: replica records a local ``replica.execute`` span tree for this
    #: job and ships it back (serialized) inside the result payload.
    traced: bool = False
    #: Absolute monotonic SLO deadline of the pack's requests (or
    #: ``None``): failover consults it so a job whose budget lapsed
    #: while its replica died is shed instead of re-homed.
    deadline: float | None = None

    def label(self) -> str:
        return (self.op_name if self.kind == "op"
                else f"expr@{self.width}")


@dataclass
class PendingJob:
    """Parent-side record of one in-flight dispatch (kept until the
    job resolves so failover can re-send it byte-for-byte)."""

    job_id: int
    desc: WorkDescriptor
    vectors: list[np.ndarray]
    lanes: int
    future: Future
    shm: "shared_memory.SharedMemory | None" = None
    #: Replica ids this job has already died on (failover audit trail).
    attempts: list[int] = field(default_factory=list)
    #: The job's ``replica.transport`` span: opened at submission,
    #: closed when the result lands (or failed when the replica dies —
    #: the router's retry span re-parents it then).
    span: object = NOOP_SPAN


# ---------------------------------------------------------------------------
# shared-memory ndarray transport
#
# Ownership protocol: the parent owns every ``unlink`` — it unlinks
# payload segments once their job resolves and result segments after
# copying them out.  CPython 3.11 registers a segment with the calling
# process's resource tracker on *attach as well as create* (create-only
# tracking arrived in 3.13), and every replica runs its *own* tracker
# (:func:`_detach_resource_tracker` severs any inherited one), so every
# process must balance its own books: a segment closed *without* being
# unlinked in this process is explicitly unregistered via
# :func:`_untrack`, while ``unlink`` unregisters as a side effect.
# Crash safety falls out of the same rule: a replica SIGKILLed mid-job
# still has its unsent result segment registered, so its tracker reaps
# the file at process teardown, and the parent unlinks the payload.
# ---------------------------------------------------------------------------
def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Drop this process's tracker registration for a segment whose
    ``unlink`` another process owns (see the ownership protocol).
    ``_name`` is the registered key (``name`` strips the leading
    slash that POSIX registration keeps)."""
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # noqa: BLE001 - bookkeeping must never fail a job
        pass


def _drop_segment(name: str) -> None:
    """Unlink a segment whose job record is gone (failover race: the
    original replica answered after the job was re-queued)."""
    try:
        shm = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError, ValueError):
        return
    try:
        shm.unlink()
    except FileNotFoundError:
        _untrack(shm)
    shm.close()
def _share_vectors(vectors: Sequence[np.ndarray]
                   ) -> tuple[shared_memory.SharedMemory, list[SlotMeta]]:
    """Copy vectors into one fresh shared segment; returns (shm, metas)."""
    arrays = [np.ascontiguousarray(v) for v in vectors]
    total = max(1, sum(a.nbytes for a in arrays))
    shm = shared_memory.SharedMemory(create=True, size=total)
    metas: list[SlotMeta] = []
    offset = 0
    for a in arrays:
        view = np.ndarray(a.shape, dtype=a.dtype, buffer=shm.buf,
                          offset=offset)
        view[:] = a
        metas.append((offset, a.shape, a.dtype.str))
        offset += a.nbytes
    return shm, metas


def _read_shared(name: str, metas: Sequence[SlotMeta],
                 unlink: bool = False) -> list[np.ndarray]:
    """Copy vectors out of a named segment (attach, copy, detach;
    ``unlink=True`` additionally removes the segment — see the
    ownership protocol above)."""
    shm = shared_memory.SharedMemory(name=name)
    try:
        out = [np.ndarray(shape, dtype=np.dtype(dt), buffer=shm.buf,
                          offset=off).copy()
               for off, shape, dt in metas]
    finally:
        if unlink:
            try:
                shm.unlink()
            except FileNotFoundError:
                _untrack(shm)
        else:
            _untrack(shm)
        shm.close()
    return out


def _sendable(error: BaseException) -> BaseException:
    """An exception safe to pickle through the pipe (original when
    possible, a :class:`ReplicaError` carrying its repr otherwise)."""
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:  # noqa: BLE001 - any pickle/reconstruct failure
        return ReplicaError(f"{type(error).__name__}: {error}")


# ---------------------------------------------------------------------------
# the replica process
# ---------------------------------------------------------------------------
def _warm_manifest(cluster, manifest) -> int:
    """Fill a replica's kernel caches from ``(op_or_root, width[,
    engine])`` manifest entries; returns the kernel count."""
    count = 0
    for entry in manifest or ():
        op_or_root, width = entry[0], entry[1]
        engine = entry[2] if len(entry) > 2 else "auto"
        cluster.warm(op_or_root, width, engine)
        count += 1
    return count


def _replica_info(cluster) -> dict:
    paging = cluster.paging_stats()
    return {
        "pid": os.getpid(),
        "busy_ns": cluster.makespan_ns(),
        "kernels_cached": cluster.kernel_cache_size,
        "paging": {
            "n_spills": paging.n_spills,
            "n_fills": paging.n_fills,
            "spill_bits": paging.spill_bits,
            "fill_bits": paging.fill_bits,
        },
    }


def _detach_resource_tracker() -> None:
    """Give this replica a resource tracker of its own.  A forked child
    may inherit the parent's tracker connection; the tracker's cache is
    a plain set (no refcount), so the child's attach-side unregister
    calls would wipe the parent's create-side registrations and the
    parent's later ``unlink`` would double-remove.  Severing the
    inherited connection makes every process's bookkeeping independent:
    this replica's first shared-memory call spawns a fresh tracker."""
    tracker = resource_tracker._resource_tracker
    fd = getattr(tracker, "_fd", None)
    tracker._fd = None
    tracker._pid = None
    if fd is not None:
        try:
            os.close(fd)
        except OSError:
            pass


def _replica_main(replica_id: int, conn, n_modules: int, config,
                  manifest, seed: int | None,
                  spool_dir: "str | None" = None) -> None:
    """The child process: build a cluster, warm it, serve the pipe."""
    # The parent owns lifecycle; a ^C aimed at the parent's terminal
    # must not take the replicas down mid-failover.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass
    _detach_resource_tracker()
    # Black box: this process's flight recorder continuously spills to
    # the parent's spool directory.  SIGKILL cannot be trapped, so the
    # spill file — rewritten after every event — is what survives a
    # crash; on clean exit the ring ships home over the pipe instead.
    recorder = get_flight_recorder()
    recorder.source = f"replica-{replica_id}"
    if spool_dir is not None:
        recorder.configure_spill(
            os.path.join(spool_dir, f"replica-{replica_id}.json"))
    from repro.runtime.cluster import SimdramCluster
    try:
        cluster = SimdramCluster(n_modules, config=config, seed=seed)
        warmed = _warm_manifest(cluster, manifest)
        conn.send(("ready", replica_id,
                   {"lanes": cluster.lanes,
                    "backend": cluster.config.backend,
                    "n_modules": n_modules,
                    "kernels_warmed": warmed,
                    **_replica_info(cluster)}))
    except BaseException as error:  # noqa: BLE001 - report, don't hang spawn
        conn.send(("spawn-error", replica_id, _sendable(error)))
        return
    recorder.record("replica.ready", replica=replica_id,
                    lanes=cluster.lanes, n_modules=n_modules)
    with cluster:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return  # parent went away; nothing left to serve
            tag = message[0]
            if tag == "stop":
                recorder.record("replica.stop", replica=replica_id)
                try:
                    # Clean exit: the ring ships home over the pipe
                    # (older parents ignore the extra element).
                    conn.send(("stopped", replica_id,
                               recorder.snapshot()))
                except (BrokenPipeError, OSError):
                    pass
                recorder.remove_spill()
                return
            if tag == "ping":
                conn.send(("pong", message[1], _replica_info(cluster)))
            elif tag == "warm":
                token, entries = message[1], message[2]
                recorder.record("replica.warm", replica=replica_id,
                                n_kernels=len(entries))
                try:
                    n = _warm_manifest(cluster, entries)
                    conn.send(("warmed", token, n))
                except Exception as error:  # noqa: BLE001
                    conn.send(("warm-error", token, _sendable(error)))
            elif tag == "job":
                job_id, desc, shm_name, metas = message[1:]
                recorder.record("replica.job", replica=replica_id,
                                job_id=job_id, op=desc.label(),
                                width=desc.width)
                # Local recording root for traced jobs: the replica's
                # side of the request tree.  CLOCK_MONOTONIC is
                # system-wide on Linux, so its timestamps line up with
                # the parent's without translation; the finished tree
                # ships home serialized inside the reply's info dict.
                job_span = (Span("replica.execute",
                                 {"replica": replica_id,
                                  "proc": f"replica-{replica_id}",
                                  "op": desc.label()})
                            if getattr(desc, "traced", False)
                            else NOOP_SPAN)
                try:
                    vectors = _read_shared(shm_name, metas)
                    from repro.exec.engines import get_engine
                    engine = get_engine(desc.engine)
                    with use_span(job_span):
                        if desc.kind == "op":
                            out = cluster.map(desc.op_name, *vectors,
                                              width=desc.width,
                                              engine=engine)
                        else:
                            out = cluster.map_expr(
                                desc.root,
                                dict(zip(desc.slot_names, vectors)),
                                width=desc.width, engine=engine)
                    out_shm, out_metas = _share_vectors([out])
                    info = _replica_info(cluster)
                    if job_span.recording:
                        info["span"] = job_span.finish().to_dict()
                    conn.send(("result", job_id, out_shm.name,
                               out_metas[0], info))
                    # The parent unlinks after copying the result out;
                    # untracking only after the send keeps the local
                    # tracker as the safety net if this replica dies
                    # before the parent learns the segment's name.
                    _untrack(out_shm)
                    out_shm.close()
                    recorder.record("replica.job.done",
                                    replica=replica_id, job_id=job_id)
                except Exception as error:  # noqa: BLE001 - fail the one job
                    recorder.record("replica.job.error",
                                    replica=replica_id, job_id=job_id,
                                    error=repr(error))
                    info = _replica_info(cluster)
                    if job_span.recording:
                        info["span"] = job_span.finish(error).to_dict()
                    conn.send(("job-error", job_id, _sendable(error),
                               info))


# ---------------------------------------------------------------------------
# parent-side handles
# ---------------------------------------------------------------------------
class ReplicaHandle:
    """Parent-side view of one replica process."""

    def __init__(self, replica_id: int, process, conn) -> None:
        self.replica_id = replica_id
        self.process = process
        self.conn = conn
        self.alive = True
        self.info: dict = {}
        self.last_pong = time.monotonic()
        self.pings_sent = 0
        self.pongs_received = 0
        #: Heartbeat round-trip time: send time per outstanding ping
        #: token, the last completed RTT, and an exponential moving
        #: average (alpha 0.25) — the per-replica health gauge.
        self._ping_sent_at: dict[int, float] = {}
        self.rtt_last_s: float | None = None
        self.rtt_avg_s: float | None = None
        #: Dispatches this replica completed (success or per-job error).
        self.jobs_done = 0
        self._send_lock = threading.Lock()

    def note_ping(self, token: int) -> None:
        """Record one ping's send time (monitor thread)."""
        self._ping_sent_at[token] = clock.now()
        # Unanswered tokens from a hung replica must not accumulate.
        while len(self._ping_sent_at) > 64:
            self._ping_sent_at.pop(next(iter(self._ping_sent_at)))

    def note_pong(self, token: int) -> None:
        """Close the loop for one pong (receive thread)."""
        sent = self._ping_sent_at.pop(token, None)
        if sent is None:
            return
        rtt = clock.now() - sent
        self.rtt_last_s = rtt
        self.rtt_avg_s = (rtt if self.rtt_avg_s is None
                          else 0.75 * self.rtt_avg_s + 0.25 * rtt)

    def send(self, message) -> None:
        """Pickle one message down the pipe (thread-safe); raises
        :class:`ReplicaError` if the pipe is broken."""
        try:
            with self._send_lock:
                self.conn.send(message)
        except (BrokenPipeError, OSError, ValueError,
                TypeError, AttributeError) as error:
            # TypeError/AttributeError: another thread closed the
            # connection mid-send (a closed Connection nulls its
            # handle, so the raw write sees None).
            raise ReplicaError(
                f"replica {self.replica_id} is unreachable: {error}"
            ) from error

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return (f"ReplicaHandle(#{self.replica_id}, "
                f"pid={self.process.pid}, {state})")


class ReplicaSet:
    """N ``SimdramCluster`` replicas in separate processes (see the
    module docstring for the transport protocol)."""

    def __init__(self, n_replicas: int, n_modules: int = 1,
                 config=None, manifest: Sequence[tuple] | None = None,
                 seed: int | None = 1, heartbeat_s: float = 0.25,
                 max_silent_s: float | None = None,
                 spawn_timeout_s: float = 120.0,
                 start_method: str | None = None) -> None:
        if n_replicas < 1:
            raise OperationError(
                f"a replica set needs >= 1 replica, got {n_replicas}")
        from repro.core.framework import SimdramConfig
        self.config = config or SimdramConfig()
        self.n_modules = n_modules
        self.heartbeat_s = heartbeat_s
        self.max_silent_s = max_silent_s
        self.manifest = list(manifest or ())
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        self._jobs: dict[int, dict[int, PendingJob]] = {}
        self._controls: dict[tuple[int, int], Future] = {}
        self._job_ids = itertools.count()
        self._tokens = itertools.count()
        self._death_handler: "Callable[[int, list[PendingJob]], None] | None" = None
        self._closing = False
        self.deaths = 0

        #: Spool directory the children spill their flight-recorder
        #: rings into; a crashed replica's leftover spill file is its
        #: black box (adopted in :meth:`_mark_dead`).
        self.spool_dir = tempfile.mkdtemp(prefix="repro-flightrec-")

        ctx = multiprocessing.get_context(start_method)
        self.replicas: list[ReplicaHandle] = []
        for i in range(n_replicas):
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_replica_main, name=f"simdram-replica-{i}",
                args=(i, child_conn, n_modules, self.config, self.manifest,
                      None if seed is None else seed + 7919 * i,
                      self.spool_dir),
                daemon=True)
            process.start()
            child_conn.close()  # keep exactly one parent-side end open
            self.replicas.append(ReplicaHandle(i, process, parent_conn))
            self._jobs[i] = {}

        # All replicas boot concurrently; collect readiness afterwards.
        deadline = time.monotonic() + spawn_timeout_s
        for replica in self.replicas:
            self._await_ready(replica, deadline)

        self.lanes = self.replicas[0].info["lanes"]
        self.backend = self.replicas[0].info["backend"]

        self._receivers = [
            threading.Thread(target=self._receive_loop, args=(replica,),
                             name=f"replica-rx-{replica.replica_id}",
                             daemon=True)
            for replica in self.replicas
        ]
        for thread in self._receivers:
            thread.start()
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         name="replica-health",
                                         daemon=True)
        self._monitor.start()

    def _await_ready(self, replica: ReplicaHandle, deadline: float) -> None:
        while True:
            if not replica.conn.poll(max(0.0, deadline - time.monotonic())):
                self._abort_spawn(
                    f"replica {replica.replica_id} did not come up")
            message = replica.conn.recv()
            if message[0] == "ready":
                replica.info = message[2]
                replica.last_pong = time.monotonic()
                return
            if message[0] == "spawn-error":
                self._abort_spawn(
                    f"replica {replica.replica_id} failed to spawn: "
                    f"{message[2]}")

    def _abort_spawn(self, reason: str) -> None:
        for replica in self.replicas:
            if replica.process.is_alive():
                replica.process.terminate()
        raise ReplicaError(reason)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    def alive_ids(self) -> list[int]:
        return [r.replica_id for r in self.replicas if r.alive]

    def n_inflight(self, replica_id: int) -> int:
        with self._lock:
            return len(self._jobs[replica_id])

    def inflight_lanes(self, replica_id: int) -> int:
        with self._lock:
            return sum(job.lanes
                       for job in self._jobs[replica_id].values())

    def busy_ns(self) -> float:
        """Modeled makespan of the whole set: replicas are independent
        machines, so it is the busiest replica's modeled time (dead
        replicas keep their last reported clock)."""
        return max((r.info.get("busy_ns", 0.0) for r in self.replicas),
                   default=0.0)

    def stats(self) -> dict:
        """Per-replica health/telemetry snapshot."""
        out = {}
        for r in self.replicas:
            with self._lock:
                inflight = len(self._jobs[r.replica_id])
            out[r.replica_id] = {
                "alive": r.alive,
                "pid": r.process.pid,
                "in_flight": inflight,
                "jobs_done": r.jobs_done,
                "pings_sent": r.pings_sent,
                "pongs_received": r.pongs_received,
                "rtt_last_s": r.rtt_last_s,
                "rtt_avg_s": r.rtt_avg_s,
                "busy_ns": r.info.get("busy_ns", 0.0),
                "kernels_cached": r.info.get("kernels_cached", 0),
                "paging": r.info.get("paging", {}),
            }
        return out

    def set_death_handler(
            self, handler: "Callable[[int, list[PendingJob]], None]"
    ) -> None:
        """Install the failover hook: called with ``(replica_id,
        in_flight_jobs)`` when a replica dies.  The handler owns those
        jobs' futures (typically re-submitting them to survivors);
        without a handler they fail with :class:`ReplicaError`."""
        self._death_handler = handler

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, replica_id: int, desc: WorkDescriptor,
               vectors: Sequence[np.ndarray], lanes: int,
               future: Future | None = None) -> Future:
        """Ship one dispatch to a replica; resolves to ``(result
        vector, replica info)``.  Pass ``future`` to re-arm an existing
        job's future (the failover path)."""
        # The ambient span (the router's ``router.place`` or ``retry``)
        # becomes the transport span's parent; the ``traced`` flag asks
        # the replica to record its side of the tree and ship it back.
        parent = current_span()
        span = parent.child("replica.transport",
                            replica=replica_id, lanes=lanes)
        if span.recording:
            desc = replace(desc, traced=True)
        job = PendingJob(job_id=next(self._job_ids), desc=desc,
                         vectors=[np.asarray(v) for v in vectors],
                         lanes=lanes, future=future or Future(),
                         span=span)
        replica = self.replicas[replica_id]
        with self._lock:
            if self._closing:
                raise ReplicaError("replica set is closed")
            if not replica.alive:
                raise ReplicaError(
                    f"replica {replica_id} is dead")
            job.shm, metas = _share_vectors(job.vectors)
            self._jobs[replica_id][job.job_id] = job
        try:
            replica.send(("job", job.job_id, desc, job.shm.name, metas))
        except ReplicaError:
            # The send itself failed.  If the job is still registered,
            # this thread owns it: reclaim it and re-raise so the
            # caller picks another replica.  If it is gone,
            # ``_mark_dead`` raced us, collected the job and already
            # routed it (failover re-armed the same future) — re-raising
            # would make the caller submit the job a *second* time.
            with self._lock:
                owned = self._jobs[replica_id].pop(job.job_id, None)
            self._mark_dead(replica)
            if owned is None:
                return job.future
            self._release_payload(job)
            job.span.finish(ReplicaError(
                f"replica {replica_id} is unreachable"))
            raise
        return job.future

    def _release_payload(self, job: PendingJob) -> None:
        if job.shm is not None:
            try:
                job.shm.close()
                job.shm.unlink()
            except FileNotFoundError:
                pass
            job.shm = None

    # ------------------------------------------------------------------
    # receive / health
    # ------------------------------------------------------------------
    def _pop_job(self, replica_id: int, job_id: int) -> PendingJob | None:
        with self._lock:
            job = self._jobs[replica_id].pop(job_id, None)
            if not any(self._jobs.values()):
                self._drained.notify_all()
        return job

    def _receive_loop(self, replica: ReplicaHandle) -> None:
        try:
            self._receive_messages(replica)
        finally:
            # Whatever ends the loop — EOF, "stopped", or a bug in the
            # dispatch body — the replica must be buried, or its
            # in-flight jobs would hang forever.
            self._mark_dead(replica)

    def _receive_messages(self, replica: ReplicaHandle) -> None:
        while True:
            try:
                message = replica.conn.recv()
            except (EOFError, OSError, ValueError,
                    TypeError, AttributeError):
                # TypeError/AttributeError/ValueError: another thread
                # closed the connection mid-recv (mirrors ``send``).
                break
            tag = message[0]
            if tag == "result":
                job_id, shm_name, meta, info = message[1:]
                # The replica's serialized span tree rides inside the
                # info dict; pop it so ``replica.info`` stays telemetry.
                shipped = info.pop("span", None)
                info["replica_id"] = replica.replica_id
                replica.info = info
                replica.jobs_done += 1
                job = self._pop_job(replica.replica_id, job_id)
                if job is None:
                    # Resolved elsewhere (failover raced) — still
                    # remove the orphaned result segment.
                    _drop_segment(shm_name)
                    continue
                if shipped is not None and job.span.recording:
                    job.span.adopt(Span.from_dict(shipped))
                try:
                    (values,) = _read_shared(shm_name, [meta], unlink=True)
                except Exception as error:  # noqa: BLE001
                    self._release_payload(job)
                    # Transport spans close *before* the future resolves
                    # so completion callbacks see a finished tree.
                    job.span.finish(error)
                    job.future.set_exception(ReplicaError(
                        f"result transport failed: {error}"))
                else:
                    self._release_payload(job)
                    job.span.finish()
                    job.future.set_result((values, info))
            elif tag == "job-error":
                job_id, error, info = message[1:]
                shipped = info.pop("span", None)
                replica.info = info
                replica.jobs_done += 1
                job = self._pop_job(replica.replica_id, job_id)
                if job is not None:
                    self._release_payload(job)
                    if shipped is not None and job.span.recording:
                        job.span.adopt(Span.from_dict(shipped))
                    job.span.finish(error)
                    job.future.set_exception(error)
            elif tag == "pong":
                replica.note_pong(message[1])
                replica.info = message[2]
                replica.pongs_received += 1
                replica.last_pong = time.monotonic()
            elif tag == "warmed":
                future = self._controls.pop(
                    (replica.replica_id, message[1]), None)
                if future is not None:
                    future.set_result(message[2])
            elif tag == "warm-error":
                future = self._controls.pop(
                    (replica.replica_id, message[1]), None)
                if future is not None:
                    future.set_exception(message[2])
            elif tag == "stopped":
                # Newer children attach their flight-recorder ring;
                # fold it into this process's postmortem segments.
                if len(message) > 2:
                    get_flight_recorder().adopt_segment(
                        message[2],
                        source=f"replica-{replica.replica_id}")
                break

    def _monitor_loop(self) -> None:
        while True:
            time.sleep(self.heartbeat_s)
            with self._lock:
                if self._closing:
                    return
            now = time.monotonic()
            for replica in self.replicas:
                if not replica.alive:
                    continue
                if not replica.process.is_alive():
                    self._mark_dead(replica)
                    continue
                if (self.max_silent_s is not None
                        and replica.pings_sent > replica.pongs_received
                        and now - replica.last_pong > self.max_silent_s):
                    # Hung, not dead: the pipe is open but nothing
                    # answers.  Put it down so its work can fail over.
                    replica.process.kill()
                    self._mark_dead(replica)
                    continue
                try:
                    token = next(self._tokens)
                    replica.note_ping(token)
                    replica.send(("ping", token))
                    replica.pings_sent += 1
                except ReplicaError:
                    self._mark_dead(replica)

    def _mark_dead(self, replica: ReplicaHandle) -> None:
        """Bury one replica: exactly one caller wins, collects its
        in-flight jobs and routes them to the death handler."""
        with self._lock:
            if not replica.alive:
                return
            replica.alive = False
            self.deaths += 1
            jobs = list(self._jobs[replica.replica_id].values())
            self._jobs[replica.replica_id].clear()
            controls = [key for key in self._controls
                        if key[0] == replica.replica_id]
            control_futures = [self._controls.pop(key)
                               for key in controls]
            closing = self._closing
            if not any(self._jobs.values()):
                self._drained.notify_all()
        try:
            replica.conn.close()
        except OSError:
            pass
        # Recover the black box: a crashed child never shipped its
        # ring home, but its continuously-rewritten spill file is on
        # disk.  (A cleanly stopped child removed the file; adoption
        # is simply a no-op then.)
        recorder = get_flight_recorder()
        spill = os.path.join(self.spool_dir,
                             f"replica-{replica.replica_id}.json")
        adopted = recorder.adopt_spill_file(
            spill, source=f"replica-{replica.replica_id}")
        if not closing:
            recorder.record("replica.death",
                            replica=replica.replica_id,
                            pid=replica.process.pid,
                            in_flight=len(jobs),
                            black_box_recovered=adopted)
        error = ReplicaError(
            f"replica {replica.replica_id} died "
            f"(pid {replica.process.pid})")
        for job in jobs:
            self._release_payload(job)
            job.attempts.append(replica.replica_id)
            # Close the failed attempt's transport span now; the
            # router's failover path re-parents it under a ``retry``
            # span before re-submitting, so the dead attempt stays
            # visible in the re-homed request's tree.
            job.span.finish(error)
        for future in control_futures:
            future.set_exception(error)
        if jobs:
            if self._death_handler is not None and not closing:
                self._death_handler(replica.replica_id, jobs)
            else:
                for job in jobs:
                    job.future.set_exception(error)

    # ------------------------------------------------------------------
    # warmup / drills / lifecycle
    # ------------------------------------------------------------------
    def warm(self, manifest: Sequence[tuple],
             timeout: float | None = 120.0) -> dict:
        """Broadcast a kernel manifest to every live replica and wait
        for the acks; returns ``{replica_id: n_kernels}``."""
        entries = list(manifest)
        futures: dict[int, Future] = {}
        for replica in self.replicas:
            if not replica.alive:
                continue
            token = next(self._tokens)
            future: Future = Future()
            with self._lock:
                self._controls[(replica.replica_id, token)] = future
            try:
                replica.send(("warm", token, entries))
            except ReplicaError as error:
                with self._lock:
                    self._controls.pop((replica.replica_id, token), None)
                future.set_exception(error)
                self._mark_dead(replica)
            futures[replica.replica_id] = future
        results = {}
        for replica_id, future in futures.items():
            try:
                results[replica_id] = future.result(timeout)
            except ReplicaError:
                continue  # died mid-warm; failover covers its traffic
        return results

    def kill(self, replica_id: int) -> None:
        """Hard-kill one replica (SIGKILL) — the failover drill.  Death
        is observed through the normal health machinery, so in-flight
        work fails over exactly as it would for a real crash."""
        self.replicas[replica_id].process.kill()

    def drain(self, timeout: float | None = None) -> bool:
        """Wait until no job is in flight anywhere; False on timeout."""
        with self._lock:
            return self._drained.wait_for(
                lambda: not any(self._jobs.values()), timeout)

    def close(self) -> None:
        """Stop every replica process (idempotent).  In-flight jobs
        fail with :class:`ReplicaError` rather than strand callers."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
        for replica in self.replicas:
            if not replica.alive:
                continue
            try:
                replica.send(("stop",))
            except ReplicaError:
                pass
        for replica in self.replicas:
            replica.process.join(timeout=10.0)
            if replica.process.is_alive():
                replica.process.kill()
                replica.process.join(timeout=10.0)
            self._mark_dead(replica)
        for thread in self._receivers:
            if thread is not threading.current_thread():
                thread.join(timeout=10.0)
        # Every replica is buried (spills adopted where they existed);
        # the spool directory has served its purpose.
        shutil.rmtree(self.spool_dir, ignore_errors=True)

    def __enter__(self) -> "ReplicaSet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
