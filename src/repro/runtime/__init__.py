"""The sharded multi-module runtime (system layer above one ``Simdram``).

The paper evaluates SIMDRAM at 1/4/16 banks and frames the design as a
*system*: a programming interface, an allocator and a control unit that
keep many in-DRAM operations in flight.  This package is that system
layer for the reproduction:

* :class:`SimdramCluster` owns N independent :class:`~repro.Simdram`
  modules (think channels) and shards work across them;
* :class:`DeviceTensor` keeps host vectors of arbitrary length resident
  in DRAM between operations, sharded across the cluster's modules;
* :class:`~repro.runtime.paging.PagingManager` spills cold shards to
  host memory when a module's subarray rows run out and faults them
  back on next use, so working sets larger than DRAM capacity run
  instead of raising;
* :class:`~repro.runtime.scheduler.JobScheduler` tracks read/write
  dependencies per tensor and runs independent jobs on different
  modules concurrently while serializing conflicting ones;
* :class:`~repro.runtime.replica.ReplicaSet` escapes the GIL entirely:
  N whole clusters in separate processes with shared-memory tensor
  transport, heartbeat health checks and in-flight failover hooks.

Typical use::

    from repro.runtime import SimdramCluster

    cluster = SimdramCluster(n_modules=4)
    a = cluster.tensor(host_a, width=8)
    b = cluster.tensor(host_b, width=8)
    total = cluster.run("add", a, b)      # sharded across 4 modules
    print(total.to_numpy())
"""

from repro.runtime.cluster import JobHandle, SimdramCluster
from repro.runtime.paging import PagingManager
from repro.runtime.replica import PendingJob, ReplicaSet, WorkDescriptor
from repro.runtime.scheduler import JobScheduler
from repro.runtime.tensor import DeviceTensor, TensorShard, plan_shards

__all__ = [
    "SimdramCluster",
    "JobHandle",
    "ReplicaSet",
    "WorkDescriptor",
    "PendingJob",
    "DeviceTensor",
    "TensorShard",
    "plan_shards",
    "PagingManager",
    "JobScheduler",
]
