"""Async job scheduler: per-tensor dependency tracking, per-module workers.

A *job* is one cluster-level operation (load a tensor, run an op or a
fused expression, gather, free).  It fans out into per-shard *subtasks*,
each bound to the module holding that shard.  Every module has exactly
one worker thread, which serializes all mutation of that module's state
(cell arrays, allocator, paging manager, control unit) — so subtasks of
*different* modules run concurrently (numpy releases the GIL in its
inner loops, so on a multi-core host this is real parallelism), while
everything touching one module is totally ordered.

Ordering between jobs is derived from the tensors they touch:

* a job *reading* tensor T runs after T's last writer;
* a job *writing* tensor T runs after T's last writer **and** all of
  T's in-flight readers (no write may overtake a read).

Independent jobs — disjoint tensors — are never ordered against each
other and overlap freely across modules.  A failed job propagates its
exception to every dependent job (and ultimately to whoever waits on
their futures), never deadlocking the queue.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.errors import ExecutionError
from repro.obs.tracing import current_span, use_span

if TYPE_CHECKING:
    from repro.runtime.tensor import DeviceTensor

#: A subtask: (module index, thunk to run on that module's worker).
Subtask = tuple[int, Callable[[], Any]]


class _Job:
    """Internal dispatch state of one submitted job."""

    def __init__(self, scheduler: "JobScheduler", job_id: int, label: str,
                 subtasks: Sequence[Subtask],
                 finalizer: Callable[[list], Any] | None) -> None:
        self.scheduler = scheduler
        self.job_id = job_id
        self.label = label
        self.subtasks = list(subtasks)
        self.finalizer = finalizer
        self.future: Future = Future()
        # The ambient trace span at submission time.  ContextVars do
        # not cross ThreadPoolExecutor tasks, so each subtask
        # re-activates this span on its worker thread — keeping
        # cluster.dispatch/engine.execute spans attached to the
        # request tree that queued the job.
        self.ctx_span = current_span()
        self._lock = threading.Lock()
        self._pending_deps = 0
        self._remaining = len(self.subtasks)
        self._results: list[Any] = [None] * len(self.subtasks)
        self._failed = False

    # -- dependency phase ----------------------------------------------
    def wait_for(self, deps: set[Future]) -> None:
        """Arm the job: dispatch once every dependency resolves."""
        self._pending_deps = len(deps)
        if not deps:
            self._dispatch()
            return
        for dep in deps:
            dep.add_done_callback(self._dep_done)

    def _dep_done(self, dep: Future) -> None:
        error = dep.exception()
        if error is not None:
            self._fail(ExecutionError(
                f"job {self.label!r} aborted: a dependency failed "
                f"({error})"))
            return
        with self._lock:
            self._pending_deps -= 1
            ready = self._pending_deps == 0 and not self._failed
        if ready:
            self._dispatch()

    # -- execution phase -----------------------------------------------
    def _dispatch(self) -> None:
        if not self.subtasks:
            self._finish()
            return
        for index, (module_index, thunk) in enumerate(self.subtasks):
            self.scheduler._executor(module_index).submit(
                self._run_subtask, index, thunk)

    def _run_subtask(self, index: int, thunk: Callable[[], Any]) -> None:
        with self._lock:
            if self._failed:
                return
        try:
            with use_span(self.ctx_span):
                result = thunk()
        except BaseException as error:  # propagated via the future
            self._fail(error)
            return
        with self._lock:
            self._results[index] = result
            self._remaining -= 1
            done = self._remaining == 0 and not self._failed
        if done:
            self._finish()

    def _finish(self) -> None:
        try:
            output = (self.finalizer(self._results)
                      if self.finalizer else self._results)
        except BaseException as error:
            self._fail(error)
            return
        self.future.set_result(output)
        self.scheduler._job_done(self.future)

    def _fail(self, error: BaseException) -> None:
        with self._lock:
            if self._failed:
                return
            self._failed = True
        self.future.set_exception(error)
        self.scheduler._job_done(self.future)


class JobScheduler:
    """Owns the per-module workers and the tensor dependency graph."""

    def __init__(self, n_modules: int) -> None:
        self._executors = [
            ThreadPoolExecutor(max_workers=1,
                               thread_name_prefix=f"simdram-mod{i}")
            for i in range(n_modules)
        ]
        self._lock = threading.Lock()
        self._outstanding: set[Future] = set()
        self._ids = itertools.count()
        self._closed = False

    def _executor(self, module_index: int) -> ThreadPoolExecutor:
        return self._executors[module_index]

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, subtasks: Sequence[Subtask],
               reads: Sequence["DeviceTensor"] = (),
               writes: Sequence["DeviceTensor"] = (),
               finalizer: Callable[[list], Any] | None = None,
               label: str = "") -> Future:
        """Queue one job; returns its future (result = finalizer output,
        or the list of per-subtask results)."""
        job = _Job(self, next(self._ids), label, subtasks, finalizer)
        with self._lock:
            if self._closed:
                raise ExecutionError("scheduler is closed")
            deps: set[Future] = set()
            for tensor in reads:
                if tensor.last_writer is not None:
                    deps.add(tensor.last_writer)
            for tensor in writes:
                if tensor.last_writer is not None:
                    deps.add(tensor.last_writer)
                deps.update(tensor.reader_futures)
            deps.discard(job.future)
            for tensor in reads:
                # Prune settled readers so long-lived tensors that are
                # read many times between writes don't accumulate them.
                tensor.reader_futures = [
                    f for f in tensor.reader_futures if not f.done()]
                tensor.reader_futures.append(job.future)
            for tensor in writes:
                tensor.last_writer = job.future
                tensor.reader_futures = []
            self._outstanding.add(job.future)
        # Arm outside the lock: already-done dependencies run their
        # callbacks inline, which may dispatch (and even finish) the job.
        job.wait_for(deps)
        return job.future

    def _job_done(self, future: Future) -> None:
        with self._lock:
            self._outstanding.discard(future)

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def barrier(self, raise_on_error: bool = True) -> None:
        """Wait until every job submitted so far has finished."""
        while True:
            with self._lock:
                pending = list(self._outstanding)
            if not pending:
                return
            for future in pending:
                if raise_on_error:
                    future.result()
                else:
                    try:
                        future.result()
                    except BaseException:
                        pass

    @property
    def n_outstanding(self) -> int:
        with self._lock:
            return len(self._outstanding)

    def close(self) -> None:
        """Drain outstanding jobs and stop the workers (idempotent).

        Safe to call repeatedly and from several threads at once: the
        first caller flips ``_closed`` (under the same lock ``submit``
        takes, so no new job can slip in), drains what was already
        queued, and shuts the worker executors down; every later call
        returns immediately.  Submission after close raises
        :class:`~repro.errors.ExecutionError`.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.barrier(raise_on_error=False)
        for executor in self._executors:
            executor.shutdown(wait=True)

    def __enter__(self) -> "JobScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
