"""Device-resident tensors sharded across a SIMDRAM cluster.

A :class:`DeviceTensor` is the runtime's handle to a host vector that
lives in DRAM between operations: it is cut into contiguous
:class:`TensorShard` chunks of at most one module's SIMD lanes each,
assigned round-robin to the cluster's modules.  Shards of equally-sized
tensors therefore line up module-by-module, which is what lets a
cluster operation dispatch each shard to the module that already holds
its operands — no host round trips between operations.

A shard is *resident* (``array`` set, rows allocated in its module) or
*spilled* (``host`` holds the values; the paging layer faults it back
in on next use).  Exactly one of the two is set for a live shard.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ExecutionError, OperationError

if TYPE_CHECKING:
    from concurrent.futures import Future

    from repro.core.framework import SimdramArray
    from repro.runtime.cluster import SimdramCluster


def plan_shards(n_total: int, n_modules: int,
                lanes: int) -> list[tuple[int, int, int]]:
    """Cut ``n_total`` elements into ``(module_index, offset, count)``
    chunks of at most ``lanes`` elements, round-robin over modules."""
    if n_total < 1:
        raise OperationError("a DeviceTensor needs at least one element")
    chunks = []
    offset = 0
    j = 0
    while offset < n_total:
        count = min(lanes, n_total - offset)
        chunks.append((j % n_modules, offset, count))
        offset += count
        j += 1
    return chunks


class TensorShard:
    """One module-sized chunk of a :class:`DeviceTensor`."""

    def __init__(self, module_index: int, offset: int, n_elements: int,
                 width: int, signed: bool) -> None:
        self.module_index = module_index
        self.offset = offset
        self.n_elements = n_elements
        self.width = width
        self.signed = signed
        #: Resident handle (rows allocated in the module), or ``None``.
        self.array: "SimdramArray | None" = None
        #: Spilled values on the host, or ``None`` while resident.
        self.host: np.ndarray | None = None
        #: Pin count; the paging layer never evicts a pinned shard.
        self.pins = 0

    @property
    def resident(self) -> bool:
        return self.array is not None and self.array.status == "live"

    @property
    def rows(self) -> int:
        """D-group rows this shard occupies while resident."""
        return self.width

    def __repr__(self) -> str:
        state = ("resident" if self.resident
                 else "spilled" if self.host is not None else "empty")
        return (f"TensorShard(module={self.module_index}, "
                f"[{self.offset}, {self.offset + self.n_elements}), "
                f"{state})")


class DeviceTensor:
    """A host vector resident in a cluster's DRAM, sharded over modules.

    Handles are returned immediately by cluster operations; the values
    materialize asynchronously as the scheduler runs the producing job.
    :meth:`to_numpy` and :meth:`free` are themselves scheduled jobs, so
    they observe every previously submitted operation on this tensor.
    """

    def __init__(self, cluster: "SimdramCluster",
                 shards: list[TensorShard], n_elements: int, width: int,
                 signed: bool) -> None:
        self._cluster = cluster
        self.shards = shards
        self.n_elements = n_elements
        self.width = width
        self.signed = signed
        self.status = "live"  # "live" | "freed"
        # Scheduler bookkeeping (guarded by the scheduler's lock): the
        # job that last wrote this tensor and the jobs currently
        # reading it.  A new reader depends on the writer; a new writer
        # depends on both.
        self.last_writer: "Future | None" = None
        self.reader_futures: list["Future"] = []

    def require_live(self) -> None:
        if self.status != "live":
            raise ExecutionError(
                f"DeviceTensor of {self.n_elements} elements is "
                f"{self.status}")

    def sharding(self) -> list[tuple[int, int]]:
        """The ``(module_index, n_elements)`` layout, for alignment
        checks between operands of one operation."""
        return [(s.module_index, s.n_elements) for s in self.shards]

    def to_numpy(self) -> np.ndarray:
        """Gather the tensor back to the host (waits for producers)."""
        return self._cluster.read_tensor(self)

    def free(self) -> None:
        """Release every shard's rows (idempotent, ordered after all
        outstanding jobs touching this tensor)."""
        if self.status == "live":
            self._cluster.free_tensor(self)

    @property
    def shape(self) -> tuple[int]:
        """Numpy-style shape (tensors are 1-D vectors)."""
        return (self.n_elements,)

    @property
    def dtype(self) -> str:
        """Logical element type, numpy-flavored (``u8``/``i16``/…)."""
        return f"{'i' if self.signed else 'u'}{self.width}"

    def __len__(self) -> int:
        return self.n_elements

    def __repr__(self) -> str:
        resident = sum(1 for s in self.shards if s.resident)
        return (f"DeviceTensor(shape={self.shape}, {self.dtype}, "
                f"{len(self.shards)} shards, {resident} resident, "
                f"{self.status})")
