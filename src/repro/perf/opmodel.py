"""Per-operation cost profiles for the host baselines.

For each catalog operation this module derives (a) the DRAM bytes a
streaming CPU/GPU implementation touches per element and (b) the ALU
operations it spends per element.  Bytes come from the operation's
declared operand widths; ALU counts are the conventional instruction
costs of the best vectorized implementation (e.g. division is microcoded
and far more expensive than addition).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.operations import OperationSpec, get_operation

#: Vector ALU operations per element on a host platform (32-bit lanes).
#: Values reflect typical vectorized instruction counts.
HOST_OPS_PER_ELEMENT: dict[str, float] = {
    "abs": 2.0,        # mask + subtract (or vpabsd)
    "add": 1.0,
    "sub": 1.0,
    "mul": 1.0,        # pipelined vector multiply
    "div": 16.0,       # vectorized integer division is microcoded
    "eq": 1.0,
    "gt": 1.0,
    "ge": 1.0,
    "max": 1.0,
    "min": 1.0,
    "if_else": 2.0,    # compare mask + blend
    "relu": 1.0,
    "bitcount": 1.0,   # popcnt
    "and_red": 2.0,    # compare against all-ones mask
    "or_red": 2.0,
    "xor_red": 2.0,    # popcnt + parity
}


@dataclass(frozen=True)
class HostOpProfile:
    """Bytes and ALU ops per element for a host implementation."""

    op_name: str
    bytes_per_element: float
    ops_per_element: float


def host_profile(op_name: str, width: int) -> HostOpProfile:
    """Derive the host streaming profile of a catalog operation."""
    spec = get_operation(op_name)
    return _profile(spec, width)


def _profile(spec: OperationSpec, width: int) -> HostOpProfile:
    # Host layouts round operands up to whole bytes.
    in_bytes = sum(max(1, (w + 7) // 8) for w in spec.in_widths(width))
    out_bytes = max(1, (spec.out_width(width) + 7) // 8)
    ops = HOST_OPS_PER_ELEMENT.get(spec.name, 1.0)
    return HostOpProfile(
        op_name=spec.name,
        bytes_per_element=float(in_bytes + out_bytes),
        ops_per_element=ops,
    )
