"""Throughput and energy models for all four evaluated platforms.

This is the evaluation harness of the reproduction: given a compiled
µProgram it computes SIMDRAM's (or Ambit's) throughput and energy from
the command counts, the DDR timing/energy models, and the lane
parallelism; host platforms come from the roofline models in
:mod:`repro.perf.platforms`.  Every benchmark table/figure is generated
from these functions (see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compiler import compile_operation
from repro.core.operations import get_operation
from repro.dram.energy import DramEnergy
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTiming
from repro.errors import ConfigError
from repro.perf.opmodel import host_profile
from repro.perf.platforms import HostPlatform, cpu_skylake, gpu_volta
from repro.uprog.program import MicroProgram


@dataclass(frozen=True)
class PlatformMeasure:
    """One platform's modeled performance on one operation."""

    platform: str
    op_name: str
    element_width: int
    throughput_gops: float     # elements per nanosecond
    energy_nj_per_element: float

    @property
    def efficiency_elems_per_uj(self) -> float:
        """Energy efficiency: elements computed per microjoule."""
        return 1e3 / self.energy_nj_per_element


@dataclass(frozen=True)
class PimSystemModel:
    """An in-DRAM computing system (SIMDRAM or the Ambit baseline)."""

    geometry: DramGeometry
    timing: DramTiming
    energy: DramEnergy

    @classmethod
    def paper(cls) -> "PimSystemModel":
        """The paper's configuration: DDR4-2400 module, 8 KB rows."""
        return cls(DramGeometry.paper(), DramTiming.ddr4_2400(),
                   DramEnergy.ddr4())

    def lanes(self, n_banks: int) -> int:
        return self.geometry.lanes(n_banks)

    def measure_paged(self, program: MicroProgram, n_banks: int = 1,
                      spill_bits_per_element: float = 0.0,
                      fill_bits_per_element: float = 0.0
                      ) -> PlatformMeasure:
        """Throughput/energy of a µProgram whose working set pages.

        The runtime's eviction layer moves spilled shards through the
        transposition unit at channel bandwidth, so a workload whose
        working set exceeds DRAM capacity pays ``spill + fill`` channel
        traffic per processed element on top of the in-DRAM command
        stream.  ``*_bits_per_element`` are the *average* paging bits
        each element causes (measure them with
        :meth:`repro.runtime.SimdramCluster.paging_stats`); at 0 this
        reduces exactly to :meth:`measure`.
        """
        if spill_bits_per_element < 0 or fill_bits_per_element < 0:
            raise ConfigError("paging traffic must be >= 0 bits/element")
        base = self.measure(program, n_banks)
        elements = self.lanes(n_banks)
        bits_per_element = (spill_bits_per_element
                            + fill_bits_per_element)
        # Latency: every participating bank's paging traffic crosses
        # the one shared channel, so the batch pays for all elements.
        paging_bits = bits_per_element * elements
        io_ns = ((paging_bits + 7) // 8) * self.timing.io_ns_per_byte()
        latency_ns = program.latency_ns(self.timing) + io_ns
        # Energy: per-element energy stays bank-count invariant (the
        # measure() contract) — each element pays for its own bits.
        return PlatformMeasure(
            platform=f"{base.platform}:paged",
            op_name=base.op_name,
            element_width=base.element_width,
            throughput_gops=elements / latency_ns,
            energy_nj_per_element=(base.energy_nj_per_element
                                   + self.energy.io_nj(
                                       bits_per_element)),
        )

    def measure(self, program: MicroProgram,
                n_banks: int = 1) -> PlatformMeasure:
        """Throughput/energy of one µProgram at ``n_banks`` parallelism.

        A µProgram execution processes one element per column in every
        participating bank; latency is the serial command latency (banks
        run in lockstep), and per-element energy is bank-count invariant.
        """
        if n_banks < 1:
            raise ConfigError(f"n_banks must be >= 1, got {n_banks}")
        latency_ns = program.latency_ns(self.timing)
        if latency_ns == 0:
            raise ConfigError(
                f"µProgram {program.op_name} has no commands to time")
        elements = self.lanes(n_banks)
        energy_nj = program.energy_nj(self.timing, self.geometry,
                                      self.energy)
        label = "SIMDRAM" if program.backend == "simdram" else "Ambit"
        return PlatformMeasure(
            platform=f"{label}:{n_banks}",
            op_name=program.op_name,
            element_width=program.element_width,
            throughput_gops=elements / latency_ns,
            energy_nj_per_element=energy_nj / self.geometry.cols,
        )


def measure_host(platform: HostPlatform, op_name: str,
                 width: int) -> PlatformMeasure:
    """Throughput/energy of a host (CPU/GPU) on one operation."""
    profile = host_profile(op_name, width)
    return PlatformMeasure(
        platform=platform.name,
        op_name=op_name,
        element_width=width,
        throughput_gops=platform.throughput_gops(
            profile.bytes_per_element, profile.ops_per_element),
        energy_nj_per_element=platform.energy_nj_per_element(
            profile.bytes_per_element, profile.ops_per_element),
    )


def measure_all_platforms(op_name: str, width: int,
                          bank_counts: tuple[int, ...] = (1, 4, 16),
                          system: PimSystemModel | None = None,
                          ) -> list[PlatformMeasure]:
    """The paper's comparison set for one operation: CPU, GPU, Ambit,
    and SIMDRAM:1/4/16."""
    system = system or PimSystemModel.paper()
    spec = get_operation(op_name)
    results = [
        measure_host(cpu_skylake(), op_name, width),
        measure_host(gpu_volta(), op_name, width),
    ]
    ambit_program = compile_operation(spec, width, backend="ambit")
    results.append(system.measure(ambit_program, n_banks=1))
    simdram_program = compile_operation(spec, width, backend="simdram")
    for n_banks in bank_counts:
        results.append(system.measure(simdram_program, n_banks=n_banks))
    return results
