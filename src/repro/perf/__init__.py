"""Performance evaluation harness: throughput, energy and area models for
SIMDRAM, the Ambit baseline, and CPU/GPU hosts."""

from repro.perf.area import AreaReport, area_report
from repro.perf.model import (
    PimSystemModel,
    PlatformMeasure,
    measure_all_platforms,
    measure_host,
)
from repro.perf.opmodel import HostOpProfile, host_profile
from repro.perf.platforms import HostPlatform, cpu_skylake, gpu_volta

__all__ = [
    "AreaReport",
    "area_report",
    "PimSystemModel",
    "PlatformMeasure",
    "measure_all_platforms",
    "measure_host",
    "HostOpProfile",
    "host_profile",
    "HostPlatform",
    "cpu_skylake",
    "gpu_volta",
]
