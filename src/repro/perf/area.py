"""Area-overhead model (paper §5: "less than 1% DRAM area overhead").

SIMDRAM adds:

* **inside DRAM** — the Ambit substrate it builds on: 8 B-group rows +
  2 C-group rows per subarray and a slightly wider B-group row decoder.
  Overhead is dominated by the reserved rows, i.e. ``reserved/total``
  rows per subarray, plus a small decoder term;
* **in the memory controller** — the control unit (µProgram scratchpad,
  sequencer, loop/bank bookkeeping) and the transposition unit (an 8x8
  64-bit transpose buffer array plus an object-tracking CAM).  Both are
  tiny relative to a CPU die; constants below are synthesized-SRAM
  estimates in 22 nm, consistent with the paper's reported magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.geometry import DramGeometry, N_BITWISE_ROWS, N_CONTROL_ROWS

#: Additional row-decoder area for the B-group reserved addresses, as a
#: fraction of *chip* area (the decoder strip is a small part of the die).
B_DECODER_FRACTION = 0.0005

#: Fraction of a DRAM die occupied by cell arrays (array efficiency);
#: reserved-row overhead only applies to this fraction of the chip.
ARRAY_EFFICIENCY = 0.60

#: CPU-side unit areas (mm^2, 22 nm synthesized estimates).
CONTROL_UNIT_MM2 = 0.04       # sequencer + µProgram scratchpad SRAM
TRANSPOSITION_UNIT_MM2 = 0.06  # 2x 4 KB transpose buffers + object CAM
#: Reference die areas for percentages.
CPU_DIE_MM2 = 694.0           # server-class Xeon die
DRAM_CHIP_MM2 = 60.0          # 8 Gb DDR4 die


@dataclass(frozen=True)
class AreaReport:
    """Area overhead of every added component."""

    dram_reserved_rows_percent: float
    dram_decoder_percent: float
    dram_total_percent: float
    control_unit_mm2: float
    transposition_unit_mm2: float
    controller_total_mm2: float
    controller_percent_of_cpu: float


def area_report(geometry: DramGeometry | None = None) -> AreaReport:
    """Compute the paper's area-overhead table."""
    geometry = geometry or DramGeometry.paper()
    reserved = N_BITWISE_ROWS + N_CONTROL_ROWS
    row_fraction = (reserved / geometry.rows_per_subarray
                    * ARRAY_EFFICIENCY)
    dram_total = row_fraction + B_DECODER_FRACTION
    controller = CONTROL_UNIT_MM2 + TRANSPOSITION_UNIT_MM2
    return AreaReport(
        dram_reserved_rows_percent=100.0 * row_fraction,
        dram_decoder_percent=100.0 * B_DECODER_FRACTION,
        dram_total_percent=100.0 * dram_total,
        control_unit_mm2=CONTROL_UNIT_MM2,
        transposition_unit_mm2=TRANSPOSITION_UNIT_MM2,
        controller_total_mm2=controller,
        controller_percent_of_cpu=100.0 * controller / CPU_DIE_MM2,
    )
