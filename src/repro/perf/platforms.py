"""Baseline platform models: CPU and GPU.

The paper compares SIMDRAM against a multi-core Xeon-class CPU and a
high-end (Volta-class) GPU running the same bulk element-wise kernels.
Such kernels are *streaming*: every element is read from and written to
DRAM once, so achievable throughput is the minimum of the memory-bound
and compute-bound ceilings.  We model exactly that with documented
constants; see DESIGN.md §3 for why this substitution preserves the
paper's comparative results.

Energy accounting per element = data movement (DRAM pJ/bit for all bytes
touched) + core pipeline energy per arithmetic operation.  The movement
term dominates for bulk workloads, which is the paper's central premise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class HostPlatform:
    """A bandwidth/compute-roofline host platform (CPU or GPU)."""

    name: str
    #: Peak DRAM bandwidth (GB/s) and the fraction streaming kernels reach.
    peak_bw_gbps: float
    sustained_bw_fraction: float
    #: Compute ceiling: lanes x frequency = peak simple ops per ns.
    n_cores: int
    simd_lanes_per_core: int  # 32-bit lanes
    freq_ghz: float
    #: Energy constants.
    dram_pj_per_bit: float    # off-chip access energy
    core_pj_per_op: float     # pipeline energy per 32-bit ALU op

    def __post_init__(self) -> None:
        if not 0 < self.sustained_bw_fraction <= 1:
            raise ConfigError("sustained_bw_fraction must be in (0, 1]")
        for attr in ("peak_bw_gbps", "n_cores", "simd_lanes_per_core",
                     "freq_ghz", "dram_pj_per_bit", "core_pj_per_op"):
            if getattr(self, attr) <= 0:
                raise ConfigError(f"{attr} must be positive")

    @property
    def sustained_bw_bytes_per_ns(self) -> float:
        """Achievable streaming bandwidth (GB/s == bytes/ns)."""
        return self.peak_bw_gbps * self.sustained_bw_fraction

    @property
    def peak_ops_per_ns(self) -> float:
        """Peak 32-bit ALU operations per nanosecond."""
        return self.n_cores * self.simd_lanes_per_core * self.freq_ghz

    # ------------------------------------------------------------------
    # roofline model for one element-wise operation
    # ------------------------------------------------------------------
    def throughput_gops(self, bytes_per_element: float,
                        ops_per_element: float) -> float:
        """Elements processed per ns (== GOPS) for a streaming kernel."""
        memory_bound = self.sustained_bw_bytes_per_ns / bytes_per_element
        compute_bound = self.peak_ops_per_ns / max(ops_per_element, 1e-9)
        return min(memory_bound, compute_bound)

    def energy_nj_per_element(self, bytes_per_element: float,
                              ops_per_element: float) -> float:
        """Energy per element: data movement + core pipeline."""
        movement = bytes_per_element * 8 * self.dram_pj_per_bit
        compute = ops_per_element * self.core_pj_per_op
        return (movement + compute) * 1e-3


def cpu_skylake() -> HostPlatform:
    """Xeon-class CPU: 16 cores, AVX2 (8x32-bit lanes), 4-ch DDR4-2400.

    The sustained-bandwidth fraction models *measured* bulk kernels
    (read-read-write streams with turnaround penalties), matching the
    paper's measured-CPU methodology rather than STREAM peak; DRAM access
    energy ~20 pJ/bit is the standard figure for off-chip DDR4 (row + I/O
    + controller).
    """
    return HostPlatform(
        name="CPU", peak_bw_gbps=76.8, sustained_bw_fraction=0.35,
        n_cores=16, simd_lanes_per_core=8, freq_ghz=3.0,
        dram_pj_per_bit=20.0, core_pj_per_op=250.0)


def gpu_volta() -> HostPlatform:
    """Volta-class GPU: 80 SMs x 64 lanes, HBM2 at 900 GB/s.

    HBM2 access energy ~7 pJ/bit; per-op core energy is lower than the
    CPU's thanks to simpler in-order lanes.  The sustained fraction again
    models measured element-wise kernels (launch overhead, partial
    coalescing), per the paper's measured-GPU methodology.
    """
    return HostPlatform(
        name="GPU", peak_bw_gbps=900.0, sustained_bw_fraction=0.55,
        n_cores=80, simd_lanes_per_core=64, freq_ghz=1.5,
        dram_pj_per_bit=7.0, core_pj_per_op=30.0)
