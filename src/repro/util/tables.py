"""Minimal ASCII table formatting used by the benchmark harness.

The benchmark scripts regenerate the paper's tables and figures as text;
this keeps the output dependency-free and diffable.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.2f}"
    return str(cell)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
        out.append("=" * len(sep))
    out.append(line(headers))
    out.append(sep)
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)
