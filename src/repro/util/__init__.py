"""Shared utilities: bit packing/transposition helpers and table printing."""

from repro.util.bitops import (
    bits_to_ints,
    ints_to_bits,
    mask_for_width,
    to_signed,
    to_unsigned,
)
from repro.util.tables import format_table

__all__ = [
    "bits_to_ints",
    "ints_to_bits",
    "mask_for_width",
    "to_signed",
    "to_unsigned",
    "format_table",
]
