"""Bit-level packing helpers shared by the layout, logic and DRAM layers.

The vertical layout stores the *i*-th bit of every element of a vector in
one DRAM row (bit-slice ``i``).  These helpers convert between numpy
integer vectors and bit matrices of shape ``(width, n_elements)`` where row
``i`` holds bit ``i`` (LSB first), which is exactly the orientation used by
:class:`repro.dram.subarray.Subarray` rows.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OperationError


def mask_for_width(width: int) -> int:
    """Return the unsigned bit mask for ``width``-bit values (e.g. 0xFF for 8)."""
    if width < 1:
        raise OperationError(f"bit width must be >= 1, got {width}")
    return (1 << width) - 1


def to_unsigned(values: np.ndarray, width: int) -> np.ndarray:
    """Reinterpret (possibly signed) integers as ``width``-bit unsigned values.

    Negative inputs are mapped to their two's-complement encoding, which is
    the representation SIMDRAM stores in DRAM columns.
    """
    mask = mask_for_width(width)
    return np.asarray(values, dtype=np.int64) & mask


def to_signed(values: np.ndarray, width: int) -> np.ndarray:
    """Reinterpret ``width``-bit unsigned values as two's-complement signed."""
    vals = np.asarray(values, dtype=np.int64) & mask_for_width(width)
    sign_bit = 1 << (width - 1)
    return np.where(vals >= sign_bit, vals - (1 << width), vals)


def ints_to_bits(values: np.ndarray, width: int) -> np.ndarray:
    """Transpose integers into a vertical bit matrix.

    Returns a boolean array of shape ``(width, len(values))``; row ``i``
    holds bit ``i`` (LSB first) of every element.  This is the software
    equivalent of the SIMDRAM transposition unit's horizontal-to-vertical
    direction.
    """
    vals = to_unsigned(values, width)
    shifts = np.arange(width, dtype=np.int64)[:, None]
    return ((vals[None, :] >> shifts) & 1).astype(bool)


def bits_to_ints(bits: np.ndarray, signed: bool = False) -> np.ndarray:
    """Inverse of :func:`ints_to_bits` (vertical-to-horizontal transposition).

    ``bits`` has shape ``(width, n)`` with row ``i`` = bit ``i`` (LSB first).
    """
    bits = np.asarray(bits, dtype=bool)
    if bits.ndim != 2:
        raise OperationError(f"expected 2-D bit matrix, got shape {bits.shape}")
    width = bits.shape[0]
    weights = (np.int64(1) << np.arange(width, dtype=np.int64))[:, None]
    vals = (bits.astype(np.int64) * weights).sum(axis=0)
    if signed:
        return to_signed(vals, width)
    return vals
