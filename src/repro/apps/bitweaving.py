"""BitWeaving-style column scans (databases, paper §5).

BitWeaving (Li & Patel, SIGMOD 2013) stores fixed-width column codes
bit-sliced so that predicate evaluation is a sequence of bitwise
operations over whole words — exactly SIMDRAM's vertical layout.  A
range predicate ``code < constant`` over a bit-sliced column is one
``gt`` µProgram (each element in its own lane); conjunctions combine the
resulting predicate bitvectors with Ambit-style bulk AND of whole rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.common import KernelModel, OpInvocation
from repro.core.framework import Simdram
from repro.errors import OperationError

CODE_BITS = 12  # typical dictionary-code width in BitWeaving workloads


def bitweaving_kernel(n_codes: int = 100_000_000,
                      n_predicates: int = 2) -> KernelModel:
    """Op mix of a conjunctive scan over ``n_codes`` column codes."""
    invocations = [OpInvocation("gt", CODE_BITS, n_codes)
                   for _ in range(n_predicates)]
    # Combining predicate bitvectors: one 1-bit AND per code per join.
    invocations += [OpInvocation("and_red", 1, n_codes)
                    for _ in range(n_predicates - 1)]
    return KernelModel(
        name="BitWeaving",
        description=(f"conjunctive column scan, {n_predicates} range "
                     f"predicates over {n_codes} codes"),
        invocations=tuple(invocations),
        transposed_bits=0,  # bit-sliced storage is already vertical
        host_bytes=n_codes // 8,  # result bitvector readback
    )


@dataclass(frozen=True)
class BitSlicedColumn:
    """A dictionary-encoded column stored bit-sliced (vertical)."""

    codes: np.ndarray  # int64 codes, each < 2**CODE_BITS

    @classmethod
    def synthetic(cls, n_codes: int, seed: int = 0,
                  width: int = CODE_BITS) -> "BitSlicedColumn":
        rng = np.random.default_rng(seed)
        return cls(codes=rng.integers(0, 1 << width, n_codes))


def range_scan_simdram(sim: Simdram, column: BitSlicedColumn,
                       low: int, high: int,
                       width: int = CODE_BITS) -> np.ndarray:
    """Evaluate ``low <= code < high`` over a bit-sliced column.

    Returns the boolean selection vector.  Each comparison is one
    relational µProgram; the conjunction is an ``if_else``-free 1-bit
    AND computed by a width-1 ``and_red`` style combine (here: ``min`` on
    1-bit operands would also work; we use ``if_else`` masking).
    """
    if not 0 <= low <= high < (1 << width):
        raise OperationError(f"bad range [{low}, {high}) for {width}-bit")
    n = len(column.codes)
    # Comparisons are signed; one extra bit keeps unsigned codes positive.
    cmp_width = width + 1
    codes = sim.array(column.codes, cmp_width)
    low_arr = sim.array(np.full(n, low, dtype=np.int64), cmp_width)
    high_arr = sim.array(np.full(n, high, dtype=np.int64), cmp_width)

    at_least_low = sim.run("ge", codes, low_arr)      # code >= low
    below_high = sim.run("gt", high_arr, codes)       # high > code
    # Conjunction of two 1-bit vectors: select below_high where
    # at_least_low else 0.
    zero = sim.array(np.zeros(n, dtype=np.int64), 1)
    both = sim.run("if_else", at_least_low, below_high, zero)

    selection = both.to_numpy().astype(bool)
    for arr in (codes, low_arr, high_arr, at_least_low, below_high, zero,
                both):
        arr.free()
    return selection


def range_scan_golden(column: BitSlicedColumn, low: int,
                      high: int) -> np.ndarray:
    """Reference host implementation for tests."""
    return (column.codes >= low) & (column.codes < high)
