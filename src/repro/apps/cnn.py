"""CNN inference kernels: VGG-13, VGG-16 and LeNet-5 (paper §5).

The paper accelerates quantized CNN inference: convolutions and
fully-connected layers decompose into elementwise multiply + accumulate
over 8-bit weights/activations with 16-bit accumulation, plus a ReLU per
activation — all SIMDRAM catalog operations.  This module derives each
network's op mix from its layer shapes and provides a functional
convolution that runs on the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import lazy
from repro.apps.common import KernelModel, OpInvocation
from repro.core import expr
from repro.core.expr import Expr
from repro.core.framework import Simdram
from repro.errors import OperationError

#: Quantization used by the kernel models (documented substitution:
#: the paper evaluates quantized networks on SIMDRAM).
WEIGHT_BITS = 8
ACC_BITS = 16


@dataclass(frozen=True)
class ConvLayer:
    """One convolution layer (square kernels, same-padding)."""

    in_channels: int
    out_channels: int
    kernel: int
    out_size: int  # output feature map is out_size x out_size

    @property
    def macs(self) -> int:
        return (self.out_channels * self.out_size * self.out_size
                * self.in_channels * self.kernel * self.kernel)

    @property
    def activations(self) -> int:
        return self.out_channels * self.out_size * self.out_size


@dataclass(frozen=True)
class DenseLayer:
    """One fully-connected layer."""

    in_features: int
    out_features: int

    @property
    def macs(self) -> int:
        return self.in_features * self.out_features

    @property
    def activations(self) -> int:
        return self.out_features


def _vgg_conv_stack(blocks: list[tuple[int, int, int]]) -> list[ConvLayer]:
    """Build VGG conv layers from (n_convs, channels, map_size) blocks."""
    layers = []
    in_channels = 3
    for n_convs, channels, size in blocks:
        for _ in range(n_convs):
            layers.append(ConvLayer(in_channels, channels, 3, size))
            in_channels = channels
    return layers


VGG13_LAYERS: list[ConvLayer | DenseLayer] = _vgg_conv_stack([
    (2, 64, 224), (2, 128, 112), (2, 256, 56), (2, 512, 28), (2, 512, 14),
]) + [DenseLayer(512 * 7 * 7, 4096), DenseLayer(4096, 4096),
      DenseLayer(4096, 1000)]

VGG16_LAYERS: list[ConvLayer | DenseLayer] = _vgg_conv_stack([
    (2, 64, 224), (2, 128, 112), (3, 256, 56), (3, 512, 28), (3, 512, 14),
]) + [DenseLayer(512 * 7 * 7, 4096), DenseLayer(4096, 4096),
      DenseLayer(4096, 1000)]

LENET_LAYERS: list[ConvLayer | DenseLayer] = [
    ConvLayer(1, 6, 5, 28),
    ConvLayer(6, 16, 5, 10),
    DenseLayer(16 * 5 * 5, 120),
    DenseLayer(120, 84),
    DenseLayer(84, 10),
]


def cnn_kernel(name: str, layers: list[ConvLayer | DenseLayer],
               batch: int = 1) -> KernelModel:
    """Derive the SIMDRAM op mix of one network inference."""
    macs = sum(layer.macs for layer in layers) * batch
    activations = sum(layer.activations for layer in layers) * batch
    invocations = (
        OpInvocation("mul", WEIGHT_BITS, macs),
        OpInvocation("add", ACC_BITS, macs),
        OpInvocation("relu", ACC_BITS, activations),
    )
    transposed = macs * WEIGHT_BITS  # activations stream in per MAC lane
    return KernelModel(
        name=name,
        description=f"{name} quantized inference (batch={batch})",
        invocations=invocations,
        transposed_bits=transposed,
        host_bytes=activations * 2,
    )


def vgg13_kernel(batch: int = 1) -> KernelModel:
    return cnn_kernel("VGG-13", VGG13_LAYERS, batch)


def vgg16_kernel(batch: int = 1) -> KernelModel:
    return cnn_kernel("VGG-16", VGG16_LAYERS, batch)


def lenet_kernel(batch: int = 1) -> KernelModel:
    return cnn_kernel("LeNet-5", LENET_LAYERS, batch)


# ---------------------------------------------------------------------------
# functional mini-convolution on the simulator
# ---------------------------------------------------------------------------
def conv2d_simdram(sim: Simdram, image: np.ndarray,
                   weights: np.ndarray) -> np.ndarray:
    """Valid 2-D convolution executed with SIMDRAM µPrograms.

    Uses the im2col strategy: every output pixel is one SIMD lane; each
    kernel tap contributes one broadcast ``mul`` and one ``add``.
    ``image`` is (H, W) uint8, ``weights`` is (k, k) int8; returns the
    int32 feature map of shape (H-k+1, W-k+1) before activation.
    """
    image = np.asarray(image)
    weights = np.asarray(weights)
    if image.ndim != 2 or weights.ndim != 2:
        raise OperationError("conv2d_simdram expects 2-D image and kernel")
    k = weights.shape[0]
    if weights.shape != (k, k):
        raise OperationError("kernel must be square")
    out_h, out_w = image.shape[0] - k + 1, image.shape[1] - k + 1
    if out_h < 1 or out_w < 1:
        raise OperationError("kernel larger than image")

    acc = sim.array(np.zeros(out_h * out_w, dtype=np.int64), ACC_BITS,
                    signed=True)
    for dy in range(k):
        for dx in range(k):
            patch = image[dy:dy + out_h, dx:dx + out_w].reshape(-1)
            pixels = sim.array(patch.astype(np.int64), ACC_BITS,
                               signed=True)
            tap = sim.array(
                np.full(out_h * out_w, int(weights[dy, dx]),
                        dtype=np.int64), ACC_BITS, signed=True)
            product = sim.run("mul", pixels, tap)
            product.signed = True
            new_acc = sim.run("add", acc, product)
            new_acc.signed = True
            for stale in (pixels, tap, product, acc):
                stale.free()
            acc = new_acc
    result = acc.to_numpy().reshape(out_h, out_w)
    acc.free()
    return result


def madd_expr(weight: int) -> Expr:
    """The fused multiply-accumulate tap: ``x * weight + acc``.

    The tap weight is a compile-time :func:`~repro.core.expr.const`, so
    the multiplier folds into the MIG (shift-adds of a known constant)
    instead of replaying the full generic multiplier µProgram.
    """
    return expr.add(expr.mul(expr.inp("x"), expr.const(weight)),
                    expr.inp("acc"))


def madd_relu_expr(weight: int) -> Expr:
    """The dot-product finisher: ``relu(x * weight + acc)`` in one
    fused µProgram — the paper's conv+activation pattern with zero
    intermediate materialization."""
    return expr.relu(madd_expr(weight))


def conv2d_relu_simdram_fused(sim: Simdram, image: np.ndarray,
                              weights: np.ndarray) -> np.ndarray:
    """Valid 2-D convolution + ReLU executed as fused SIMDRAM kernels.

    Same im2col strategy as :func:`conv2d_simdram`, but each kernel tap
    is **one** fused multiply-accumulate µProgram (:func:`madd_expr`),
    with ReLU folded into the final tap (:func:`madd_relu_expr`).
    Compared to the unfused pipeline this issues one ``bbop`` per tap
    instead of two (or three with the activation), never announces an
    intermediate vertical object, and the per-tap product never touches
    a named row block.  Kernels are cached by DAG hash, so repeated
    weights compile once.
    """
    image = np.asarray(image)
    weights = np.asarray(weights)
    if image.ndim != 2 or weights.ndim != 2:
        raise OperationError("conv2d expects a 2-D image and kernel")
    k = weights.shape[0]
    if weights.shape != (k, k):
        raise OperationError("kernel must be square")
    out_h, out_w = image.shape[0] - k + 1, image.shape[1] - k + 1
    if out_h < 1 or out_w < 1:
        raise OperationError("kernel larger than image")

    taps = [(dy, dx) for dy in range(k) for dx in range(k)]
    # RowClone the zero accumulator in-DRAM: no host-channel transpose
    # for a constant (sim.array would stream out_h*out_w*ACC_BITS zero
    # bits over the channel).
    acc = sim.fill(0, out_h * out_w, ACC_BITS, signed=True)
    for dy, dx in taps:
        patch = image[dy:dy + out_h, dx:dx + out_w].reshape(-1)
        pixels = sim.array(patch.astype(np.int64), ACC_BITS, signed=True)
        weight = int(weights[dy, dx])
        last = (dy, dx) == taps[-1]
        tap = madd_relu_expr(weight) if last else madd_expr(weight)
        new_acc = sim.run_expr(tap, {"x": pixels, "acc": acc},
                               width=ACC_BITS)
        new_acc.signed = True
        pixels.free()
        acc.free()
        acc = new_acc
    result = acc.to_numpy().reshape(out_h, out_w)
    acc.free()
    return result


def conv2d_relu_cluster(cluster, image: np.ndarray,
                        weights: np.ndarray) -> np.ndarray:
    """Valid 2-D convolution + ReLU on the sharded multi-module runtime.

    The cluster analogue of :func:`conv2d_relu_simdram_fused`: output
    pixels are SIMD lanes *across all modules* (feature maps larger
    than one module's lanes shard transparently), the accumulator and
    per-tap pixel tensors stay device-resident between taps, and working
    sets beyond a module's D-group rows page through the runtime's
    eviction layer instead of failing.  Each tap is the same fused
    multiply-accumulate kernel, compiled once at the cluster level and
    adopted by every module.
    """
    image = np.asarray(image)
    weights = np.asarray(weights)
    if image.ndim != 2 or weights.ndim != 2:
        raise OperationError("conv2d expects a 2-D image and kernel")
    k = weights.shape[0]
    if weights.shape != (k, k):
        raise OperationError("kernel must be square")
    out_h, out_w = image.shape[0] - k + 1, image.shape[1] - k + 1
    if out_h < 1 or out_w < 1:
        raise OperationError("kernel larger than image")

    taps = [(dy, dx) for dy in range(k) for dx in range(k)]
    acc = cluster.tensor(np.zeros(out_h * out_w, dtype=np.int64),
                         ACC_BITS, signed=True)
    for dy, dx in taps:
        patch = image[dy:dy + out_h, dx:dx + out_w].reshape(-1)
        pixels = cluster.tensor(patch.astype(np.int64), ACC_BITS,
                                signed=True)
        last = (dy, dx) == taps[-1]
        weight = int(weights[dy, dx])
        tap = madd_relu_expr(weight) if last else madd_expr(weight)
        new_acc = cluster.run_expr(tap, {"x": pixels, "acc": acc},
                                   width=ACC_BITS)
        pixels.free()
        acc.free()
        acc = new_acc
    result = acc.to_numpy().reshape(out_h, out_w)
    acc.free()
    return result


def conv2d_relu_lazy(device, image: np.ndarray,
                     weights: np.ndarray) -> np.ndarray:
    """Valid 2-D convolution + ReLU via the **lazy tensor frontend**.

    The programmer-transparent spelling of
    :func:`conv2d_relu_simdram_fused`: plain loops and ``x * w + acc``
    arithmetic, zero SIMDRAM-specific calls.  The whole im2col
    dot-product graph is captured lazily; forcing the result lets the
    evaluation engine partition it against the ``bbop`` three-source
    limit (fusing *multiple* taps per µProgram, where the hand-written
    eager pipeline dispatches one kernel per tap), fold each constant
    tap weight into the MIG, and dispatch on ``device`` — a module, a
    cluster (sharding + paging for feature maps beyond one module's
    lanes and rows), or the process default.
    """
    image = np.asarray(image)
    weights = np.asarray(weights)
    if image.ndim != 2 or weights.ndim != 2:
        raise OperationError("conv2d expects a 2-D image and kernel")
    k = weights.shape[0]
    if weights.shape != (k, k):
        raise OperationError("kernel must be square")
    out_h, out_w = image.shape[0] - k + 1, image.shape[1] - k + 1
    if out_h < 1 or out_w < 1:
        raise OperationError("kernel larger than image")

    acc = None
    for dy in range(k):
        for dx in range(k):
            patch = image[dy:dy + out_h, dx:dx + out_w].reshape(-1)
            pixels = lazy.array(patch.astype(np.int64), width=ACC_BITS,
                                signed=True, device=device)
            term = pixels * int(weights[dy, dx])
            acc = term if acc is None else term + acc
    return acc.relu().numpy().reshape(out_h, out_w)


def relu_simdram(sim: Simdram, values: np.ndarray,
                 width: int = ACC_BITS) -> np.ndarray:
    """Elementwise ReLU executed with the SIMDRAM ``relu`` µProgram."""
    arr = sim.array(np.asarray(values).reshape(-1), width, signed=True)
    out = sim.run("relu", arr)
    result = out.to_numpy().reshape(np.asarray(values).shape)
    arr.free()
    out.free()
    return result
