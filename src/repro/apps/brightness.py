"""Brightness adjustment kernel (image processing, paper §5).

Adds a signed brightness delta to every pixel and saturates the result
to [0, 255] — an ``add`` + two predicated clamps per pixel, all SIMDRAM
operations.  The functional version runs the real µPrograms on the
simulator; the kernel model scales to a full-HD frame.
"""

from __future__ import annotations

import numpy as np

from repro import lazy
from repro.apps.common import KernelModel, OpInvocation
from repro.core import expr
from repro.core.expr import Expr
from repro.core.framework import Simdram
from repro.errors import OperationError

#: Pixels are widened to 10 bits so add and clamp cannot wrap.
PIXEL_BITS = 10


def brightness_kernel(width: int = 1920, height: int = 1080) -> KernelModel:
    """Op mix for adjusting one ``width x height`` 8-bit frame."""
    pixels = width * height
    return KernelModel(
        name="Brightness",
        description=f"brightness adjust of a {width}x{height} frame",
        invocations=(
            OpInvocation("add", PIXEL_BITS, pixels),
            OpInvocation("gt", PIXEL_BITS, pixels),     # > 255 ?
            OpInvocation("if_else", PIXEL_BITS, pixels),  # clamp high
            OpInvocation("gt", PIXEL_BITS, pixels),     # < 0 ?
            OpInvocation("if_else", PIXEL_BITS, pixels),  # clamp low
        ),
        transposed_bits=2 * pixels * 8,
        host_bytes=0,
    )


def adjust_brightness_simdram(sim: Simdram, image: np.ndarray,
                              delta: int) -> np.ndarray:
    """Brightness-adjust an 8-bit image with SIMDRAM µPrograms."""
    image = np.asarray(image)
    if image.dtype != np.uint8:
        raise OperationError("expected a uint8 image")
    flat = image.reshape(-1).astype(np.int64)
    n = flat.size

    pixels = sim.array(flat, PIXEL_BITS, signed=True)
    shift = sim.array(np.full(n, delta, dtype=np.int64), PIXEL_BITS,
                      signed=True)
    shifted = sim.run("add", pixels, shift)
    shifted.signed = True

    # Clamp to 255: sel = shifted > 255 ; out = sel ? 255 : shifted.
    high = sim.array(np.full(n, 255, dtype=np.int64), PIXEL_BITS,
                     signed=True)
    over = sim.run("gt", shifted, high)
    clamped_high = sim.run("if_else", over, high, shifted)
    clamped_high.signed = True

    # Clamp to 0: sel = 0 > x ; out = sel ? 0 : x.
    zero = sim.array(np.zeros(n, dtype=np.int64), PIXEL_BITS, signed=True)
    under = sim.run("gt", zero, clamped_high)
    clamped = sim.run("if_else", under, zero, clamped_high)

    result = clamped.to_numpy().astype(np.uint8).reshape(image.shape)
    for arr in (pixels, shift, shifted, high, over, clamped_high, zero,
                under, clamped):
        arr.free()
    return result


def brightness_expr(delta: int) -> Expr:
    """The whole scale+clamp pipeline as one fused expression.

    ``max(min(px + delta, 255), 0)`` — the delta and both clamp bounds
    are compile-time constants, so the adder and both clamps specialize
    in the MIG; the five-operation unfused pipeline (add, gt, if_else,
    gt, if_else) collapses to one µProgram with a single DRAM-resident
    input.
    """
    shifted = expr.add(expr.inp("px"), expr.const(delta))
    return expr.max(expr.min(shifted, expr.const(255)), expr.const(0))


def adjust_brightness_fused(sim: Simdram, image: np.ndarray,
                            delta: int) -> np.ndarray:
    """Brightness-adjust an image with **one** fused µProgram.

    Streams through :meth:`Simdram.map_expr`, so (unlike the unfused
    version, which is bounded by the module's SIMD lanes) frames of any
    size are processed in lane-sized batches — each batch is
    transpose-in, one replay, transpose-out, with zero intermediate
    vertical objects.  Kernels are cached per delta (the DAG hash
    includes the folded constant).
    """
    image = np.asarray(image)
    if image.dtype != np.uint8:
        raise OperationError("expected a uint8 image")
    flat = image.reshape(-1).astype(np.int64)
    clamped = sim.map_expr(brightness_expr(delta), {"px": flat},
                           width=PIXEL_BITS)
    return clamped.astype(np.uint8).reshape(image.shape)


def adjust_brightness_lazy(image: np.ndarray, delta: int,
                           device=None) -> np.ndarray:
    """Brightness-adjust an image with the **lazy tensor frontend**.

    The programmer-transparent spelling: plain array arithmetic, zero
    SIMDRAM-specific calls.  The ``+`` and ``clip`` record a lazy DAG;
    ``numpy()`` fuses it into one µProgram (cached by DAG hash) and
    dispatches it on ``device`` — a :class:`~repro.Simdram` module, a
    :class:`~repro.SimdramCluster` (frames larger than one module's
    lanes shard transparently), or the process default.  Bit-identical
    to :func:`adjust_brightness_fused` and the unfused
    :func:`adjust_brightness_simdram` pipeline.
    """
    image = np.asarray(image)
    if image.dtype != np.uint8:
        raise OperationError("expected a uint8 image")
    flat = image.reshape(-1).astype(np.int64)
    px = lazy.array(flat, width=PIXEL_BITS, signed=True, device=device)
    adjusted = (px + int(delta)).clip(0, 255)
    return adjusted.numpy().astype(np.uint8).reshape(image.shape)


def adjust_brightness_golden(image: np.ndarray, delta: int) -> np.ndarray:
    """Reference implementation for tests."""
    wide = image.astype(np.int64) + delta
    return np.clip(wide, 0, 255).astype(np.uint8)
