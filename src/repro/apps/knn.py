"""k-nearest-neighbour digit classification (paper §5).

Distance computation between the query and every reference vector is the
PIM-friendly bulk of kNN: each reference is one SIMD lane, and the L1
distance accumulates |x_d - q_d| over the feature dimensions using
``sub``/``abs``/``add`` µPrograms.  The final top-k selection is a
cross-lane operation done on the host after reading the distance vector
back (charged as host work in the kernel model).
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import KernelModel, OpInvocation
from repro.core.framework import Simdram
from repro.errors import OperationError

FEATURE_BITS = 8
DIST_BITS = 16


def knn_kernel(n_references: int = 60_000, n_features: int = 64,
               n_queries: int = 100) -> KernelModel:
    """Op mix of classifying ``n_queries`` against the reference set."""
    per_query = n_references * n_features
    total = per_query * n_queries
    return KernelModel(
        name="kNN",
        description=(f"kNN: {n_queries} queries x {n_references} refs "
                     f"x {n_features} features (L1 distance)"),
        invocations=(
            OpInvocation("sub", DIST_BITS, total),
            OpInvocation("abs", DIST_BITS, total),
            OpInvocation("add", DIST_BITS, total),
        ),
        transposed_bits=n_references * n_features * FEATURE_BITS,
        host_bytes=n_queries * n_references * 2,  # distance readback
    )


def knn_classify_simdram(sim: Simdram, references: np.ndarray,
                         labels: np.ndarray, queries: np.ndarray,
                         k: int = 3) -> np.ndarray:
    """Classify ``queries`` by majority label of the k L1-nearest refs.

    ``references`` is (n_refs, n_features) uint8, ``queries`` is
    (n_queries, n_features) uint8.  Distances are computed lane-parallel
    with SIMDRAM ops; the top-k vote happens on the host.
    """
    references = np.asarray(references)
    queries = np.asarray(queries)
    labels = np.asarray(labels)
    if references.ndim != 2 or queries.ndim != 2:
        raise OperationError("references and queries must be 2-D")
    if len(labels) != len(references):
        raise OperationError("one label per reference required")
    n_refs, n_features = references.shape

    predictions = []
    for query in queries:
        distances = sim.array(np.zeros(n_refs, dtype=np.int64), DIST_BITS,
                              signed=True)
        for d in range(n_features):
            column = sim.array(references[:, d].astype(np.int64),
                               DIST_BITS, signed=True)
            broadcast = sim.array(
                np.full(n_refs, int(query[d]), dtype=np.int64),
                DIST_BITS, signed=True)
            diff = sim.run("sub", column, broadcast)
            diff.signed = True
            magnitude = sim.run("abs", diff)
            new_distances = sim.run("add", distances, magnitude)
            new_distances.signed = True
            for stale in (column, broadcast, diff, magnitude, distances):
                stale.free()
            distances = new_distances
        host_distances = distances.to_numpy()
        distances.free()
        nearest = np.argsort(host_distances, kind="stable")[:k]
        votes = np.bincount(labels[nearest])
        predictions.append(int(np.argmax(votes)))
    return np.asarray(predictions)


def knn_classify_golden(references: np.ndarray, labels: np.ndarray,
                        queries: np.ndarray, k: int = 3) -> np.ndarray:
    """Reference host implementation for tests."""
    predictions = []
    for query in np.asarray(queries):
        dist = np.abs(references.astype(np.int64)
                      - query.astype(np.int64)).sum(axis=1)
        nearest = np.argsort(dist, kind="stable")[:k]
        predictions.append(int(np.argmax(np.bincount(labels[nearest]))))
    return np.asarray(predictions)
