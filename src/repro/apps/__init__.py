"""The seven application kernels of the paper's evaluation:
VGG-13, VGG-16, LeNet-5, kNN, TPC-H, BitWeaving, and Brightness."""

from repro.apps.bitweaving import (
    BitSlicedColumn,
    bitweaving_kernel,
    range_scan_golden,
    range_scan_simdram,
)
from repro.apps.brightness import (
    adjust_brightness_fused,
    adjust_brightness_golden,
    adjust_brightness_simdram,
    brightness_kernel,
)
from repro.apps.cnn import (
    LENET_LAYERS,
    VGG13_LAYERS,
    VGG16_LAYERS,
    conv2d_relu_simdram_fused,
    conv2d_simdram,
    lenet_kernel,
    relu_simdram,
    vgg13_kernel,
    vgg16_kernel,
)
from repro.apps.common import (
    KernelHarness,
    KernelMeasure,
    KernelModel,
    OpInvocation,
)
from repro.apps.knn import knn_classify_golden, knn_classify_simdram, knn_kernel
from repro.apps.tpch import (
    LineitemTable,
    filtered_sum_golden,
    filtered_sum_simdram,
    tpch_kernel,
)


def paper_kernels() -> list[KernelModel]:
    """The seven kernels at the paper's evaluation scales."""
    return [
        vgg13_kernel(),
        vgg16_kernel(),
        lenet_kernel(),
        knn_kernel(),
        tpch_kernel(),
        bitweaving_kernel(),
        brightness_kernel(),
    ]


__all__ = [
    "BitSlicedColumn",
    "bitweaving_kernel",
    "range_scan_golden",
    "range_scan_simdram",
    "adjust_brightness_fused",
    "adjust_brightness_golden",
    "adjust_brightness_simdram",
    "brightness_kernel",
    "LENET_LAYERS",
    "VGG13_LAYERS",
    "VGG16_LAYERS",
    "conv2d_relu_simdram_fused",
    "conv2d_simdram",
    "lenet_kernel",
    "relu_simdram",
    "vgg13_kernel",
    "vgg16_kernel",
    "KernelHarness",
    "KernelMeasure",
    "KernelModel",
    "OpInvocation",
    "knn_classify_golden",
    "knn_classify_simdram",
    "knn_kernel",
    "LineitemTable",
    "filtered_sum_golden",
    "filtered_sum_simdram",
    "tpch_kernel",
    "paper_kernels",
]
