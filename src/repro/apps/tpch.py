"""TPC-H style selection + aggregation scan (databases, paper §5).

Models the PIM-friendly core of TPC-H query processing: a predicated
column scan (``WHERE quantity < threshold``) followed by a masked
aggregate (``SUM(price)``) — one ``gt``, one ``if_else`` and one ``add``
per row, with the final cross-lane sum reduction on the host.  The
synthetic lineitem-like table preserves the columnar access pattern of
the benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.common import KernelModel, OpInvocation
from repro.core.framework import Simdram

QUANTITY_BITS = 8
PRICE_BITS = 16
#: TPC-H scale factor 1 has ~6M lineitem rows.
SF1_ROWS = 6_001_215


def tpch_kernel(n_rows: int = SF1_ROWS) -> KernelModel:
    """Op mix of one predicated aggregation scan over ``n_rows``."""
    return KernelModel(
        name="TPC-H",
        description=f"predicated SUM scan over {n_rows} rows",
        invocations=(
            OpInvocation("gt", QUANTITY_BITS, n_rows),
            OpInvocation("if_else", PRICE_BITS, n_rows),
            OpInvocation("add", PRICE_BITS, n_rows),
        ),
        transposed_bits=n_rows * (QUANTITY_BITS + PRICE_BITS),
        host_bytes=n_rows * 2,  # masked partials read back for final sum
    )


@dataclass(frozen=True)
class LineitemTable:
    """A synthetic columnar table with TPC-H-like columns."""

    quantity: np.ndarray  # uint8
    price: np.ndarray     # uint16 (scaled extended price)

    @classmethod
    def synthetic(cls, n_rows: int, seed: int = 0) -> "LineitemTable":
        rng = np.random.default_rng(seed)
        return cls(
            quantity=rng.integers(1, 51, n_rows).astype(np.int64),
            price=rng.integers(100, 20_000, n_rows).astype(np.int64),
        )


def filtered_sum_simdram(sim: Simdram, table: LineitemTable,
                         quantity_below: int) -> int:
    """``SELECT SUM(price) WHERE quantity < quantity_below`` via SIMDRAM.

    The predicate and masking run as µPrograms; the final cross-lane sum
    is a host reduction over the masked column (as in the paper, where
    cross-lane reductions are host work).
    """
    n = len(table.quantity)
    quantity = sim.array(table.quantity, QUANTITY_BITS)
    threshold = sim.array(np.full(n, quantity_below, dtype=np.int64),
                          QUANTITY_BITS)
    selected = sim.run("gt", threshold, quantity)  # threshold > quantity

    price = sim.array(table.price, PRICE_BITS)
    zero = sim.array(np.zeros(n, dtype=np.int64), PRICE_BITS)
    masked = sim.run("if_else", selected, price, zero)

    partials = masked.to_numpy()
    for arr in (quantity, threshold, selected, price, zero, masked):
        arr.free()
    return int(partials.sum())


def filtered_sum_golden(table: LineitemTable, quantity_below: int) -> int:
    """Reference host implementation for tests."""
    mask = table.quantity < quantity_below
    return int(table.price[mask].sum())
