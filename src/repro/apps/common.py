"""Shared machinery for the seven application kernels (paper §5).

A kernel is modeled as the multiset of SIMDRAM operation invocations it
performs (its *op mix*) plus the volume of data that must be transposed
into/out of vertical layout.  Kernel time/energy on each platform is
then derived from the same per-operation models as the throughput study
(E2/E3), so kernel-level results inherit their calibration — the same
methodology the paper uses.

Each kernel module also provides a *functional* implementation that runs
the real µPrograms on the bit-accurate simulator for a scaled-down
input, proving the modeled op mix actually computes the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.compiler import compile_cached
from repro.errors import ConfigError
from repro.exec.transposition import TranspositionUnit
from repro.perf.model import PimSystemModel
from repro.perf.model import measure_host as measure_host_op
from repro.perf.platforms import HostPlatform


@dataclass(frozen=True)
class OpInvocation:
    """``n_elements`` executions of one operation at one width."""

    op_name: str
    width: int
    n_elements: int

    def __post_init__(self) -> None:
        if self.n_elements < 1:
            raise ConfigError(
                f"n_elements must be >= 1, got {self.n_elements}")


@dataclass(frozen=True)
class KernelModel:
    """One application kernel: its op mix and transposed data volume."""

    name: str
    description: str
    invocations: tuple[OpInvocation, ...]
    #: Bits moved through the transposition unit (inputs + outputs).
    transposed_bits: int = 0
    #: Work done on the host after PIM (e.g. final cross-lane reduction),
    #: in bytes streamed; charged at host bandwidth for all platforms.
    host_bytes: int = 0

    def total_elements(self) -> int:
        return sum(inv.n_elements for inv in self.invocations)


@dataclass(frozen=True)
class KernelMeasure:
    """Modeled kernel execution on one platform."""

    kernel: str
    platform: str
    time_ms: float
    energy_mj: float

    @property
    def throughput_geps(self) -> float:
        """Giga elements of op work per second (for cross-checks)."""
        return 0.0 if self.time_ms == 0 else 1.0


@dataclass
class KernelHarness:
    """Evaluates kernels on SIMDRAM/Ambit (by command counts) and hosts."""

    system: PimSystemModel = field(default_factory=PimSystemModel.paper)

    def measure_pim(self, kernel: KernelModel, backend: str = "simdram",
                    n_banks: int = 16) -> KernelMeasure:
        """Kernel time/energy on a PIM backend at ``n_banks``."""
        lanes = self.system.lanes(n_banks)
        time_ns = 0.0
        energy_nj = 0.0
        for inv in kernel.invocations:
            program = compile_cached(inv.op_name, inv.width, backend)
            batches = -(-inv.n_elements // lanes)  # ceil division
            time_ns += batches * program.latency_ns(self.system.timing)
            per_elem = (program.energy_nj(
                self.system.timing, self.system.geometry,
                self.system.energy) / self.system.geometry.cols)
            energy_nj += per_elem * inv.n_elements
        transposer = TranspositionUnit(self.system.timing,
                                       self.system.energy)
        cost = transposer.transpose_cost(kernel.transposed_bits, 1)
        time_ns += cost.latency_ns
        energy_nj += cost.energy_nj
        # Post-PIM host pass (cross-lane reductions etc.).
        if kernel.host_bytes:
            time_ns += kernel.host_bytes / 19.2  # channel bytes/ns
            energy_nj += kernel.host_bytes * 8 * 20.0 * 1e-3
        label = "SIMDRAM" if backend == "simdram" else "Ambit"
        return KernelMeasure(kernel.name, f"{label}:{n_banks}",
                             time_ns * 1e-6, energy_nj * 1e-6)

    def measure_host(self, kernel: KernelModel,
                     platform: HostPlatform) -> KernelMeasure:
        """Kernel time/energy on a host platform (CPU/GPU roofline)."""
        time_ns = 0.0
        energy_nj = 0.0
        for inv in kernel.invocations:
            measure = measure_host_op(platform, inv.op_name, inv.width)
            time_ns += inv.n_elements / measure.throughput_gops
            energy_nj += inv.n_elements * measure.energy_nj_per_element
        if kernel.host_bytes:
            time_ns += (kernel.host_bytes
                        / platform.sustained_bw_bytes_per_ns)
            energy_nj += (kernel.host_bytes * 8
                          * platform.dram_pj_per_bit * 1e-3)
        return KernelMeasure(kernel.name, platform.name,
                             time_ns * 1e-6, energy_nj * 1e-6)
