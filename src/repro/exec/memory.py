"""Vertical-layout memory management for compute subarrays.

SIMDRAM stores PIM operands *vertically*: an ``n``-bit vector element
occupies one column across ``n`` consecutive rows, so a vector of up to
``cols`` elements is an ``n``-row *block*.  :class:`VerticalAllocator`
hands out non-overlapping row blocks inside a subarray's D-group, which
is how the framework lays out operation inputs, outputs and the
compiler's temporary region before building a :class:`RowLayout`.

The allocator is also the pressure point of the runtime's paging layer
(:mod:`repro.runtime.paging`): when no contiguous extent can satisfy a
request, :meth:`VerticalAllocator.alloc` invokes the installed
``reclaim`` hook, which may evict cold device-resident shards to host
memory and return ``True`` to retry.  Long-lived sessions therefore
churn this allocator hard, which is why :meth:`free` coalesces adjacent
extents with a bisect insert-merge instead of re-sorting the whole free
list on every release.
"""

from __future__ import annotations

import bisect
import contextlib
from dataclasses import dataclass
from typing import Callable

from repro.dram.geometry import DramGeometry
from repro.errors import AllocationError


@dataclass(frozen=True)
class RowBlock:
    """A block of ``width`` consecutive D-group rows starting at ``base``."""

    base: int
    width: int

    @property
    def end(self) -> int:
        return self.base + self.width


class VerticalAllocator:
    """First-fit allocator over a subarray's D-group rows.

    ``reclaim`` (optional, installable after construction through
    :meth:`set_reclaim`) is called as ``reclaim(width)`` when no free
    extent can hold ``width`` rows; it should release rows (e.g. by
    spilling cold shards) and return whether it made progress.  ``alloc``
    retries after every successful reclaim and only raises once the hook
    is exhausted.
    """

    def __init__(self, geometry: DramGeometry,
                 reclaim: Callable[[int], bool] | None = None) -> None:
        self.geometry = geometry
        self._free: list[tuple[int, int]] = [(0, geometry.data_rows)]
        self._allocated: dict[int, RowBlock] = {}
        self._reclaim = reclaim

    def set_reclaim(self, reclaim: Callable[[int], bool] | None) -> None:
        """Install (or clear) the memory-pressure hook."""
        self._reclaim = reclaim

    def alloc(self, width: int) -> RowBlock:
        """Allocate ``width`` consecutive rows; first fit.

        Under pressure the installed ``reclaim`` hook is invoked until
        either an extent opens up or the hook reports no progress.
        """
        if width < 1:
            raise AllocationError(f"block width must be >= 1, got {width}")
        while True:
            block = self._try_alloc(width)
            if block is not None:
                return block
            if self._reclaim is None or not self._reclaim(width):
                raise AllocationError(
                    f"cannot allocate {width} rows: "
                    f"{self.free_rows()} free (fragmented into "
                    f"{len(self._free)} extents)")

    def _try_alloc(self, width: int) -> RowBlock | None:
        for i, (base, size) in enumerate(self._free):
            if size >= width:
                block = RowBlock(base, width)
                remaining = size - width
                if remaining:
                    self._free[i] = (base + width, remaining)
                else:
                    del self._free[i]
                self._allocated[block.base] = block
                return block
        return None

    def free(self, block: RowBlock) -> None:
        """Return a block to the free list (coalescing neighbours).

        The free list is kept sorted by base, so the released extent is
        bisect-inserted and merged with at most two neighbours — O(log n)
        search plus one splice, instead of re-sorting the entire list.
        Adjacent free extents therefore never coexist, and a workload
        that frees what it allocated always recovers contiguity.
        """
        stored = self._allocated.pop(block.base, None)
        if stored != block:
            raise AllocationError(f"block {block} is not allocated")
        i = bisect.bisect_left(self._free, (block.base, block.width))
        start, size = block.base, block.width
        merge_lo = i > 0 and sum(self._free[i - 1]) == start
        merge_hi = (i < len(self._free)
                    and self._free[i][0] == start + size)
        if merge_lo:
            start = self._free[i - 1][0]
            size += self._free[i - 1][1]
        if merge_hi:
            size += self._free[i][1]
        lo = i - 1 if merge_lo else i
        hi = i + 1 if merge_hi else i
        self._free[lo:hi] = [(start, size)]

    @contextlib.contextmanager
    def reserve(self, width: int):
        """Allocate ``width`` rows for the duration of a ``with`` block.

        The block is freed on exit *even when the body raises*, which is
        how the framework guarantees failed executions never leak
        scratch rows (temporaries have no owner that could free them
        later).
        """
        block = self.alloc(width)
        try:
            yield block
        finally:
            self.free(block)

    def free_rows(self) -> int:
        """Total unallocated rows."""
        return sum(size for _, size in self._free)

    def largest_free(self) -> int:
        """Largest contiguous free extent (0 when fully allocated)."""
        return max((size for _, size in self._free), default=0)

    @property
    def free_extents(self) -> list[tuple[int, int]]:
        """Sorted ``(base, size)`` free extents (read-only snapshot)."""
        return list(self._free)

    @property
    def allocated_blocks(self) -> list[RowBlock]:
        return sorted(self._allocated.values(), key=lambda b: b.base)
