"""Vertical-layout memory management for compute subarrays.

SIMDRAM stores PIM operands *vertically*: an ``n``-bit vector element
occupies one column across ``n`` consecutive rows, so a vector of up to
``cols`` elements is an ``n``-row *block*.  :class:`VerticalAllocator`
hands out non-overlapping row blocks inside a subarray's D-group, which
is how the framework lays out operation inputs, outputs and the
compiler's temporary region before building a :class:`RowLayout`.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

from repro.dram.geometry import DramGeometry
from repro.errors import AllocationError


@dataclass(frozen=True)
class RowBlock:
    """A block of ``width`` consecutive D-group rows starting at ``base``."""

    base: int
    width: int

    @property
    def end(self) -> int:
        return self.base + self.width


class VerticalAllocator:
    """First-fit allocator over a subarray's D-group rows."""

    def __init__(self, geometry: DramGeometry) -> None:
        self.geometry = geometry
        self._free: list[tuple[int, int]] = [(0, geometry.data_rows)]
        self._allocated: dict[int, RowBlock] = {}

    def alloc(self, width: int) -> RowBlock:
        """Allocate ``width`` consecutive rows; first fit."""
        if width < 1:
            raise AllocationError(f"block width must be >= 1, got {width}")
        for i, (base, size) in enumerate(self._free):
            if size >= width:
                block = RowBlock(base, width)
                remaining = size - width
                if remaining:
                    self._free[i] = (base + width, remaining)
                else:
                    del self._free[i]
                self._allocated[block.base] = block
                return block
        raise AllocationError(
            f"cannot allocate {width} rows: "
            f"{self.free_rows()} free (fragmented into "
            f"{len(self._free)} extents)")

    def free(self, block: RowBlock) -> None:
        """Return a block to the free list (coalescing neighbours)."""
        stored = self._allocated.pop(block.base, None)
        if stored != block:
            raise AllocationError(f"block {block} is not allocated")
        extents = sorted(self._free + [(block.base, block.width)])
        merged: list[tuple[int, int]] = []
        for base, size in extents:
            if merged and merged[-1][0] + merged[-1][1] == base:
                merged[-1] = (merged[-1][0], merged[-1][1] + size)
            else:
                merged.append((base, size))
        self._free = merged

    @contextlib.contextmanager
    def reserve(self, width: int):
        """Allocate ``width`` rows for the duration of a ``with`` block.

        The block is freed on exit *even when the body raises*, which is
        how the framework guarantees failed executions never leak
        scratch rows (temporaries have no owner that could free them
        later).
        """
        block = self.alloc(width)
        try:
            yield block
        finally:
            self.free(block)

    def free_rows(self) -> int:
        """Total unallocated rows."""
        return sum(size for _, size in self._free)

    @property
    def allocated_blocks(self) -> list[RowBlock]:
        return sorted(self._allocated.values(), key=lambda b: b.base)
