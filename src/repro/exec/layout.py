"""Binding symbolic µProgram spaces to concrete subarray rows.

A µProgram references operands symbolically (:class:`~repro.uprog.uops.Space`);
the ``bbop`` instruction supplies concrete base rows at execution time.
:class:`RowLayout` is that binding, plus the overlap/capacity checks the
control unit performs before replaying a µProgram.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.geometry import DramGeometry
from repro.dram.rows import RowAddress, b_row, ctrl_row, data_row
from repro.errors import AllocationError
from repro.uprog.program import MicroProgram
from repro.uprog.uops import Space, URow


@dataclass(frozen=True)
class RowLayout:
    """Concrete D-group base rows for each operand space of a µProgram."""

    bases: dict[Space, int]

    def base(self, space: Space) -> int:
        try:
            return self.bases[space]
        except KeyError:
            raise AllocationError(
                f"layout does not bind space {space}") from None

    def cache_key(self) -> tuple:
        """Hashable identity of this binding, for execution-plan caches.

        Two layouts with equal keys resolve every symbolic row to the
        same address, so a plan compiled under one is valid under the
        other.  (``bases`` is a dict, so the dataclass itself is not
        hashable.)
        """
        return tuple(sorted((space.value, base)
                            for space, base in self.bases.items()))

    def resolve(self, row: URow) -> RowAddress:
        """Translate a symbolic µProgram row into a subarray address."""
        if row.space is Space.CTRL:
            return ctrl_row(row.index)
        if row.space is Space.BGROUP:
            return b_row(row.index)
        return data_row(self.base(row.space) + row.index)

    def check(self, program: MicroProgram, geometry: DramGeometry) -> None:
        """Verify the program's operand regions fit, and that regions the
        program *writes* (output, temporaries) are disjoint from everything
        else.  Input regions may alias each other — using one vector as
        both sources of a binary operation is legal (reads only)."""
        inputs: list[tuple[str, int, int]] = []
        for spec in program.inputs:
            inputs.append((spec.space.value, self.base(spec.space),
                           spec.width))
        writes = [(Space.OUTPUT.value, self.base(Space.OUTPUT),
                   program.output.width)]
        if program.n_temp_rows:
            writes.append((Space.TEMP.value, self.base(Space.TEMP),
                           program.n_temp_rows))
        for name, base, width in inputs + writes:
            if base < 0 or base + width > geometry.data_rows:
                raise AllocationError(
                    f"operand region {name} [{base}, {base + width}) does "
                    f"not fit in {geometry.data_rows} data rows")
        for name_w, base_w, width_w in writes:
            for name_o, base_o, width_o in inputs + writes:
                if name_o == name_w:
                    continue
                if base_w < base_o + width_o and base_o < base_w + width_w:
                    raise AllocationError(
                        f"writable region {name_w} overlaps {name_o}")
