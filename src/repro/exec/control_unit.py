"""The SIMDRAM control unit (Step 3 of the framework).

The control unit lives in the memory controller.  It holds the µProgram
scratchpad (programs are installed once, at boot in the paper), and on
every ``bbop`` instruction it replays the matching µProgram as a stream
of AAP/AP commands to the participating banks, transparently to the
user (paper §3, step 3).

Replay goes through the engine registry
(:mod:`repro.exec.engines`): plan-based engines (``vectorized``,
``compiled``, ``compiled-numba``) compile the µProgram + row layout
into an :class:`~repro.exec.plan.ExecutionPlan` (cached here) and run
an executor over the module's stacked cell state, all banks at once —
the paper's lockstep broadcast.  The ``per_bank`` engine replays the
symbolic µOps bank by bank through each :class:`Subarray` — the traced
/ fault-injection slow path, bit-identical to the fast paths on
success.  ``"auto"`` resolves per dispatch: the best available
plan-based engine when the module supports stacked execution, else
``per_bank``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.dram.bank import DramModule
from repro.dram.commands import CommandStats
from repro.dram.energy import DramEnergy
from repro.dram.subarray import Subarray
from repro.dram.timing import DramTiming
from repro.errors import EngineError, ExecutionError
from repro.exec.engines import ExecutionEngine, get_engine, resolve_engine
from repro.exec.layout import RowLayout
from repro.exec.plan import ExecutionPlan, compile_plan
from repro.obs.pmu import get_pmu
from repro.uprog.program import MicroProgram
from repro.uprog.uops import UAap, UAp

#: Reference timing/energy model for the PMU's latency/nJ samples —
#: fixed (DDR4-2400) so counters stay comparable across dispatch
#: paths that carry no timing config of their own.
_PMU_TIMING = DramTiming.ddr4_2400()
_PMU_ENERGY = DramEnergy.ddr4()

#: Default scratchpad capacity in µOps.  The paper stores each operation's
#: µProgram in a small memory inside the controller; we size it generously
#: because our µPrograms are fully unrolled (no loop registers).
DEFAULT_SCRATCHPAD_UOPS = 1 << 20

#: Execution-plan cache entries kept per control unit (LRU).  A plan is
#: (program, layout, geometry)-specific; steady-state workloads reuse a
#: handful of layouts, so a small bound suffices.
DEFAULT_PLAN_CACHE_SIZE = 256


@dataclass(frozen=True)
class ProgramKey:
    """Identity of an installed µProgram."""

    op_name: str
    element_width: int
    backend: str


class ControlUnit:
    """Holds installed µPrograms and replays them on DRAM banks."""

    def __init__(self, scratchpad_uops: int = DEFAULT_SCRATCHPAD_UOPS,
                 plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE) -> None:
        self.scratchpad_uops = scratchpad_uops
        self.plan_cache_size = plan_cache_size
        self._programs: dict[ProgramKey, MicroProgram] = {}
        self._plan_cache: OrderedDict[tuple, ExecutionPlan] = OrderedDict()
        # The runtime's async scheduler may install programs from the
        # submitting thread while a module worker replays others; the
        # scratchpad and plan cache are the only shared mutable state.
        self._lock = threading.Lock()
        #: Plan-cache observability (tests, benchmarks).
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0

    # ------------------------------------------------------------------
    # µProgram installation
    # ------------------------------------------------------------------
    def install(self, program: MicroProgram) -> ProgramKey:
        """Install a µProgram into the scratchpad (checks capacity)."""
        key = ProgramKey(program.op_name, program.element_width,
                         program.backend)
        with self._lock:
            used = self.used_uops()
            existing = self._programs.get(key)
            if existing is not None:  # reinstalling replaces the old copy
                used -= len(existing.uops)
            if used + len(program.uops) > self.scratchpad_uops:
                raise ExecutionError(
                    f"µProgram scratchpad overflow: {used} + "
                    f"{len(program.uops)} µOps > {self.scratchpad_uops}")
            self._programs[key] = program
        return key

    def used_uops(self) -> int:
        """Total µOps currently installed."""
        return sum(len(p.uops) for p in self._programs.values())

    def lookup(self, key: ProgramKey) -> MicroProgram:
        program = self._programs.get(key)
        if program is None:
            raise ExecutionError(f"no µProgram installed for {key}")
        return program

    @property
    def installed(self) -> list[ProgramKey]:
        return list(self._programs)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, program: MicroProgram, subarray: Subarray,
                layout: RowLayout) -> CommandStats:
        """Replay a µProgram on one subarray; returns the command stats."""
        layout.check(program, subarray.geometry)
        before = CommandStats().merged_with(subarray.stats)
        for uop in program.uops:
            if isinstance(uop, UAp):
                subarray.ap(layout.resolve(uop.addr))
            elif isinstance(uop, UAap):
                subarray.aap(layout.resolve(uop.src),
                             layout.resolve(uop.dst))
            else:
                raise ExecutionError(f"unknown µOp {uop!r}")
        after = subarray.stats
        return CommandStats(
            n_ap=after.n_ap - before.n_ap,
            n_aap=after.n_aap - before.n_aap,
            ap_wordlines=after.ap_wordlines - before.ap_wordlines,
            aap_src_wordlines=(after.aap_src_wordlines
                               - before.aap_src_wordlines),
            aap_dst_wordlines=(after.aap_dst_wordlines
                               - before.aap_dst_wordlines),
        )

    def plan_for(self, program: MicroProgram, layout: RowLayout,
                 geometry) -> ExecutionPlan:
        """Fetch (or compile and cache) the execution plan for
        ``program`` bound to ``layout`` under ``geometry``."""
        key = (ProgramKey(program.op_name, program.element_width,
                          program.backend),
               program.fingerprint(), layout.cache_key(), geometry)
        with self._lock:
            plan = self._plan_cache.get(key)
            if plan is not None:
                self._plan_cache.move_to_end(key)
                self.plan_cache_hits += 1
                return plan
            self.plan_cache_misses += 1
        plan = compile_plan(program, layout, geometry)
        with self._lock:
            self._plan_cache[key] = plan
            while len(self._plan_cache) > self.plan_cache_size:
                self._plan_cache.popitem(last=False)
        return plan

    def compiled_cache_size(self) -> int:
        """Number of compiled executors memoized on cached plans."""
        with self._lock:
            return sum(len(plan.executors)
                       for plan in self._plan_cache.values())

    def executor_for(self, plan: ExecutionPlan,
                     engine: ExecutionEngine):
        """Fetch (or compile and memoize) ``engine``'s executor for a
        cached plan.  Compilation happens under the control unit's lock
        so scheduler worker threads replaying the same plan never
        duplicate codegen work."""
        executor = plan.executors.get(engine.name)
        if executor is not None:
            return executor
        with self._lock:
            return plan.executor_for(engine)

    def warm_plan(self, program: MicroProgram, layout: RowLayout,
                  geometry, engine: "str | ExecutionEngine" = "auto",
                  ) -> ExecutionPlan:
        """Precompile the plan — and, for plan-based engines, the
        compiled executor — without touching DRAM state.  The serve
        layer's manifest warmup uses this so the first real dispatch
        hits a fully warm cache."""
        plan = self.plan_for(program, layout, geometry)
        resolved = resolve_engine(engine, vectorizable=True)
        if resolved.executes_plans:
            self.executor_for(plan, resolved)
        return plan

    def execute_on_module(self, program: MicroProgram, module: DramModule,
                          layout: RowLayout,
                          n_banks: int | None = None,
                          engine: "str | ExecutionEngine" = "auto",
                          ) -> CommandStats:
        """Broadcast a µProgram to ``n_banks`` banks in lockstep.

        ``engine`` is a registry name or :class:`ExecutionEngine`
        instance.  Plan-based engines (``vectorized``, ``compiled``,
        ``compiled-numba``) run a compiled :class:`ExecutionPlan` over
        the stacked cell state of all participating banks at once;
        ``per_bank`` replays the µOps through each subarray in turn;
        ``"auto"`` (default) picks the best available plan-based
        engine whenever it is equivalent — i.e. no selected bank
        traces commands or injects TRA faults — and silently falls
        back to ``per_bank`` otherwise.  Explicitly requesting a
        ``vectorizable_only`` engine on a module that cannot run the
        stacked path raises :class:`~repro.errors.EngineError`.
        """
        resolved = get_engine(engine)  # fail fast on unknown names
        banks = module.banks if n_banks is None else module.banks[:n_banks]
        if not banks:
            raise ExecutionError("no banks selected for execution")

        vectorizable = module.supports_vectorized(len(banks))
        if resolved.vectorizable_only and not vectorizable:
            raise EngineError(
                f"engine {resolved.name!r} requested, but a selected "
                "bank is traced, fault-injected, or detached from the "
                "module's stacked state; use engine='per_bank' (or "
                "'auto', which falls back silently)")
        resolved = resolve_engine(resolved, vectorizable=vectorizable)
        if not resolved.executes_plans:
            stats = CommandStats()
            first = None
            for bank in banks:
                delta = self.execute(program, bank.subarray, layout)
                if first is None:
                    first = delta
                stats = stats.merged_with(delta)
            self._note_dispatch(module, len(banks), first, program)
            return stats

        plan = self.plan_for(program, layout, module.geometry)
        executor = self.executor_for(plan, resolved)
        data, b_planes = module.vector_state(len(banks))
        executor(data, b_planes)
        # Fold the per-bank stats into each bank so every engine
        # leaves identical accounting state.
        for bank in banks:
            bank.subarray.stats.accumulate(plan.per_bank_stats)
        self._note_dispatch(module, len(banks), plan.per_bank_stats,
                            program)
        return plan.per_bank_stats.scaled(len(banks))

    @staticmethod
    def _note_dispatch(module: DramModule, n_banks: int,
                       per_bank: "CommandStats | None",
                       program: MicroProgram) -> None:
        """Device-PMU dispatch sample: banks run in lockstep, so one
        bank's delta describes every participant."""
        pmu_id = getattr(module, "pmu_id", None)
        if pmu_id is None or per_bank is None:
            return
        get_pmu().record_dispatch(
            pmu_id, n_banks, per_bank,
            kernel=f"{program.op_name}@{program.element_width}",
            latency_ns=per_bank.latency_ns(_PMU_TIMING),
            energy_nj=n_banks * per_bank.energy_nj(
                _PMU_TIMING, module.geometry, _PMU_ENERGY))
