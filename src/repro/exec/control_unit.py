"""The SIMDRAM control unit (Step 3 of the framework).

The control unit lives in the memory controller.  It holds the µProgram
scratchpad (programs are installed once, at boot in the paper), and on
every ``bbop`` instruction it replays the matching µProgram as a stream
of AAP/AP commands to the participating banks, transparently to the
user (paper §3, step 3).

Replay has two equivalent engines:

* the **vectorized** engine compiles the µProgram + row layout into an
  :class:`~repro.exec.plan.ExecutionPlan` (cached) and executes it over
  the module's stacked cell state, all banks at once — the default, and
  the one that actually behaves like the paper's lockstep broadcast;
* the **per-bank** engine replays the symbolic µOps bank by bank
  through each :class:`Subarray` — the traced / fault-injection slow
  path, bit-identical to the fast path on success.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.dram.bank import DramModule
from repro.dram.commands import CommandStats
from repro.dram.subarray import Subarray
from repro.errors import ExecutionError
from repro.exec.layout import RowLayout
from repro.exec.plan import ExecutionPlan, compile_plan
from repro.uprog.program import MicroProgram
from repro.uprog.uops import UAap, UAp

#: Default scratchpad capacity in µOps.  The paper stores each operation's
#: µProgram in a small memory inside the controller; we size it generously
#: because our µPrograms are fully unrolled (no loop registers).
DEFAULT_SCRATCHPAD_UOPS = 1 << 20

#: Execution-plan cache entries kept per control unit (LRU).  A plan is
#: (program, layout, geometry)-specific; steady-state workloads reuse a
#: handful of layouts, so a small bound suffices.
DEFAULT_PLAN_CACHE_SIZE = 256


@dataclass(frozen=True)
class ProgramKey:
    """Identity of an installed µProgram."""

    op_name: str
    element_width: int
    backend: str


class ControlUnit:
    """Holds installed µPrograms and replays them on DRAM banks."""

    def __init__(self, scratchpad_uops: int = DEFAULT_SCRATCHPAD_UOPS,
                 plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE) -> None:
        self.scratchpad_uops = scratchpad_uops
        self.plan_cache_size = plan_cache_size
        self._programs: dict[ProgramKey, MicroProgram] = {}
        self._plan_cache: OrderedDict[tuple, ExecutionPlan] = OrderedDict()
        # The runtime's async scheduler may install programs from the
        # submitting thread while a module worker replays others; the
        # scratchpad and plan cache are the only shared mutable state.
        self._lock = threading.Lock()
        #: Plan-cache observability (tests, benchmarks).
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0

    # ------------------------------------------------------------------
    # µProgram installation
    # ------------------------------------------------------------------
    def install(self, program: MicroProgram) -> ProgramKey:
        """Install a µProgram into the scratchpad (checks capacity)."""
        key = ProgramKey(program.op_name, program.element_width,
                         program.backend)
        with self._lock:
            used = self.used_uops()
            existing = self._programs.get(key)
            if existing is not None:  # reinstalling replaces the old copy
                used -= len(existing.uops)
            if used + len(program.uops) > self.scratchpad_uops:
                raise ExecutionError(
                    f"µProgram scratchpad overflow: {used} + "
                    f"{len(program.uops)} µOps > {self.scratchpad_uops}")
            self._programs[key] = program
        return key

    def used_uops(self) -> int:
        """Total µOps currently installed."""
        return sum(len(p.uops) for p in self._programs.values())

    def lookup(self, key: ProgramKey) -> MicroProgram:
        program = self._programs.get(key)
        if program is None:
            raise ExecutionError(f"no µProgram installed for {key}")
        return program

    @property
    def installed(self) -> list[ProgramKey]:
        return list(self._programs)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, program: MicroProgram, subarray: Subarray,
                layout: RowLayout) -> CommandStats:
        """Replay a µProgram on one subarray; returns the command stats."""
        layout.check(program, subarray.geometry)
        before = CommandStats().merged_with(subarray.stats)
        for uop in program.uops:
            if isinstance(uop, UAp):
                subarray.ap(layout.resolve(uop.addr))
            elif isinstance(uop, UAap):
                subarray.aap(layout.resolve(uop.src),
                             layout.resolve(uop.dst))
            else:
                raise ExecutionError(f"unknown µOp {uop!r}")
        after = subarray.stats
        return CommandStats(
            n_ap=after.n_ap - before.n_ap,
            n_aap=after.n_aap - before.n_aap,
            ap_wordlines=after.ap_wordlines - before.ap_wordlines,
            aap_src_wordlines=(after.aap_src_wordlines
                               - before.aap_src_wordlines),
            aap_dst_wordlines=(after.aap_dst_wordlines
                               - before.aap_dst_wordlines),
        )

    def plan_for(self, program: MicroProgram, layout: RowLayout,
                 geometry) -> ExecutionPlan:
        """Fetch (or compile and cache) the execution plan for
        ``program`` bound to ``layout`` under ``geometry``."""
        key = (ProgramKey(program.op_name, program.element_width,
                          program.backend),
               program.fingerprint(), layout.cache_key(), geometry)
        with self._lock:
            plan = self._plan_cache.get(key)
            if plan is not None:
                self._plan_cache.move_to_end(key)
                self.plan_cache_hits += 1
                return plan
            self.plan_cache_misses += 1
        plan = compile_plan(program, layout, geometry)
        with self._lock:
            self._plan_cache[key] = plan
            while len(self._plan_cache) > self.plan_cache_size:
                self._plan_cache.popitem(last=False)
        return plan

    def execute_on_module(self, program: MicroProgram, module: DramModule,
                          layout: RowLayout,
                          n_banks: int | None = None,
                          engine: str = "auto") -> CommandStats:
        """Broadcast a µProgram to ``n_banks`` banks in lockstep.

        ``engine`` selects the replay path: ``"vectorized"`` executes a
        compiled :class:`ExecutionPlan` over the stacked cell state of
        all participating banks at once, ``"per_bank"`` replays the
        µOps through each subarray in turn, and ``"auto"`` (default)
        picks the vectorized engine whenever it is equivalent — i.e.
        no selected bank traces commands or injects TRA faults.
        """
        if engine not in ("auto", "vectorized", "per_bank"):
            raise ExecutionError(
                f"unknown engine {engine!r}; "
                "expected 'auto', 'vectorized' or 'per_bank'")
        banks = module.banks if n_banks is None else module.banks[:n_banks]
        if not banks:
            raise ExecutionError("no banks selected for execution")

        vectorizable = module.supports_vectorized(len(banks))
        if engine == "vectorized" and not vectorizable:
            raise ExecutionError(
                "vectorized engine requested, but a selected bank is "
                "traced, fault-injected, or detached from the module's "
                "stacked state; use engine='per_bank' (or 'auto')")
        if engine == "per_bank" or not vectorizable:
            stats = CommandStats()
            for bank in banks:
                stats = stats.merged_with(
                    self.execute(program, bank.subarray, layout))
            return stats

        plan = self.plan_for(program, layout, module.geometry)
        data, b_planes = module.vector_state(len(banks))
        plan.execute(data, b_planes)
        # Fold the per-bank stats into each bank so the two engines
        # leave identical accounting state.
        for bank in banks:
            bank.subarray.stats.accumulate(plan.per_bank_stats)
        return plan.per_bank_stats.scaled(len(banks))
