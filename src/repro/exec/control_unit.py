"""The SIMDRAM control unit (Step 3 of the framework).

The control unit lives in the memory controller.  It holds the µProgram
scratchpad (programs are installed once, at boot in the paper), and on
every ``bbop`` instruction it replays the matching µProgram as a stream
of AAP/AP commands to the participating banks, transparently to the
user (paper §3, step 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.bank import DramModule
from repro.dram.commands import CommandStats
from repro.dram.subarray import Subarray
from repro.errors import ExecutionError
from repro.exec.layout import RowLayout
from repro.uprog.program import MicroProgram
from repro.uprog.uops import UAap, UAp

#: Default scratchpad capacity in µOps.  The paper stores each operation's
#: µProgram in a small memory inside the controller; we size it generously
#: because our µPrograms are fully unrolled (no loop registers).
DEFAULT_SCRATCHPAD_UOPS = 1 << 20


@dataclass(frozen=True)
class ProgramKey:
    """Identity of an installed µProgram."""

    op_name: str
    element_width: int
    backend: str


class ControlUnit:
    """Holds installed µPrograms and replays them on DRAM banks."""

    def __init__(self, scratchpad_uops: int = DEFAULT_SCRATCHPAD_UOPS) -> None:
        self.scratchpad_uops = scratchpad_uops
        self._programs: dict[ProgramKey, MicroProgram] = {}

    # ------------------------------------------------------------------
    # µProgram installation
    # ------------------------------------------------------------------
    def install(self, program: MicroProgram) -> ProgramKey:
        """Install a µProgram into the scratchpad (checks capacity)."""
        key = ProgramKey(program.op_name, program.element_width,
                         program.backend)
        used = self.used_uops()
        existing = self._programs.get(key)
        if existing is not None:  # reinstalling replaces the old copy
            used -= len(existing.uops)
        if used + len(program.uops) > self.scratchpad_uops:
            raise ExecutionError(
                f"µProgram scratchpad overflow: {used} + "
                f"{len(program.uops)} µOps > {self.scratchpad_uops}")
        self._programs[key] = program
        return key

    def used_uops(self) -> int:
        """Total µOps currently installed."""
        return sum(len(p.uops) for p in self._programs.values())

    def lookup(self, key: ProgramKey) -> MicroProgram:
        program = self._programs.get(key)
        if program is None:
            raise ExecutionError(f"no µProgram installed for {key}")
        return program

    @property
    def installed(self) -> list[ProgramKey]:
        return list(self._programs)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, program: MicroProgram, subarray: Subarray,
                layout: RowLayout) -> CommandStats:
        """Replay a µProgram on one subarray; returns the command stats."""
        layout.check(program, subarray.geometry)
        before = CommandStats().merged_with(subarray.stats)
        for uop in program.uops:
            if isinstance(uop, UAp):
                subarray.ap(layout.resolve(uop.addr))
            elif isinstance(uop, UAap):
                subarray.aap(layout.resolve(uop.src),
                             layout.resolve(uop.dst))
            else:
                raise ExecutionError(f"unknown µOp {uop!r}")
        after = subarray.stats
        return CommandStats(
            n_ap=after.n_ap - before.n_ap,
            n_aap=after.n_aap - before.n_aap,
            ap_wordlines=after.ap_wordlines - before.ap_wordlines,
            aap_src_wordlines=(after.aap_src_wordlines
                               - before.aap_src_wordlines),
            aap_dst_wordlines=(after.aap_dst_wordlines
                               - before.aap_dst_wordlines),
        )

    def execute_on_module(self, program: MicroProgram, module: DramModule,
                          layout: RowLayout,
                          n_banks: int | None = None) -> CommandStats:
        """Broadcast a µProgram to ``n_banks`` banks in lockstep."""
        banks = module.banks if n_banks is None else module.banks[:n_banks]
        if not banks:
            raise ExecutionError("no banks selected for execution")
        stats = CommandStats()
        for bank in banks:
            stats = stats.merged_with(
                self.execute(program, bank.subarray, layout))
        return stats
