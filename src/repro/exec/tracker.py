"""Object tracking for the transposition unit (paper §4).

The ``bbop_trsp_init`` instruction announces that a memory object will
be accessed in vertical layout; the transposition unit keeps a small
table of such objects so it can transpose cache lines on the fly when
the CPU touches them, while everything else stays horizontal.  This
module is that table: the framework registers every vertical array here
and the control unit refuses to operate on untracked base rows, which
catches stale or mistyped operand addresses at dispatch time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllocationError, OperationError


@dataclass(frozen=True)
class TrackedObject:
    """One vertically laid-out object known to the transposition unit."""

    base_row: int
    n_elements: int
    width: int

    @property
    def rows(self) -> range:
        return range(self.base_row, self.base_row + self.width)


class ObjectTracker:
    """The transposition unit's vertical-object table."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise OperationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._objects: dict[int, TrackedObject] = {}

    def register(self, base_row: int, n_elements: int,
                 width: int) -> TrackedObject:
        """Track a new vertical object (a ``bbop_trsp_init``)."""
        if base_row in self._objects:
            raise AllocationError(
                f"row {base_row} already tracks a vertical object")
        if len(self._objects) >= self.capacity:
            raise AllocationError(
                f"transposition unit object table full "
                f"({self.capacity} entries)")
        obj = TrackedObject(base_row, n_elements, width)
        self._objects[base_row] = obj
        return obj

    def lookup(self, base_row: int) -> TrackedObject:
        """Fetch the object at ``base_row``; raises when untracked."""
        obj = self._objects.get(base_row)
        if obj is None:
            raise OperationError(
                f"row {base_row} is not a tracked vertical object; "
                "issue bbop_trsp_init first")
        return obj

    def is_tracked(self, base_row: int) -> bool:
        return base_row in self._objects

    def release(self, base_row: int) -> None:
        """Stop tracking (object transposed back / freed)."""
        if base_row not in self._objects:
            raise AllocationError(
                f"row {base_row} does not track a vertical object")
        del self._objects[base_row]

    def __len__(self) -> int:
        return len(self._objects)

    @property
    def objects(self) -> list[TrackedObject]:
        return sorted(self._objects.values(), key=lambda o: o.base_row)
