"""Execution layer (Step 3): control unit, vectorized execution plans,
row layout binding, vertical memory allocation and the transposition
unit."""

from repro.exec.control_unit import ControlUnit, ProgramKey
from repro.exec.layout import RowLayout
from repro.exec.memory import RowBlock, VerticalAllocator
from repro.exec.plan import ExecutionPlan, PlanStep, StepKind, compile_plan
from repro.exec.tracker import ObjectTracker, TrackedObject
from repro.exec.transposition import TranspositionCost, TranspositionUnit

__all__ = [
    "ControlUnit",
    "ProgramKey",
    "RowLayout",
    "RowBlock",
    "VerticalAllocator",
    "ExecutionPlan",
    "PlanStep",
    "StepKind",
    "compile_plan",
    "ObjectTracker",
    "TrackedObject",
    "TranspositionCost",
    "TranspositionUnit",
]
