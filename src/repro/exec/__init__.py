"""Execution layer (Step 3): control unit, execution engines and
compiled plans, row layout binding, vertical memory allocation and the
transposition unit."""

from repro.exec.control_unit import ControlUnit, ProgramKey
from repro.exec.engines import (
    AUTO,
    CompiledEngine,
    ExecutionEngine,
    NumbaEngine,
    PerBankEngine,
    VectorizedEngine,
    get_engine,
    list_engines,
    register_engine,
    resolve_engine,
)
from repro.exec.layout import RowLayout
from repro.exec.memory import RowBlock, VerticalAllocator
from repro.exec.plan import ExecutionPlan, PlanStep, StepKind, compile_plan
from repro.exec.tracker import ObjectTracker, TrackedObject
from repro.exec.transposition import TranspositionCost, TranspositionUnit

__all__ = [
    "ControlUnit",
    "ProgramKey",
    "AUTO",
    "ExecutionEngine",
    "PerBankEngine",
    "VectorizedEngine",
    "CompiledEngine",
    "NumbaEngine",
    "register_engine",
    "get_engine",
    "list_engines",
    "resolve_engine",
    "RowLayout",
    "RowBlock",
    "VerticalAllocator",
    "ExecutionPlan",
    "PlanStep",
    "StepKind",
    "compile_plan",
    "ObjectTracker",
    "TrackedObject",
    "TranspositionCost",
    "TranspositionUnit",
]
