"""First-class execution engines behind one registry.

Historically ``engine`` was a string (``"auto"`` / ``"vectorized"`` /
``"per_bank"``) threaded as a parameter through every layer of the
stack, and the control unit hard-coded what each string meant.  Adding
a backend meant touching every layer.  This module makes engines
**objects** behind a small registry instead:

* :class:`ExecutionEngine` — the protocol: a ``name``, an
  :meth:`~ExecutionEngine.available` probe, capability flags
  (``vectorizable_only``, ``executes_plans``) and
  :meth:`~ExecutionEngine.compile`, which lowers a cached
  :class:`~repro.exec.plan.ExecutionPlan` to a callable executor over
  the module's stacked cell state.
* :func:`register_engine` / :func:`get_engine` / :func:`list_engines`
  — the registry.  Every public entry point (``Simdram.run/map``,
  ``SimdramCluster.*``, ``LazyTensor.evaluate``, ``SimdramService``)
  accepts either a registry name or an engine instance; the old
  strings resolve through the registry, so existing callers keep
  working.
* :func:`resolve_engine` — the ``"auto"`` policy: pick the best
  available engine per plan (compiled > vectorized > per_bank),
  silently falling back to ``per_bank`` when the module cannot run the
  stacked fast path (tracing / fault injection).

Built-in engines
----------------

``per_bank``
    The traced / fault-injection slow path: replays symbolic µOps bank
    by bank through each :class:`~repro.dram.subarray.Subarray`.  The
    only engine that is *not* ``vectorizable_only``.
``vectorized``
    Interprets the pre-classified :class:`ExecutionPlan` steps over the
    stacked ``(banks, rows, cols)`` bool state, one numpy op per µOp.
``compiled``
    The codegen backend (the assassyn approach: frontend IR → generated
    simulator code).  :meth:`~CompiledEngine.compile` emits specialized
    Python source with the µOp loop fully unrolled and every row /
    plane index baked in, then runs it through ``compile()``/``exec``.
    Each DRAM row becomes a *local variable holding an arbitrary-width
    Python integer* (one bit per SIMD lane across all banks), so a µOp
    is one or two native bigint operations instead of an interpreted
    numpy dispatch — the loop, the ``isinstance``/enum tests and the
    numpy call overhead all disappear.  Bit-identical to ``vectorized``
    on success (proven by the differential suites); portable, no
    dependencies.
``compiled-numba``
    Same unrolled codegen, but lowered to packed ``uint64`` lane words
    inside a ``numba.njit`` kernel.  Auto-detected: ``available()`` is
    true only when :mod:`numba` imports.  Never chosen by ``"auto"``
    (jitting a multi-thousand-statement kernel can cost seconds);
    request it explicitly when the jit amortizes.

Compiled executors are cached *on the plan* (`ExecutionPlan.executors`,
keyed by engine name), which the control unit's plan cache keys by
µProgram fingerprint (folding ``source_hash``) + row layout — so a
fused kernel replayed on the same layout compiles exactly once, and
eviction of a plan drops its executors with it.
"""

from __future__ import annotations

import threading
import warnings
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

import numpy as np

from repro.dram.subarray import N_B_PLANES
from repro.errors import EngineError
from repro.obs.tracing import span as obs_span

if TYPE_CHECKING:
    from repro.exec.plan import ExecutionPlan

__all__ = [
    "ExecutionEngine",
    "PerBankEngine",
    "VectorizedEngine",
    "CompiledEngine",
    "NumbaEngine",
    "register_engine",
    "get_engine",
    "list_engines",
    "resolve_engine",
    "AUTO",
]

#: An executor: mutates ``(data, b_planes)`` stacked bool state in place.
Executor = Callable[[np.ndarray, np.ndarray], None]


@runtime_checkable
class ExecutionEngine(Protocol):
    """The engine protocol every registered backend satisfies.

    Implementations are stateless-after-construction: :meth:`compile`
    must be a pure function of the plan, so one engine instance may be
    shared freely across scheduler worker threads (the cluster carries
    the resolved instance on each job).
    """

    #: Registry name (also the legacy string that resolves to it).
    name: str
    #: Requires the module's stacked cell state: the engine executes
    #: compiled plans over all banks at once and cannot model per-bank
    #: behaviours (command tracing, TRA fault injection).
    vectorizable_only: bool
    #: Whether :meth:`compile` produces plan executors.  ``False`` only
    #: for ``per_bank``, which the control unit routes through the
    #: symbolic per-subarray replay loop instead.
    executes_plans: bool
    #: ``"auto"`` preference; higher wins among available engines.
    priority: int

    def available(self) -> bool:
        """Whether the engine can run in this process (deps present)."""
        ...

    def compile(self, plan: "ExecutionPlan") -> Executor:
        """Lower a compiled plan to an executor callable."""
        ...


# ---------------------------------------------------------------------------
# pack/unpack helpers shared by the codegen backends
# ---------------------------------------------------------------------------
def _pack_rows(stack: np.ndarray, rows: tuple[int, ...],
               n_bits: int) -> list[int]:
    """Read ``stack[:, row, :]`` for each row into one Python int per
    row — bit ``b*cols + c`` of the int is bank ``b``, column ``c``."""
    if not rows:
        return []
    # (banks, k, cols) -> (k, banks*cols); bit order must round-trip
    # through _unpack_rows exactly, hence bitorder="little" throughout.
    flat = np.ascontiguousarray(
        stack[:, rows, :].transpose(1, 0, 2)).reshape(len(rows), n_bits)
    packed = np.packbits(flat, axis=1, bitorder="little")
    return [int.from_bytes(row.tobytes(), "little") for row in packed]


def _unpack_rows(stack: np.ndarray, rows: tuple[int, ...],
                 values: tuple[int, ...], n_bits: int) -> None:
    """Write packed integers back into ``stack[:, row, :]`` per row.

    One fused scatter for the whole writeback set — the executor's
    tail calls this once for data rows and once for B planes, keeping
    the per-dispatch numpy call count independent of how many rows
    the plan writes.
    """
    if not rows:
        return
    n_bytes = (n_bits + 7) // 8
    raw = b"".join(value.to_bytes(n_bytes, "little")
                   for value in values)
    bits = np.unpackbits(
        np.frombuffer(raw, dtype=np.uint8).reshape(len(rows), n_bytes),
        axis=1, count=n_bits, bitorder="little")
    stack[:, rows, :] = bits.reshape(
        len(rows), stack.shape[0], stack.shape[2]
    ).transpose(1, 0, 2).astype(bool)


def _pack_words(stack: np.ndarray, rows: tuple[int, ...],
                n_bits: int) -> np.ndarray:
    """Pack rows into a ``(len(rows), n_words)`` uint64 lane-word array
    (zero-padded to a 64-bit boundary)."""
    n_words = (n_bits + 63) // 64
    if not rows:
        return np.zeros((0, n_words), dtype=np.uint64)
    flat = np.zeros((len(rows), n_words * 64), dtype=np.uint8)
    flat[:, :n_bits] = np.ascontiguousarray(
        stack[:, rows, :].transpose(1, 0, 2)).reshape(len(rows), n_bits)
    packed = np.packbits(flat, axis=1, bitorder="little")
    return packed.view(np.uint64).copy()


def _unpack_words(stack: np.ndarray, rows: tuple[int, ...],
                  words: np.ndarray, n_bits: int) -> None:
    """Scatter packed lane words back into ``stack[:, row, :]``."""
    if not rows:
        return
    raw = words.view(np.uint8)
    bits = np.unpackbits(raw, axis=1,
                         bitorder="little")[:, :n_bits].astype(bool)
    stack[:, rows, :] = bits.reshape(
        len(rows), stack.shape[0], stack.shape[2]).transpose(1, 0, 2)


# ---------------------------------------------------------------------------
# built-in engines
# ---------------------------------------------------------------------------
class PerBankEngine:
    """The symbolic per-subarray replay path (tracing, fault injection).

    It does not compile plans at all — the control unit walks the
    µProgram through each bank's :class:`Subarray` — so its
    :meth:`compile` raises.  It exists in the registry so "per_bank" is
    a first-class, introspectable engine like every other.
    """

    name = "per_bank"
    vectorizable_only = False
    executes_plans = False
    priority = 0

    def available(self) -> bool:
        return True

    def compile(self, plan: "ExecutionPlan") -> Executor:
        raise EngineError(
            "per_bank replays symbolic µOps through each subarray; it "
            "has no plan executor to compile")

    def __repr__(self) -> str:
        return f"<engine {self.name}>"


class VectorizedEngine:
    """Interpret plan steps over the stacked state (the PR-1 engine)."""

    name = "vectorized"
    vectorizable_only = True
    executes_plans = True
    priority = 10

    def available(self) -> bool:
        return True

    def compile(self, plan: "ExecutionPlan") -> Executor:
        return plan.execute

    def __repr__(self) -> str:
        return f"<engine {self.name}>"


class CompiledEngine:
    """Generate and ``exec`` specialized Python source per plan.

    Every data row and B-group plane the plan touches becomes a local
    variable holding one arbitrary-precision integer (bit ``b*cols+c``
    = bank ``b``, column ``c``); the unrolled step sequence is emitted
    as straight-line bigint expressions.  A try/finally writes the
    (partial) state back even when a step raises, mirroring the
    vectorized engine's advance-all-banks-step-by-step failure shape.
    """

    name = "compiled"
    vectorizable_only = True
    executes_plans = True
    priority = 30

    def available(self) -> bool:
        return True

    def compile(self, plan: "ExecutionPlan") -> Executor:
        with obs_span("engine.compile", engine=self.name,
                      op=plan.op_name):
            source, _rows, _written = generate_source(plan)
            namespace = {
                "_pack_rows": _pack_rows,
                "_unpack_rows": _unpack_rows,
            }
            code = compile(source, f"<plan:{plan.op_name}>", "exec")
            exec(code, namespace)  # noqa: S102 - our own generated source
            executor = namespace["_executor"]
            executor.__source__ = source  # introspection / tests
            return executor

    def __repr__(self) -> str:
        return f"<engine {self.name}>"


class NumbaEngine:
    """The same unrolled codegen, jitted by numba over uint64 words.

    ``available()`` probes importability once; the engine registers
    unconditionally so :func:`list_engines` documents it, but
    ``"auto"`` and explicit requests skip/raise when numba is missing.
    """

    name = "compiled-numba"
    vectorizable_only = True
    executes_plans = True
    #: Below ``compiled``: jitting a multi-thousand-statement kernel
    #: costs seconds, so it must be requested explicitly.
    priority = 20

    def __init__(self) -> None:
        self._numba = None
        self._probed = False

    def available(self) -> bool:
        if not self._probed:
            try:
                import numba  # noqa: F401
                self._numba = numba
            except ImportError:
                self._numba = None
            self._probed = True
        return self._numba is not None

    def compile(self, plan: "ExecutionPlan") -> Executor:
        if not self.available():
            raise EngineError(
                "engine 'compiled-numba' is unavailable: numba is not "
                f"importable; available engines: "
                f"{list_engines(available_only=True)}")
        numba = self._numba
        with obs_span("engine.compile", engine=self.name,
                      op=plan.op_name):
            source, data_rows, written = generate_numba_source(plan)
            namespace = {"numba": numba, "np": np,
                         "CommandError": _command_error()}
            try:
                code = compile(source, f"<numba-plan:{plan.op_name}>",
                               "exec")
                exec(code, namespace)  # noqa: S102 - our own source
                kernel = numba.njit(cache=False)(namespace["_kernel"])
            except Exception as error:  # pragma: no cover - numba
                raise EngineError(
                    f"numba compilation of plan {plan.op_name!r} failed: "
                    f"{error!r}") from error
        all_rows = tuple(data_rows)
        written_rows = tuple(r for r in all_rows if r in written)
        written_index = tuple(all_rows.index(r) for r in written_rows)
        b_rows = tuple(range(N_B_PLANES))

        def executor(data: np.ndarray, b_planes: np.ndarray) -> None:
            n_bits = data.shape[0] * data.shape[2]
            n_words = (n_bits + 63) // 64
            mask = np.full(n_words, np.uint64(0xFFFFFFFFFFFFFFFF))
            if n_bits % 64:
                mask[-1] = np.uint64((1 << (n_bits % 64)) - 1)
            dwords = _pack_words(data, all_rows, n_bits)
            bwords = _pack_words(b_planes, b_rows, n_bits)
            try:
                kernel(dwords, bwords, mask)
            finally:
                if written_rows:
                    _unpack_words(data, written_rows,
                                  dwords[list(written_index)], n_bits)
                _unpack_words(b_planes, b_rows, bwords, n_bits)

        executor.__source__ = source
        return executor

    def __repr__(self) -> str:
        return f"<engine {self.name}>"


def _command_error():
    from repro.errors import CommandError
    return CommandError


# ---------------------------------------------------------------------------
# code generation (shared analysis; two emitters)
# ---------------------------------------------------------------------------
def _plan_data_rows(plan: "ExecutionPlan") -> tuple[list[int], set[int]]:
    """All data-row indices a plan touches, and the written subset."""
    from repro.exec.plan import StepKind
    K = StepKind
    touched: set[int] = set()
    written: set[int] = set()
    for step in plan.steps:
        if step.kind in (K.COPY_DATA, K.DATA_TO_B):
            touched.add(step.src)
        if step.kind in (K.COPY_DATA, K.FILL_DATA, K.B_TO_DATA,
                         K.PAIR_TO_DATA, K.TRA_TO_DATA):
            touched.add(step.dst)
            written.add(step.dst)
    return sorted(touched), written


def _emit_steps(plan: "ExecutionPlan", d, b, ones, raise_pair,
                indent: str) -> list[str]:
    """Emit one line-sequence per plan step.

    ``d(row)`` / ``b(plane)`` name the row variables, ``ones`` is the
    all-lanes-set mask expression, ``raise_pair(step)`` emits the
    unequal-pair-activation raise; both emitters share this walk so the
    two codegen backends cannot drift semantically.
    """
    from repro.exec.plan import StepKind
    K = StepKind
    lines: list[str] = []

    def read_ref(ref) -> str:
        plane, positive = ref
        return b(plane) if positive else f"({b(plane)} ^ {ones})"

    def write_refs(refs, value: str) -> None:
        for plane, positive in refs:
            lines.append(f"{indent}{b(plane)} = "
                         + (value if positive else f"{value} ^ {ones}"))

    for step in plan.steps:
        kind, src, dst = step.kind, step.src, step.dst
        if kind == K.COPY_DATA:
            lines.append(f"{indent}{d(dst)} = {d(src)}")
        elif kind == K.FILL_DATA:
            lines.append(f"{indent}{d(dst)} = {ones if src else '_zero'}")
        elif kind == K.DATA_TO_B:
            write_refs(dst, d(src))
        elif kind == K.FILL_B:
            for plane, positive in dst:
                value = ones if (src == positive) else "_zero"
                lines.append(f"{indent}{b(plane)} = {value}")
        elif kind == K.B_TO_DATA:
            lines.append(f"{indent}{d(dst)} = {read_ref(src)}")
        elif kind == K.B_TO_B:
            # Ints are immutable: snapshot once, no aliasing hazards.
            lines.append(f"{indent}_v = {read_ref(src)}")
            write_refs(dst, "_v")
        elif kind in (K.PAIR_TO_DATA, K.PAIR_TO_B):
            lines.append(f"{indent}_v = {read_ref(src[0])}")
            lines.append(f"{indent}if _v != {read_ref(src[1])}:")
            lines.append(f"{indent}    {raise_pair(step)}")
            if kind == K.PAIR_TO_DATA:
                lines.append(f"{indent}{d(dst)} = _v")
            else:
                write_refs(dst, "_v")
        else:  # TRA variants: majority of three, destructive restore
            a0, a1, a2 = (read_ref(ref) for ref in src)
            lines.append(f"{indent}_v = ({a0} & {a1}) | ({a1} & {a2}) "
                         f"| ({a0} & {a2})")
            write_refs(src, "_v")
            if kind == K.TRA_TO_DATA:
                lines.append(f"{indent}{d(dst)} = _v")
            elif kind == K.TRA_TO_B:
                write_refs(dst, "_v")
    return lines


def generate_source(plan: "ExecutionPlan"
                    ) -> tuple[str, list[int], set[int]]:
    """Emit the bigint executor source for :class:`CompiledEngine`.

    Returns ``(source, touched data rows, written data rows)``; the
    source defines ``_executor(data, b_planes)``.
    """
    rows, written = _plan_data_rows(plan)
    planes = list(range(N_B_PLANES))

    def d(row: int) -> str:
        return f"_d{row}"

    def b(plane: int) -> str:
        return f"_b{plane}"

    def raise_pair(step) -> str:
        message = (f"activating {step.src_addr} would charge-share two "
                   "unequal rows; the sensed value is nondeterministic")
        return f"raise _CommandError({message!r})"

    head = [
        f"# generated executor: {plan.op_name} "
        f"({plan.backend}, w{plan.element_width}, "
        f"{plan.n_steps} steps)",
        "from repro.errors import CommandError as _CommandError",
        "def _executor(data, b_planes):",
        "    _n = data.shape[0] * data.shape[2]",
        "    _ones = (1 << _n) - 1",
        "    _zero = 0",
    ]
    if rows:
        names = ", ".join(d(r) for r in rows)
        trailing = "," if len(rows) == 1 else ""
        head.append(f"    {names}{trailing} = "
                    f"_pack_rows(data, {tuple(rows)!r}, _n)")
    names = ", ".join(b(p) for p in planes)
    head.append(f"    {names} = _pack_rows(b_planes, "
                f"{tuple(planes)!r}, _n)")
    head.append("    try:")

    body = _emit_steps(plan, d, b, "_ones", raise_pair, "        ")
    if not body:
        body = ["        pass"]

    tail = ["    finally:"]
    written_rows = sorted(written)
    if written_rows:
        values = ", ".join(d(r) for r in written_rows)
        tail.append(f"        _unpack_rows(data, "
                    f"{tuple(written_rows)!r}, ({values},), _n)")
    values = ", ".join(b(p) for p in planes)
    tail.append(f"        _unpack_rows(b_planes, "
                f"{tuple(planes)!r}, ({values},), _n)")
    return "\n".join(head + body + tail) + "\n", rows, written


def generate_numba_source(plan: "ExecutionPlan"
                          ) -> tuple[str, list[int], set[int]]:
    """Emit the uint64-word kernel source for :class:`NumbaEngine`.

    The kernel iterates lane words; each unrolled step is a scalar
    uint64 expression.  Negation is ``x ^ m`` with the per-word valid
    mask, so padding bits beyond the lane count stay zero and the
    pair-equality check matches the other engines bit for bit.
    """
    rows, written = _plan_data_rows(plan)
    index = {row: i for i, row in enumerate(rows)}

    def d(row: int) -> str:
        return f"_d{row}"

    def b(plane: int) -> str:
        return f"_b{plane}"

    def raise_pair(step) -> str:
        message = (f"activating {step.src_addr} would charge-share two "
                   "unequal rows; the sensed value is nondeterministic")
        return f"raise CommandError({message!r})"

    head = [
        f"# generated numba kernel: {plan.op_name} "
        f"({plan.backend}, w{plan.element_width}, "
        f"{plan.n_steps} steps)",
        "def _kernel(dwords, bwords, mask):",
        "    _zero = np.uint64(0)",
        "    for _w in range(mask.shape[0]):",
        "        _ones = mask[_w]",
    ]
    for row in rows:
        head.append(f"        {d(row)} = dwords[{index[row]}, _w]")
    for plane in range(N_B_PLANES):
        head.append(f"        {b(plane)} = bwords[{plane}, _w]")

    body = _emit_steps(plan, d, b, "_ones", raise_pair, "        ")

    tail = []
    for row in sorted(written):
        tail.append(f"        dwords[{index[row]}, _w] = {d(row)}")
    for plane in range(N_B_PLANES):
        tail.append(f"        bwords[{plane}, _w] = {b(plane)}")
    return "\n".join(head + body + tail) + "\n", rows, written


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------
_REGISTRY: dict[str, ExecutionEngine] = {}
_REGISTRY_LOCK = threading.Lock()
_WARNED_UNKNOWN = False


class _AutoEngine:
    """The ``"auto"`` selector: not a real engine, but carrying it on a
    request/job object is well-defined — it resolves per dispatch via
    :func:`resolve_engine`, so a traced module still falls back to
    ``per_bank`` while everything else gets the best compiled path."""

    name = "auto"
    vectorizable_only = False
    executes_plans = False
    priority = -1

    def available(self) -> bool:
        return True

    def compile(self, plan: "ExecutionPlan") -> Executor:
        raise EngineError("'auto' resolves to a concrete engine per "
                          "dispatch; it cannot compile plans itself")

    def __repr__(self) -> str:
        return "<engine auto>"


#: The singleton ``"auto"`` selector every layer may carry.
AUTO = _AutoEngine()


def register_engine(engine: ExecutionEngine,
                    replace: bool = False) -> ExecutionEngine:
    """Register an engine under ``engine.name``.

    Raises :class:`~repro.errors.EngineError` on a duplicate name
    unless ``replace=True`` (the escape hatch for tests and for
    swapping in an instrumented engine).  Returns the engine for
    decorator-ish chaining.
    """
    name = getattr(engine, "name", None)
    if not name or not isinstance(name, str):
        raise EngineError(f"engine {engine!r} has no usable .name")
    if name == AUTO.name:
        raise EngineError("'auto' is the resolver, not a registrable "
                          "engine name")
    with _REGISTRY_LOCK:
        if not replace and name in _REGISTRY:
            raise EngineError(
                f"engine {name!r} is already registered; pass "
                "replace=True to substitute it")
        _REGISTRY[name] = engine
    return engine


def unregister_engine(name: str) -> None:
    """Remove an engine (tests); unknown names are a no-op."""
    with _REGISTRY_LOCK:
        _REGISTRY.pop(name, None)


def list_engines(available_only: bool = False) -> list[str]:
    """Registered engine names, highest ``"auto"`` preference first."""
    with _REGISTRY_LOCK:
        engines = sorted(_REGISTRY.values(),
                         key=lambda e: -e.priority)
    return [e.name for e in engines
            if not available_only or e.available()]


def get_engine(spec: "str | ExecutionEngine") -> ExecutionEngine:
    """Resolve a registry name — or pass an engine instance through.

    ``"auto"`` returns the :data:`AUTO` selector.  An unknown string
    emits a :class:`DeprecationWarning` once per process (the stringly
    ``engine=`` parameter is legacy; registry names and instances are
    the API) and raises :class:`~repro.errors.EngineError` naming
    :func:`list_engines`.
    """
    if not isinstance(spec, str):
        if isinstance(spec, ExecutionEngine):
            return spec
        raise EngineError(
            f"engine must be a registry name or an ExecutionEngine, "
            f"got {type(spec).__name__}")
    if spec == AUTO.name:
        return AUTO
    with _REGISTRY_LOCK:
        engine = _REGISTRY.get(spec)
    if engine is None:
        global _WARNED_UNKNOWN
        if not _WARNED_UNKNOWN:
            _WARNED_UNKNOWN = True
            warnings.warn(
                f"unknown engine string {spec!r}: the legacy engine= "
                "string parameter resolves through the engine registry "
                "now; use one of repro.exec.engines.list_engines() = "
                f"{list_engines()} or pass an ExecutionEngine instance",
                DeprecationWarning, stacklevel=2)
        raise EngineError(
            f"unknown engine {spec!r}; registered engines: "
            f"{list_engines()}")
    return engine


def resolve_engine(spec: "str | ExecutionEngine",
                   vectorizable: bool = True) -> ExecutionEngine:
    """Resolve ``spec`` to the concrete engine a dispatch will use.

    ``"auto"`` (or :data:`AUTO`) picks the highest-priority available
    engine — compiled > vectorized > per_bank — restricted to engines
    whose requirements the module meets: when ``vectorizable`` is
    false (a bank is traced, fault-injected or detached) every
    ``vectorizable_only`` engine is skipped, which is exactly the old
    silent per-bank fallback.  A concrete engine resolves to itself
    but must be available.
    """
    engine = get_engine(spec)
    if engine is AUTO:
        with _REGISTRY_LOCK:
            candidates = sorted(_REGISTRY.values(),
                                key=lambda e: -e.priority)
        for candidate in candidates:
            if candidate.vectorizable_only and not vectorizable:
                continue
            if candidate.available():
                return candidate
        raise EngineError(
            f"no registered engine can execute here; registered: "
            f"{list_engines()}")
    if not engine.available():
        raise EngineError(
            f"engine {engine.name!r} is unavailable in this process; "
            f"available engines: {list_engines(available_only=True)}")
    return engine


# Built-ins register at import; user engines join via register_engine.
register_engine(PerBankEngine())
register_engine(VectorizedEngine())
register_engine(CompiledEngine())
register_engine(NumbaEngine())
