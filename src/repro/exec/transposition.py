"""The SIMDRAM transposition unit.

The paper adds a transposition unit to the memory controller so that
most data can stay in the CPU-friendly *horizontal* layout while operands
of in-DRAM computation are stored *vertically* (all bits of an element in
one column).  This module provides both:

* the functional behaviour — converting numpy integer vectors to vertical
  bit rows (and back) and moving them through the module's host datapath
  (which the simulator accounts as host I/O bits), and
* the cost model — transposition happens at channel bandwidth in the
  controller (the unit transposes 64-bit chunks with negligible extra
  latency), so the cost of transposing a vector is the cost of streaming
  it over the channel, counted by :meth:`transpose_cost_ns`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dram.bank import DramModule
from repro.dram.commands import CommandStats
from repro.dram.energy import DramEnergy
from repro.dram.rows import data_row
from repro.dram.timing import DramTiming
from repro.errors import OperationError
from repro.exec.memory import RowBlock
from repro.util.bitops import bits_to_ints, ints_to_bits, to_signed


@dataclass(frozen=True)
class TranspositionCost:
    """Latency/energy of moving one operand through the controller."""

    bytes_moved: int
    latency_ns: float
    energy_nj: float


class TranspositionUnit:
    """Horizontal <-> vertical conversion at the memory controller."""

    def __init__(self, timing: DramTiming | None = None,
                 energy: DramEnergy | None = None) -> None:
        self.timing = timing or DramTiming.ddr4_2400()
        self.energy = energy or DramEnergy.ddr4()

    # ------------------------------------------------------------------
    # cost model
    # ------------------------------------------------------------------
    def transpose_cost(self, n_elements: int, width: int) -> TranspositionCost:
        """Cost of transposing ``n_elements`` ``width``-bit elements.

        The unit streams the data once over the channel; the transpose
        itself is pipelined behind the transfer (paper §4).
        """
        bits = n_elements * width
        bytes_moved = (bits + 7) // 8
        latency = bytes_moved * self.timing.io_ns_per_byte()
        return TranspositionCost(
            bytes_moved=bytes_moved,
            latency_ns=latency,
            energy_nj=self.energy.io_nj(bits),
        )

    # ------------------------------------------------------------------
    # functional behaviour on the simulated module
    # ------------------------------------------------------------------
    def host_to_vertical(self, module: DramModule, block: RowBlock,
                         values: np.ndarray, width: int) -> None:
        """Write integer ``values`` vertically into ``block``'s rows.

        Elements are striped across banks; unused columns are zero-padded.
        """
        if block.width < width:
            raise OperationError(
                f"block has {block.width} rows, need {width}")
        values = np.asarray(values)
        if values.ndim != 1:
            raise OperationError("expected a 1-D vector of elements")
        if len(values) > module.lanes:
            raise OperationError(
                f"{len(values)} elements exceed {module.lanes} lanes")
        padded = np.zeros(module.lanes, dtype=np.int64)
        padded[:len(values)] = values
        bits = ints_to_bits(padded, width)
        for i in range(width):
            module.write_striped(data_row(block.base + i), bits[i])

    def vertical_to_host(self, module: DramModule, block: RowBlock,
                         n_elements: int, width: int,
                         signed: bool = False) -> np.ndarray:
        """Read ``n_elements`` integers back from vertical rows."""
        if block.width < width:
            raise OperationError(
                f"block has {block.width} rows, need {width}")
        if n_elements > module.lanes:
            raise OperationError(
                f"{n_elements} elements exceed {module.lanes} lanes")
        rows = [module.read_striped(data_row(block.base + i))
                for i in range(width)]
        values = bits_to_ints(np.stack(rows))
        values = values[:n_elements]
        if signed:
            return to_signed(values, width)
        return values

    # ------------------------------------------------------------------
    # paging support (runtime eviction layer)
    # ------------------------------------------------------------------
    def spill(self, module: DramModule, block: RowBlock, n_elements: int,
              width: int, signed: bool = False,
              stats: "CommandStats | None" = None) -> np.ndarray:
        """Evict a vertical operand to host memory.

        Functionally a :meth:`vertical_to_host` read; the raw channel
        traffic lands in the subarrays' host-I/O counters as usual, and
        the eviction itself is recorded in ``stats`` (one spill of
        ``n_elements * width`` logical bits) so paging pressure is
        observable separately from ordinary transposition.
        """
        values = self.vertical_to_host(module, block, n_elements, width,
                                       signed=signed)
        if stats is not None:
            stats.record_spill(n_elements * width)
        return values

    def fill(self, module: DramModule, block: RowBlock,
             values: np.ndarray, width: int,
             stats: "CommandStats | None" = None) -> None:
        """Fault a spilled operand back into a vertical row block."""
        self.host_to_vertical(module, block, values, width)
        if stats is not None:
            stats.record_fill(len(values) * width)
