"""Vectorized µProgram execution plans.

The paper's execution model is lockstep: every participating bank
replays the *same* µProgram on its own columns.  The per-subarray
functional model (:class:`~repro.dram.subarray.Subarray`) simulates that
as an outer Python loop over banks — faithful, traceable, but slow
exactly where SIMDRAM scales.  This module removes the redundant work
once per execution instead of once per (bank, µOp):

* **Plan compilation** (:func:`compile_plan`) resolves every symbolic
  row through the :class:`~repro.exec.layout.RowLayout` *once*,
  classifies each µOp into a small opcode (data->data copy, constant
  broadcast, wordline read/write, TRA, ...), performs the layout and
  dual-contact-cell legality checks up front, and precomputes the
  per-bank :class:`~repro.dram.commands.CommandStats` of one replay.
* **Plan execution** (:meth:`ExecutionPlan.execute`) then runs the
  pre-classified steps over the module's *stacked* cell state — bool
  arrays of shape ``(banks, data_rows, cols)`` / ``(banks, planes,
  cols)`` — so each µOp is one numpy operation across all banks at
  once.  No ``isinstance``, no address resolution, no per-bank Python
  loop in the hot path.

Both executors mutate the same memory (the subarrays hold views of the
stacks), and the differential test suite asserts they produce identical
outputs, stats and post-state for every catalog operation.  Tracing and
TRA fault injection remain per-bank behaviours, so the control unit
falls back to the per-subarray path whenever they are enabled.

On *failure* (e.g. a µProgram activating two unequal wordlines) the two
paths raise the same error but may leave different partial state: the
per-bank path completes earlier banks before later ones start, while
the vectorized path advances all banks µOp by µOp.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.dram.commands import CommandStats
from repro.dram.geometry import DramGeometry
from repro.dram.rows import DCC_PAIRS, RowAddress, RowGroup
from repro.dram.subarray import WORDLINE_PLANE, majority3
from repro.errors import AddressError, CommandError, ExecutionError
from repro.exec.layout import RowLayout
from repro.uprog.program import MicroProgram
from repro.uprog.uops import UAap, UAp


class StepKind(enum.IntEnum):
    """Pre-classified µOp opcodes of the vectorized executor."""

    COPY_DATA = 0      # AAP D[src] -> D[dst]
    FILL_DATA = 1      # AAP C[const] -> D[dst]
    DATA_TO_B = 2      # AAP D[src] -> wordline(s)
    FILL_B = 3         # AAP C[const] -> wordline(s)
    B_TO_DATA = 4      # AAP single-wordline -> D[dst]
    B_TO_B = 5         # AAP single-wordline -> wordline(s)
    PAIR_TO_DATA = 6   # AAP double-wordline -> D[dst] (equality-checked)
    PAIR_TO_B = 7      # AAP double-wordline -> wordline(s)
    TRA = 8            # AP on a B-group triple (in-place majority)
    TRA_TO_DATA = 9    # AAP triple -> D[dst] (TRA, then copy result)
    TRA_TO_B = 10      # AAP triple -> wordline(s)


#: A wordline as (plane index, positive port?) — the storage coordinates
#: of :data:`repro.dram.subarray.WORDLINE_PLANE`.
PlaneRef = tuple[int, bool]


@dataclass(frozen=True)
class PlanStep:
    """One pre-resolved µOp.

    ``src``/``dst`` meaning depends on ``kind``:

    * data rows are ``int`` row indices;
    * constants are ``bool``;
    * wordline sources are a single :data:`PlaneRef`; wordline pairs and
      triples, and all wordline *destinations*, are ``tuple[PlaneRef]``.
    """

    kind: StepKind
    src: object
    dst: object
    #: Original addresses, kept for error messages only.
    src_addr: RowAddress
    dst_addr: RowAddress | None


def _planes(address: RowAddress) -> tuple[PlaneRef, ...]:
    return tuple(WORDLINE_PLANE[w] for w in address.wordlines())


def _check_drive(address: RowAddress) -> None:
    """Static legality of ``address`` as an AAP destination (mirrors
    ``Subarray._drive`` checks, which are address-only)."""
    if address.group is RowGroup.CTRL:
        raise CommandError(
            f"C-group row {address} holds a hardwired constant and "
            "cannot be a copy destination")
    if address.group is RowGroup.BITWISE:
        written: set[int] = set()
        for wordline in address.wordlines():
            plane, _ = WORDLINE_PLANE[wordline]
            if plane in written and wordline in DCC_PAIRS:
                raise CommandError(
                    f"{address} drives both ports of a dual-contact cell")
            written.add(plane)


def _classify(src: RowAddress, dst: RowAddress | None) -> PlanStep:
    """Turn one resolved µOp into a :class:`PlanStep`."""
    if dst is None:  # AP: the ISA only allows TRA triples here
        return PlanStep(StepKind.TRA, _planes(src), None, src, None)

    _check_drive(dst)
    if dst.group is RowGroup.DATA:
        dst_key, to_data = dst.index, True
    else:
        dst_key, to_data = _planes(dst), False

    if src.group is RowGroup.DATA:
        kind = StepKind.COPY_DATA if to_data else StepKind.DATA_TO_B
        return PlanStep(kind, src.index, dst_key, src, dst)
    if src.group is RowGroup.CTRL:
        kind = StepKind.FILL_DATA if to_data else StepKind.FILL_B
        return PlanStep(kind, bool(src.index), dst_key, src, dst)

    planes = _planes(src)
    if len(planes) == 1:
        kind = StepKind.B_TO_DATA if to_data else StepKind.B_TO_B
        return PlanStep(kind, planes[0], dst_key, src, dst)
    if len(planes) == 2:
        kind = StepKind.PAIR_TO_DATA if to_data else StepKind.PAIR_TO_B
        return PlanStep(kind, planes, dst_key, src, dst)
    kind = StepKind.TRA_TO_DATA if to_data else StepKind.TRA_TO_B
    return PlanStep(kind, planes, dst_key, src, dst)


@dataclass
class ExecutionPlan:
    """A µProgram compiled against one :class:`RowLayout`: the unit the
    control unit caches and replays on the stacked DRAM state."""

    op_name: str
    backend: str
    element_width: int
    steps: list[PlanStep]
    #: Stats of one replay in one bank (identical for every bank).
    per_bank_stats: CommandStats
    #: Compiled executors keyed by engine name.  Engines lower the plan
    #: once and memoize here, so the callable lives and dies with the
    #: plan's cache entry (the control unit's plan cache already keys by
    #: µProgram fingerprint — folding ``source_hash`` — plus layout).
    executors: dict[str, Callable[[np.ndarray, np.ndarray], None]] = \
        field(default_factory=dict, compare=False, repr=False)

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    def executor_for(self, engine) -> Callable[[np.ndarray, np.ndarray],
                                               None]:
        """The memoized executor this engine compiled for this plan."""
        executor = self.executors.get(engine.name)
        if executor is None:
            executor = engine.compile(self)
            self.executors[engine.name] = executor
        return executor

    # ------------------------------------------------------------------
    # hot loop
    # ------------------------------------------------------------------
    def execute(self, data: np.ndarray, b_planes: np.ndarray) -> None:
        """Replay the plan on stacked cell state, all banks at once.

        Args:
            data: ``(banks, data_rows, cols)`` bool array.
            b_planes: ``(banks, N_B_PLANES, cols)`` bool array.
        """
        K = StepKind
        for step in self.steps:
            kind, src, dst = step.kind, step.src, step.dst
            if kind == K.COPY_DATA:
                data[:, dst] = data[:, src]
            elif kind == K.FILL_DATA:
                data[:, dst] = src
            elif kind == K.DATA_TO_B:
                value = data[:, src]
                for plane, positive in dst:
                    b_planes[:, plane] = value if positive else ~value
            elif kind == K.FILL_B:
                for plane, positive in dst:
                    b_planes[:, plane] = src == positive
            elif kind == K.B_TO_DATA:
                plane, positive = src
                value = b_planes[:, plane]
                data[:, dst] = value if positive else ~value
            elif kind == K.B_TO_B:
                value = self._read(b_planes, src)
                # The sense value must survive the writes, as the sense
                # amplifiers do; copy when a destination wordline shares
                # the source's storage plane (per-bank path always copies).
                if any(plane == src[0] for plane, _ in dst):
                    value = value.copy()
                self._write(b_planes, dst, value)
            elif kind in (K.PAIR_TO_DATA, K.PAIR_TO_B):
                value = self._sense_pair(b_planes, step)
                if kind == K.PAIR_TO_DATA:
                    data[:, dst] = value
                else:
                    src_planes = {plane for plane, _ in src}
                    if any(plane in src_planes for plane, _ in dst):
                        value = value.copy()
                    self._write(b_planes, dst, value)
            else:  # TRA variants
                result = self._tra(b_planes, src)
                if kind == K.TRA_TO_DATA:
                    data[:, dst] = result
                elif kind == K.TRA_TO_B:
                    self._write(b_planes, dst, result)

    @staticmethod
    def _read(b_planes: np.ndarray, ref: PlaneRef) -> np.ndarray:
        plane, positive = ref
        value = b_planes[:, plane]
        return value if positive else ~value

    @staticmethod
    def _write(b_planes: np.ndarray, refs: tuple[PlaneRef, ...],
               value: np.ndarray) -> None:
        for plane, positive in refs:
            b_planes[:, plane] = value if positive else ~value

    def _sense_pair(self, b_planes: np.ndarray,
                    step: PlanStep) -> np.ndarray:
        a = self._read(b_planes, step.src[0])
        b = self._read(b_planes, step.src[1])
        if not np.array_equal(a, b):
            raise CommandError(
                f"activating {step.src_addr} would charge-share two "
                "unequal rows; the sensed value is nondeterministic")
        return a

    def _tra(self, b_planes: np.ndarray,
             refs: tuple[PlaneRef, ...]) -> np.ndarray:
        """Triple-row activation: majority, restored destructively."""
        result = majority3(self._read(b_planes, refs[0]),
                           self._read(b_planes, refs[1]),
                           self._read(b_planes, refs[2]))
        self._write(b_planes, refs, result)
        return result


def compile_plan(program: MicroProgram, layout: RowLayout,
                 geometry: DramGeometry) -> ExecutionPlan:
    """Resolve and classify a µProgram into an :class:`ExecutionPlan`.

    Performs up front everything the per-bank path repeats per (bank,
    µOp): layout capacity/overlap checks, symbolic row resolution, µOp
    classification, destination legality, and stats accounting.
    """
    layout.check(program, geometry)

    def resolve(urow) -> RowAddress:
        address = layout.resolve(urow)
        # The per-bank path bounds-checks data rows per activation; the
        # plan front-loads the same check (same error, at compile time).
        if (address.group is RowGroup.DATA
                and address.index >= geometry.data_rows):
            raise AddressError(
                f"data row {address.index} out of range "
                f"[0, {geometry.data_rows})")
        return address

    steps: list[PlanStep] = []
    stats = CommandStats()
    for uop in program.uops:
        if isinstance(uop, UAp):
            addr = resolve(uop.addr)
            steps.append(_classify(addr, None))
            stats.record_ap(addr.n_wordlines)
        elif isinstance(uop, UAap):
            src = resolve(uop.src)
            dst = resolve(uop.dst)
            steps.append(_classify(src, dst))
            stats.record_aap(src.n_wordlines, dst.n_wordlines)
        else:
            raise ExecutionError(f"unknown µOp {uop!r}")
    return ExecutionPlan(
        op_name=program.op_name, backend=program.backend,
        element_width=program.element_width, steps=steps,
        per_bank_stats=stats)
