"""The lazy evaluation engine: partition, fuse, dispatch, cache.

When a :class:`~repro.lazy.tensor.LazyTensor` is forced, the engine
turns the captured DAG into real SIMDRAM work:

1. **Width inference** — the pipeline element width is the widest
   *scaling* source in the graph (:func:`repro.core.expr.infer_width`);
   narrower sources widen by two's-complement re-encoding at transfer
   time, fixed-width slots (a 1-bit ``if_else`` select) are validated.
2. **Partitioning** — the ``bbop`` instruction carries at most three
   source addresses, so a graph drawing on more than three distinct
   leaves cannot be one fused kernel.  A greedy bottom-up pass walks
   the DAG in topological order and *cuts* the child subgraph with the
   most leaves whenever a node's combined leaf set would exceed the
   limit; each cut point becomes a device-resident intermediate and a
   single leaf of its consumers.  Graphs within the limit stay whole —
   one kernel, zero intermediates.
3. **Fusion + caching** — every segment compiles through
   :mod:`repro.core.fuse` and is cached by DAG content hash on the
   underlying device (:meth:`Simdram.compile_expr` /
   :meth:`Simdram.compile_multi` and the cluster equivalents), so
   repeated evaluations of structurally identical pipelines reuse both
   the µProgram and, downstream, the control unit's execution plan.
4. **Dispatch** — roots requested together are packed into multi-output
   kernels (one dispatch computes several results, shared subgraphs
   stitched once) as long as they share one 3-leaf input pool; on a
   cluster every segment goes through the async job scheduler, so
   ``evaluate(wait=False)`` returns before the DRAM work ran.

Evaluated roots cache their host values per pipeline width on the
node, giving common-subexpression reuse across ``evaluate`` calls; all
device rows the engine allocated are released when the evaluation
completes (cluster frees are scheduler-ordered after their readers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import expr as E
from repro.core.expr import Expr
from repro.core.fuse import MAX_FUSED_INPUTS
from repro.core.operations import get_operation
from repro.errors import OperationError
from repro.exec.engines import ExecutionEngine, get_engine
from repro.lazy.tensor import (
    KIND_CONST,
    KIND_OP,
    KIND_SOURCE,
    LazyTensor,
    canonical_values,
    min_width,
)

__all__ = ["LazyDevice", "EvalReport", "GroupReport"]


@dataclass(frozen=True)
class GroupReport:
    """What one width-group of an evaluation actually dispatched."""

    width: int          # pipeline element width
    n_nodes: int        # catalog operations evaluated
    n_segments: int     # device-resident intermediates (partition cuts)
    n_batches: int      # multi-output root dispatches (0 when async)
    n_transfers: int    # host->DRAM operand transfers performed


@dataclass(frozen=True)
class EvalReport:
    """Dispatch summary of the most recent ``LazyDevice.evaluate``."""

    groups: tuple[GroupReport, ...]

    @property
    def n_dispatches(self) -> int:
        """Fused µProgram dispatches issued (segments + batches)."""
        return sum(g.n_segments + g.n_batches for g in self.groups)


# ---------------------------------------------------------------------------
# backends: the two dispatch targets behind one tiny interface
# ---------------------------------------------------------------------------
class _ModuleBackend:
    """Dispatch on a single :class:`~repro.Simdram` module (synchronous)."""

    is_cluster = False

    def __init__(self, sim) -> None:
        self.sim = sim

    def transfer(self, values: np.ndarray, width: int, signed: bool):
        return self.sim.array(values, width, signed=signed)

    def run_segment(self, root: Expr, feeds: dict, width: int,
                    engine: ExecutionEngine):
        return self.sim.run_expr(root, feeds, width=width, engine=engine)

    def run_batch(self, roots: dict[str, Expr], feeds: dict, width: int,
                  engine: ExecutionEngine) -> dict[str, np.ndarray]:
        return self.sim.run_multi(roots, feeds, width=width,
                                  engine=engine)

    def read(self, handle) -> np.ndarray:
        return handle.to_numpy()

    def free(self, handle) -> None:
        handle.free()

    def is_live(self, handle) -> bool:
        return handle.status == "live"

    def kernel_cache_size(self) -> int:
        return self.sim.kernel_cache_size


class _ClusterBackend:
    """Dispatch on a :class:`~repro.SimdramCluster` (sharded + async).

    Segments are *submitted*, not run: the returned
    :class:`~repro.runtime.DeviceTensor` handles are usable operands
    immediately and the job scheduler serializes dependent segments per
    module while independent ones overlap.  Only multi-output batches
    (which must return host values) and reads block.
    """

    is_cluster = True

    def __init__(self, cluster) -> None:
        self.cluster = cluster

    def transfer(self, values: np.ndarray, width: int, signed: bool):
        return self.cluster.tensor(values, width, signed=signed)

    def run_segment(self, root: Expr, feeds: dict, width: int,
                    engine: ExecutionEngine):
        return self.cluster.submit(root, feeds=feeds, width=width,
                                   engine=engine).tensor

    def run_batch(self, roots: dict[str, Expr], feeds: dict, width: int,
                  engine: ExecutionEngine) -> dict[str, np.ndarray]:
        return self.cluster.run_multi(roots, feeds, width=width,
                                      engine=engine)

    def read(self, handle) -> np.ndarray:
        return handle.to_numpy()

    def free(self, handle) -> None:
        handle.free()

    def is_live(self, handle) -> bool:
        return handle.status == "live"

    def kernel_cache_size(self) -> int:
        return self.cluster.kernel_cache_size


# ---------------------------------------------------------------------------
# DAG walking helpers
# ---------------------------------------------------------------------------
def _build_expr(root: LazyTensor, is_leaf, names: dict[int, str],
                leaves: dict[str, LazyTensor]) -> Expr:
    """Translate a lazy (sub)graph into a :class:`~repro.core.expr.Expr`.

    Nodes for which ``is_leaf`` holds (except ``root`` itself) become
    named input leaves — named ``t0, t1, …`` in discovery order, which
    keeps structurally identical pipelines hashing identically so the
    device kernel caches hit across evaluations.  ``names``/``leaves``
    may be shared between calls to build several roots over one feed
    namespace (multi-output batches).
    """
    memo: dict[int, Expr] = {}

    def build(node: LazyTensor) -> Expr:
        cached = memo.get(id(node))
        if cached is not None:
            return cached
        if node.kind == KIND_CONST:
            built = E.const(node.value)
        elif node is not root and is_leaf(node):
            name = names.get(id(node))
            if name is None:
                name = f"t{len(names)}"
                names[id(node)] = name
                leaves[name] = node
            built = E.inp(name)
        else:
            built = E.op(node.op,
                         *[build(child) for child in node.children])
        memo[id(node)] = built
        return built

    return build(root)


def _topo_ops(roots: list[LazyTensor], is_leaf) -> list[LazyTensor]:
    """Op nodes needing computation, children before parents."""
    order: list[LazyTensor] = []
    seen: set[int] = set()
    stack: list[tuple[LazyTensor, bool]] = [(r, False)
                                            for r in reversed(roots)]
    while stack:
        node, expanded = stack.pop()
        if id(node) in seen:
            continue
        if node.kind != KIND_OP or is_leaf(node):
            continue
        if expanded:
            seen.add(id(node))
            order.append(node)
            continue
        stack.append((node, True))
        stack.extend(
            (child, False) for child in reversed(node.children)
            if child.kind == KIND_OP and not is_leaf(child))
    return order


def _plan_cuts(order: list[LazyTensor], is_leaf
               ) -> tuple[set[int], dict[int, frozenset[int]]]:
    """Greedy bottom-up partitioning against the 3-input ISA limit.

    Returns the ids of the nodes to materialize as device-resident
    intermediates and every ordered node's resulting leaf set (ids of
    the distinct sources/intermediates its segment draws on).
    """
    leafset: dict[int, frozenset[int]] = {}
    cut_ids: set[int] = set()

    def leaves_of(child: LazyTensor) -> frozenset[int]:
        if child.kind == KIND_CONST:
            return frozenset()
        if (child.kind == KIND_SOURCE or is_leaf(child)
                or id(child) in cut_ids):
            return frozenset((id(child),))
        return leafset[id(child)]

    for node in order:
        combined = frozenset().union(
            *(leaves_of(child) for child in node.children))
        if len(combined) > MAX_FUSED_INPUTS:
            candidates = list({
                id(child): child for child in node.children
                if child.kind == KIND_OP and not is_leaf(child)
                and id(child) not in cut_ids
                # an all-constant subgraph cannot be materialized (and
                # cutting it would *add* a leaf, never remove one)
                and leafset[id(child)]}.values())
            candidates.sort(key=lambda c: len(leafset[id(c)]),
                            reverse=True)
            for child in candidates:
                cut_ids.add(id(child))
                combined = frozenset().union(
                    *(leaves_of(c) for c in node.children))
                if len(combined) <= MAX_FUSED_INPUTS:
                    break
        leafset[id(node)] = combined
    return cut_ids, leafset


# ---------------------------------------------------------------------------
# the device
# ---------------------------------------------------------------------------
class LazyDevice:
    """A SIMDRAM execution target for lazy tensors.

    Wraps either a single :class:`~repro.Simdram` module or a
    :class:`~repro.SimdramCluster`; sources are bound to exactly one
    device and evaluation dispatches on it.  ``last_report`` records
    what the most recent evaluation actually did (width groups,
    partition segments, batched dispatches, transfers).
    """

    def __init__(self, target) -> None:
        # Imported here: the facade imports are heavyweight and the
        # tensor module must stay import-light.
        from repro.core.framework import Simdram
        from repro.runtime.cluster import SimdramCluster
        if isinstance(target, Simdram):
            self.backend = _ModuleBackend(target)
        elif isinstance(target, SimdramCluster):
            self.backend = _ClusterBackend(target)
        else:
            raise OperationError(
                f"a lazy device wraps a Simdram or SimdramCluster, "
                f"got {type(target).__name__}")
        self.target = target
        self.last_report: EvalReport | None = None

    @property
    def kernel_cache_size(self) -> int:
        """Compiled kernels cached on the target — fused single- and
        multi-root kernels *plus* catalog µPrograms (the target's
        whole compile cache, ``Simdram.kernel_cache_size``).  Compare
        before/after identical evaluations to prove cache hits; note
        that an interleaved first-time *eager* catalog op also grows
        the counter."""
        return self.backend.kernel_cache_size()

    # ------------------------------------------------------------------
    # sources
    # ------------------------------------------------------------------
    def array(self, values, width: int | None = None,
              signed: bool | None = None) -> LazyTensor:
        """Create a lazy source from host values.

        ``width``/``signed`` default to the minimal encoding of the
        actual values (signed iff any value is negative).  Nothing is
        transferred to DRAM yet — the evaluation engine transfers each
        source at the width its consumers require, which is how
        mixed-width pipelines widen narrow operands for free.
        """
        values = np.asarray(values)
        if values.ndim != 1:
            raise OperationError("lazy sources are 1-D vectors")
        if values.size == 0:
            raise OperationError("lazy sources need at least one element")
        if not np.issubdtype(values.dtype, np.integer):
            raise OperationError(
                f"SIMDRAM operates on integer vectors, got {values.dtype}")
        if signed is None:
            signed = bool(values.min() < 0)
        if width is None:
            width = min_width(values, signed)
        host = canonical_values(values, width, signed)
        return LazyTensor(self, KIND_SOURCE, host=host, width=width,
                          signed=signed, n_elements=len(host))

    def from_device(self, handle) -> LazyTensor:
        """Wrap an already-DRAM-resident array/tensor as a lazy source.

        The handle stays owned by the caller (the engine never frees
        it); its values are read back to host only if a consumer needs
        them at a different width.
        """
        node = LazyTensor(self, KIND_SOURCE, host=None,
                          width=handle.width, signed=handle.signed,
                          n_elements=handle.n_elements)
        node._handles[("s", handle.width)] = handle
        return node

    def _host_values(self, node: LazyTensor) -> np.ndarray:
        """A source's canonical host values (reading back a wrapped
        device handle on first need)."""
        if node.host is None:
            handle = node._handles.get(("s", node.width))
            if handle is None or not self.backend.is_live(handle):
                raise OperationError(
                    "the device handle behind this lazy source was "
                    "freed; its values are unrecoverable")
            node.host = self.backend.read(handle)
        return node.host

    # ------------------------------------------------------------------
    # evaluation entry
    # ------------------------------------------------------------------
    def evaluate(self, tensors: list[LazyTensor],
                 width: int | None = None, wait: bool = True,
                 engine: "str | ExecutionEngine" = "auto",
                 ) -> list[np.ndarray | None]:
        """Force a set of lazy tensors; returns their host values.

        Roots are grouped by inferred pipeline width (so a 4-bit
        pipeline requested alongside a 16-bit one keeps its own
        wrap-around semantics) and each group is partitioned, fused and
        dispatched together — roots sharing an input pool come back
        from a single multi-output µProgram.  With ``wait=False``
        results are submitted asynchronously and the returned entries
        are ``None``; a later :meth:`LazyTensor.numpy` gathers them.

        ``engine`` (a registry name or an
        :class:`~repro.exec.engines.ExecutionEngine`) is resolved once
        here and the instance threaded through every segment dispatch.
        """
        engine = get_engine(engine)
        outs: list[np.ndarray | None] = [None] * len(tensors)
        groups: dict[int, list[tuple[int, LazyTensor]]] = {}
        for i, tensor in enumerate(tensors):
            if not isinstance(tensor, LazyTensor):
                raise OperationError(
                    f"evaluate expects LazyTensors, got {type(tensor)}")
            if tensor.device is not self:
                raise OperationError(
                    "tensor lives on a different lazy device")
            if tensor.kind == KIND_CONST:
                raise OperationError(
                    "cannot evaluate a bare broadcast constant")
            if tensor.kind == KIND_SOURCE:
                outs[i] = self._host_values(tensor).copy()
                continue
            w = width if width is not None else self._infer(tensor)
            if w in tensor._results:
                outs[i] = tensor._results[w].copy()
                continue
            if tensor._pending is not None:
                if tensor._pending[0] == w:
                    if wait:
                        self._gather(tensor)
                        outs[i] = tensor._results[w].copy()
                    continue
                # A pending submission at a *different* width would be
                # orphaned (its live rows leaked) by a new submission;
                # resolve it into the result cache first.
                self._gather(tensor)
            groups.setdefault(w, []).append((i, tensor))

        reports = []
        for w, entries in groups.items():
            roots = list({id(t): t for _, t in entries}.values())
            reports.append(self._evaluate_group(roots, w, wait, engine))
            if wait:
                for i, tensor in entries:
                    outs[i] = tensor._results[w].copy()
        if reports:
            self.last_report = EvalReport(tuple(reports))
        return outs

    def export(self, root: LazyTensor
               ) -> tuple[Expr, dict[str, np.ndarray], int]:
        """Lower a captured graph to ``(expr, host feeds, width)``.

        The per-request lowering the serving layer uses: the graph is
        rebuilt over its *source* leaves (named ``t0, t1, …`` in
        discovery order, so structurally identical requests share one
        kernel identity and one compiled µProgram), every source's
        canonical host values become a feed vector, and the width is
        the graph's inferred pipeline width.  Graphs drawing on more
        than three distinct sources do not fit one ``bbop`` dispatch
        and are rejected — a serving request is exactly one kernel,
        there is no partitioner behind it.
        """
        if not isinstance(root, LazyTensor) or root.kind != KIND_OP:
            raise OperationError(
                "export expects a captured operation graph (a "
                "LazyTensor produced by catalog operations)")
        if root.device is not self:
            raise OperationError(
                "tensor lives on a different lazy device")
        width = self._infer(root)
        names: dict[int, str] = {}
        leaves: dict[str, LazyTensor] = {}
        built = _build_expr(root, lambda n: n.kind == KIND_SOURCE,
                            names, leaves)
        if len(leaves) > MAX_FUSED_INPUTS:
            raise OperationError(
                f"graph draws on {len(leaves)} distinct sources; one "
                f"dispatch binds at most {MAX_FUSED_INPUTS} (evaluate "
                "the graph through the lazy engine instead, which "
                "partitions it)")
        feeds = {name: self._host_values(node).copy()
                 for name, node in leaves.items()}
        return built, feeds, width

    def _infer(self, root: LazyTensor) -> int:
        """Inferred pipeline width of a root's full captured graph.

        Always derived from the original *sources* (never from cached
        intermediate results), so caching can never change a
        pipeline's wrap-around semantics.
        """
        if root._inferred_width is None:
            names: dict[int, str] = {}
            leaves: dict[str, LazyTensor] = {}
            built = _build_expr(root,
                                lambda n: n.kind == KIND_SOURCE,
                                names, leaves)
            if not leaves:
                raise OperationError(
                    "a lazy pipeline needs at least one source tensor "
                    "(all-constant graphs have nothing to stream)")
            root._inferred_width = E.infer_width(
                built, {name: node.width
                        for name, node in leaves.items()})
        return root._inferred_width

    def _gather(self, node: LazyTensor) -> None:
        """Resolve an async submission into cached host values."""
        w, handle = node._pending
        node._results[w] = self.backend.read(handle)
        self.backend.free(handle)
        node._handles.pop(("o", w), None)
        node._pending = None

    # ------------------------------------------------------------------
    # one width group: plan, materialize, dispatch
    # ------------------------------------------------------------------
    def _evaluate_group(self, roots: list[LazyTensor], w: int,
                        wait: bool,
                        engine: ExecutionEngine) -> GroupReport:
        backend = self.backend

        def is_leaf(node: LazyTensor) -> bool:
            if node.kind == KIND_SOURCE:
                return True
            if node.kind != KIND_OP:
                return False
            if w in node._results:
                return True
            handle = node._handles.get(("o", w))
            return handle is not None and backend.is_live(handle)

        order = _topo_ops(roots, is_leaf)
        cut_ids, leafset = _plan_cuts(order, is_leaf)
        index = {id(node): i for i, node in enumerate(order)}
        cuts = sorted((node for node in order if id(node) in cut_ids),
                      key=lambda n: index[id(n)])

        created: list[tuple[LazyTensor, tuple, object]] = []
        keep: set[int] = set()
        n_transfers = 0
        try:
            for node in cuts:
                self._materialize(node, w, is_leaf, created, engine)

            remaining = [r for r in roots if id(r) not in cut_ids
                         and not is_leaf(r)]
            if wait:
                needs = {id(r): self._leaf_needs(r, w, is_leaf)
                         for r in remaining}
                batches = self._batch_roots(remaining, leafset, needs)
                for batch in batches:
                    self._run_batch(batch, w, is_leaf, created, engine)
                for root in roots:
                    if w in root._results:
                        continue
                    # The root was materialized as another root's
                    # interior cut (or was already device-resident):
                    # read its handle instead of recomputing.
                    root._results[w] = backend.read(
                        root._handles[("o", w)])
                n_batches = len(batches)
            else:
                for root in remaining:
                    handle = self._materialize(root, w, is_leaf,
                                               created, engine)
                    root._pending = (w, handle)
                    keep.add(id(handle))
                for root in roots:
                    if (root._pending is None
                            and w not in root._results):
                        handle = root._handles[("o", w)]
                        root._pending = (w, handle)
                        keep.add(id(handle))
                n_batches = 0
            n_transfers = sum(1 for _, key, _h in created
                              if key[0] == "s")
        finally:
            for node, key, handle in created:
                if id(handle) in keep:
                    continue
                if backend.is_live(handle):
                    backend.free(handle)
                if node._handles.get(key) is handle:
                    del node._handles[key]
        return GroupReport(width=w, n_nodes=len(order),
                           n_segments=len(cuts), n_batches=n_batches,
                           n_transfers=n_transfers)

    def _handle_for(self, leaf: LazyTensor, needed: int, w: int,
                    created: list) -> object:
        """A live device handle for one segment input leaf.

        Sources transfer at the width the consumer slot requires
        (keyed so one source may serve slots of different widths);
        evaluated op nodes re-transfer their cached values; both are
        reused for the rest of the evaluation.
        """
        backend = self.backend
        if leaf.kind == KIND_SOURCE:
            key = ("s", needed)
            handle = leaf._handles.get(key)
            if handle is not None and backend.is_live(handle):
                return handle
            handle = backend.transfer(self._host_values(leaf), needed,
                                      leaf.signed)
        else:
            key = ("o", w)
            handle = leaf._handles.get(key)
            if handle is not None and backend.is_live(handle):
                return handle
            handle = backend.transfer(leaf._results[w], needed,
                                      get_operation(leaf.op).signed)
        leaf._handles[key] = handle
        created.append((leaf, key, handle))
        return handle

    def _segment_feeds(self, exprs: list[Expr], w: int,
                       leaves: dict[str, LazyTensor],
                       created: list) -> dict[str, object]:
        """Transfer/collect the device handles feeding a segment."""
        needed_widths: dict[str, int] = {}
        for built in exprs:
            for name, needed in E.analyze(built, w).input_widths.items():
                known = needed_widths.setdefault(name, needed)
                if known != needed:
                    raise OperationError(
                        f"input {name!r} is consumed at {known}-bit "
                        f"and {needed}-bit widths across fused roots")
        return {name: self._handle_for(leaves[name], needed, w, created)
                for name, needed in needed_widths.items()}

    def _materialize(self, node: LazyTensor, w: int, is_leaf,
                     created: list,
                     engine: ExecutionEngine) -> object:
        """Run one partition segment; leaves a live device handle."""
        names: dict[int, str] = {}
        leaves: dict[str, LazyTensor] = {}
        built = _build_expr(node, is_leaf, names, leaves)
        feeds = self._segment_feeds([built], w, leaves, created)
        handle = self.backend.run_segment(built, feeds, w, engine)
        key = ("o", w)
        node._handles[key] = handle
        created.append((node, key, handle))
        return handle

    def _leaf_needs(self, root: LazyTensor, w: int, is_leaf
                    ) -> dict[int, int]:
        """Leaf node id -> operand width this root consumes it at."""
        names: dict[int, str] = {}
        leaves: dict[str, LazyTensor] = {}
        built = _build_expr(root, is_leaf, names, leaves)
        return {id(leaves[name]): needed
                for name, needed in E.analyze(built, w)
                .input_widths.items()}

    def _batch_roots(self, roots: list[LazyTensor],
                     leafset: dict[int, frozenset[int]],
                     needs: dict[int, dict[int, int]]
                     ) -> list[list[LazyTensor]]:
        """Greedily pack roots whose combined leaf pool fits one
        multi-output kernel (three ``bbop`` source addresses).

        Roots consuming a shared leaf at *different* slot widths (one
        as an 8-bit operand, another as a 1-bit select) cannot share a
        kernel — each operand slot has one width — so they start a new
        batch instead of failing the joint compile.
        """
        batches: list[list[LazyTensor]] = []
        current: list[LazyTensor] = []
        current_leaves: set[int] = set()
        current_needs: dict[int, int] = {}
        for root in roots:
            root_leaves = leafset[id(root)]
            root_needs = needs[id(root)]
            conflict = any(current_needs.get(leaf, needed) != needed
                           for leaf, needed in root_needs.items())
            if current and (conflict or len(current_leaves | root_leaves)
                            > MAX_FUSED_INPUTS):
                batches.append(current)
                current, current_leaves = [], set()
                current_needs = {}
            current.append(root)
            current_leaves |= root_leaves
            current_needs.update(root_needs)
        if current:
            batches.append(current)
        return batches

    def _run_batch(self, batch: list[LazyTensor], w: int, is_leaf,
                   created: list,
                   engine: ExecutionEngine) -> None:
        """One multi-output dispatch computing every root in ``batch``."""
        names: dict[int, str] = {}
        leaves: dict[str, LazyTensor] = {}
        named_roots = {
            f"r{i}": _build_expr(root, is_leaf, names, leaves)
            for i, root in enumerate(batch)
        }
        feeds = self._segment_feeds(list(named_roots.values()), w,
                                    leaves, created)
        results = self.backend.run_batch(named_roots, feeds, w, engine)
        for i, root in enumerate(batch):
            root._results[w] = results[f"r{i}"]


