"""Programmer-transparent lazy tensor frontend for SIMDRAM.

The paper pitches SIMDRAM as an *end-to-end* framework: users write
ordinary array code and the framework picks the in-DRAM implementation.
This package is that frontend.  Arithmetic, comparisons, ``where``,
reductions — the whole catalog — record into a lazy DAG instead of
executing; forcing a result (``.numpy()``) fuses the captured graph
into as few µPrograms as the ``bbop`` ISA's three-source limit allows,
caches each kernel by DAG content hash, and dispatches on a single
:class:`~repro.Simdram` module or a sharded, paged, optionally-async
:class:`~repro.SimdramCluster` — with **zero** SIMDRAM-specific calls
in user code::

    from repro import lazy

    px = lazy.array(image_flat, width=10, signed=True)
    out = (px + delta).clip(0, 255)        # nothing executed yet
    result = out.numpy()                   # one fused µProgram

Compare the eager spelling of the same pipeline, which hand-builds an
expression DAG and binds it explicitly::

    root = expr.max(expr.min(expr.add(expr.inp("px"),
                                      expr.const(delta)),
                             expr.const(255)), expr.const(0))
    result = sim.map_expr(root, {"px": image_flat}, width=10)

Both run the identical fused kernel (same DAG hash, same cache entry);
the lazy version just derives it from what the code already says.

Devices: sources bind to a :class:`LazyDevice` — pass ``device=`` to
:func:`array`, or :func:`set_device` once; the default device lazily
instantiates a single ``Simdram()`` module.  Evaluating several
results at once (:func:`evaluate_all`) packs them into multi-output
kernels when they share an input pool, so common subexpressions are
computed exactly once.
"""

from __future__ import annotations

import weakref

from repro.core.operations import CATALOG
from repro.errors import OperationError
from repro.lazy.engine import EvalReport, GroupReport, LazyDevice
from repro.lazy.tensor import LazyTensor, apply

__all__ = [
    "LazyTensor",
    "LazyDevice",
    "EvalReport",
    "GroupReport",
    "apply",
    "array",
    "from_device",
    "where",
    "evaluate_all",
    "device",
    "set_device",
    "get_device",
]

#: The process-wide default device (created on first use).
_default_device: LazyDevice | None = None

#: LazyDevice per wrapped Simdram/SimdramCluster, so repeated wraps of
#: one target share sources, kernel caches and identity checks.  Held
#: by weak reference: a device (and the DRAM state behind it) lives
#: exactly as long as something outside this registry — a source
#: tensor, a user variable — still uses it.
_devices: dict[int, weakref.ref] = {}


def device(target) -> LazyDevice:
    """The :class:`LazyDevice` wrapping ``target`` (cached per target).

    ``target`` is a :class:`~repro.Simdram`,
    :class:`~repro.SimdramCluster`, or an existing :class:`LazyDevice`
    (returned unchanged).
    """
    if isinstance(target, LazyDevice):
        return target
    ref = _devices.get(id(target))
    wrapped = ref() if ref is not None else None
    # ``target is not wrapped.target`` guards id() reuse after the
    # original object died.
    if wrapped is None or wrapped.target is not target:
        wrapped = LazyDevice(target)
        key = id(target)

        def _drop(dead, key=key):
            if _devices.get(key) is dead:
                del _devices[key]

        _devices[key] = weakref.ref(wrapped, _drop)
    return wrapped


#: Internal alias: public functions take a ``device=`` keyword that
#: shadows the :func:`device` helper.
_as_device = device


def set_device(target) -> LazyDevice:
    """Install the default device for sources created without one."""
    global _default_device
    _default_device = device(target)
    return _default_device


def get_device() -> LazyDevice:
    """The default device (instantiating a ``Simdram()`` on first use)."""
    global _default_device
    if _default_device is None:
        from repro.core.framework import Simdram
        _default_device = device(Simdram())
    return _default_device


def array(values, width: int | None = None, signed: bool | None = None,
          device=None) -> LazyTensor:
    """Create a lazy source tensor from host values.

    Nothing touches DRAM yet; the evaluation engine transfers the
    source at the width its consumers require.  ``width``/``signed``
    default to the minimal encoding of the actual values.
    """
    target = _as_device(device) if device is not None else get_device()
    return target.array(values, width=width, signed=signed)


def from_device(handle, device=None) -> LazyTensor:
    """Wrap a DRAM-resident :class:`~repro.SimdramArray` /
    :class:`~repro.runtime.DeviceTensor` as a lazy source (caller keeps
    ownership of the handle's rows)."""
    if device is None:
        target = getattr(handle, "_framework", None) \
            or getattr(handle, "_cluster", None)
        if target is None:
            raise OperationError(
                f"cannot infer the device behind {type(handle).__name__}; "
                "pass device= explicitly")
        device = target
    return _as_device(device).from_device(handle)


def where(condition, a, b) -> LazyTensor:
    """Elementwise select, ``numpy.where``-style: ``condition ? a : b``."""
    return apply("if_else", condition, a, b)


def evaluate_all(tensors: list[LazyTensor], wait: bool = True,
                 width: int | None = None) -> list:
    """Force several lazy tensors together (multi-output fusion).

    Roots sharing one 3-leaf input pool come back from a *single*
    multi-output µProgram dispatch; shared subexpressions are stitched
    and computed once.  All tensors must live on one device.
    """
    if not tensors:
        return []
    lazies = [t for t in tensors if isinstance(t, LazyTensor)]
    if len(lazies) != len(tensors):
        raise OperationError("evaluate_all expects LazyTensors")
    dev = lazies[0].device
    return dev.evaluate(lazies, width=width, wait=wait)


def __getattr__(attr: str):
    """Expose every catalog operation as ``lazy.<name>(*operands)``."""
    if attr in CATALOG:
        def build(*operands, _name: str = attr) -> LazyTensor:
            return apply(_name, *operands)

        build.__name__ = attr
        build.__doc__ = (f"Lazy builder for {attr!r}: "
                         f"{CATALOG[attr].description}.")
        return build
    raise AttributeError(f"module {__name__!r} has no attribute {attr!r}")
