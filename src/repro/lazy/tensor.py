"""``LazyTensor``: NumPy-flavored graph capture over the catalog.

A :class:`LazyTensor` looks like an integer array — ``+``, ``*``,
comparisons, ``where``, reductions and the rest of the catalog all
work — but nothing executes when an operation is applied.  Each
application records one node of a lazy DAG; evaluation is deferred
until :meth:`LazyTensor.numpy` (or an explicit
:meth:`LazyTensor.evaluate` / :func:`repro.lazy.evaluate_all`), at
which point the device's evaluation engine fuses the captured graph
into as few µPrograms as the ``bbop`` ISA allows and dispatches them —
on a single :class:`~repro.Simdram` module or a sharded
:class:`~repro.SimdramCluster` — with no further user involvement.

Nodes come in three kinds, mirroring :mod:`repro.core.expr`:

* **source** — host values bound to a device, with a natural bit width
  and signedness (:meth:`LazyDevice.array <repro.lazy.array>`), or a
  wrapper over an already-resident :class:`~repro.SimdramArray` /
  :class:`~repro.runtime.DeviceTensor` (:func:`repro.lazy.from_device`);
* **const** — a broadcast Python integer, folded into the MIG at
  compile time (scalars in arithmetic lift automatically);
* **op** — one catalog operation over child nodes.

Results are cached per pipeline width on the node, so repeated
``numpy()`` calls and shared subexpressions across evaluations never
recompute.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.operations import get_operation
from repro.errors import OperationError
from repro.util.bitops import to_signed, to_unsigned

if TYPE_CHECKING:
    from repro.lazy.engine import LazyDevice

#: Node kinds of a lazy DAG.
KIND_SOURCE = "source"
KIND_CONST = "const"
KIND_OP = "op"


def min_width(values: np.ndarray, signed: bool) -> int:
    """The smallest bit width representing every value exactly."""
    if values.size == 0:
        return 1
    lo, hi = int(values.min()), int(values.max())
    if signed:
        width = 1
        while lo < -(1 << (width - 1)) or hi > (1 << (width - 1)) - 1:
            width += 1
        return width
    return max(1, hi.bit_length())


def canonical_values(values: np.ndarray, width: int,
                     signed: bool) -> np.ndarray:
    """Host values as the device would read them back.

    Encodes at ``width`` bits (masking out-of-range values exactly like
    :meth:`Simdram.array` does on transfer-in) and decodes per
    ``signed``, so a source's ``numpy()`` equals what an eager
    round trip through DRAM would produce.
    """
    encoded = to_unsigned(np.asarray(values, dtype=np.int64), width)
    return to_signed(encoded, width) if signed else encoded


class LazyTensor:
    """One node of a lazy computation DAG (see module docstring)."""

    #: Make numpy defer to our reflected dunders instead of trying to
    #: broadcast elementwise over this object.
    __array_ufunc__ = None
    __array_priority__ = 1000

    def __init__(self, device: "LazyDevice", kind: str, *,
                 host: np.ndarray | None = None,
                 value: int | None = None,
                 op: str | None = None,
                 children: tuple["LazyTensor", ...] = (),
                 width: int | None = None,
                 signed: bool = False,
                 n_elements: int | None = None) -> None:
        self.device = device
        self.kind = kind
        self.host = host            # canonical values (KIND_SOURCE)
        self.value = value          # broadcast value (KIND_CONST)
        self.op = op                # catalog op name (KIND_OP)
        self.children = children
        self.width = width          # natural bit width (KIND_SOURCE)
        self.signed = signed
        self.n_elements = n_elements
        #: Evaluated host values, keyed by the pipeline width they were
        #: computed at (op nodes; the CSE cache across evaluations).
        self._results: dict[int, np.ndarray] = {}
        #: Live device handles, keyed ``("s", transfer width)`` for
        #: sources and ``("o", pipeline width)`` for evaluated op
        #: nodes.  Engine-managed: the engine frees only handles it
        #: created itself, so a wrapped user-owned handle (see
        #: :func:`repro.lazy.from_device`) is never released here.
        self._handles: dict[tuple, object] = {}
        #: Deferred async result: (pipeline width, device handle).
        self._pending: tuple[int, object] | None = None
        #: Memoized inferred pipeline width (the graph is immutable).
        self._inferred_width: int | None = None

    # -- hashing/equality ----------------------------------------------
    # ``==`` records an ``eq`` op node, so identity must back hashing;
    # engine bookkeeping keys dicts by ``id(node)`` for the same reason.
    __hash__ = object.__hash__

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def numpy(self) -> np.ndarray:
        """Evaluate (if needed) and return the host values.

        The trigger of the whole lazy machinery: fuses the captured
        graph, dispatches it on this tensor's device and returns the
        result decoded per the root operation's signedness.  Cached —
        a second call (or a structurally shared subexpression) does not
        recompute.
        """
        return self.device.evaluate([self])[0]

    def evaluate(self, wait: bool = True,
                 engine="auto") -> "LazyTensor":
        """Force evaluation now; returns ``self`` for chaining.

        With ``wait=False`` on a cluster device the computation is
        *submitted* (the async job scheduler orders it against every
        other outstanding job) and this call returns immediately;
        :meth:`numpy` later gathers the finished result.  ``engine``
        is an execution-engine registry name or
        :class:`~repro.exec.engines.ExecutionEngine` instance,
        resolved by the device.
        """
        self.device.evaluate([self], wait=wait, engine=engine)
        return self

    # ------------------------------------------------------------------
    # capture sugar
    # ------------------------------------------------------------------
    def __add__(self, other) -> "LazyTensor":
        return apply("add", self, other)

    def __radd__(self, other) -> "LazyTensor":
        return apply("add", other, self)

    def __sub__(self, other) -> "LazyTensor":
        return apply("sub", self, other)

    def __rsub__(self, other) -> "LazyTensor":
        return apply("sub", other, self)

    def __mul__(self, other) -> "LazyTensor":
        return apply("mul", self, other)

    def __rmul__(self, other) -> "LazyTensor":
        return apply("mul", other, self)

    def __floordiv__(self, other) -> "LazyTensor":
        return apply("div", self, other)

    def __rfloordiv__(self, other) -> "LazyTensor":
        return apply("div", other, self)

    def __abs__(self) -> "LazyTensor":
        return apply("abs", self)

    def __eq__(self, other) -> "LazyTensor":  # type: ignore[override]
        return apply("eq", self, other)

    def __ne__(self, other) -> "LazyTensor":  # type: ignore[override]
        return apply("ne", self, other)

    def __gt__(self, other) -> "LazyTensor":
        return apply("gt", self, other)

    def __ge__(self, other) -> "LazyTensor":
        return apply("ge", self, other)

    def __lt__(self, other) -> "LazyTensor":
        return apply("lt", self, other)

    def __le__(self, other) -> "LazyTensor":
        return apply("le", self, other)

    def __bool__(self) -> bool:
        raise OperationError(
            "the truth value of a LazyTensor is undefined before "
            "evaluation; call .numpy() and test the values, or use "
            "repro.lazy.where for elementwise selection")

    # -- named operations ----------------------------------------------
    def minimum(self, other) -> "LazyTensor":
        return apply("min", self, other)

    def maximum(self, other) -> "LazyTensor":
        return apply("max", self, other)

    def clip(self, lo, hi) -> "LazyTensor":
        """``numpy.clip`` spelling of the min/max clamp pair."""
        return apply("max", apply("min", self, hi), lo)

    def relu(self) -> "LazyTensor":
        return apply("relu", self)

    def bitcount(self) -> "LazyTensor":
        return apply("bitcount", self)

    def where(self, a, b) -> "LazyTensor":
        """Elementwise select with *this* tensor as the predicate."""
        return apply("if_else", self, a, b)

    def __len__(self) -> int:
        if self.n_elements is None:
            raise OperationError("a broadcast constant has no length")
        return self.n_elements

    @property
    def shape(self) -> tuple[int]:
        """Numpy-style shape (lazy tensors are 1-D vectors)."""
        return (len(self),)

    def __repr__(self) -> str:
        if self.kind == KIND_CONST:
            return f"LazyTensor(const {self.value})"
        sign = "i" if self.signed else "u"
        state = ("source" if self.kind == KIND_SOURCE
                 else f"{self.op}, {len(self._results)} cached")
        width = f" x {sign}{self.width}" if self.width else ""
        return (f"LazyTensor(shape=({self.n_elements},){width}, "
                f"{state})")


def _lift(operand, device: "LazyDevice") -> LazyTensor:
    """Coerce one operand of a captured operation to a lazy node.

    Python/numpy integer scalars become broadcast constants (folded
    into the MIG, costing no rows); integer arrays become sources on
    the same device at their minimal natural width.
    """
    if isinstance(operand, LazyTensor):
        return operand
    if isinstance(operand, (bool, np.bool_)):
        operand = int(operand)
    if isinstance(operand, (int, np.integer)):
        return LazyTensor(device, KIND_CONST, value=int(operand))
    values = np.asarray(operand)
    if not np.issubdtype(values.dtype, np.integer):
        raise OperationError(
            f"SIMDRAM operates on integer vectors; cannot lift "
            f"{values.dtype} operand into the lazy graph")
    return device.array(values)


def apply(op_name: str, *operands, device: "LazyDevice | None" = None
          ) -> LazyTensor:
    """Record one catalog operation into the lazy DAG (the generic
    spelling behind every operator and ``repro.lazy.<op>`` builder)."""
    spec = get_operation(op_name)
    if len(operands) != spec.arity:
        raise OperationError(
            f"{op_name} takes {spec.arity} operands, got {len(operands)}")
    tensors = [o for o in operands if isinstance(o, LazyTensor)
               and o.kind != KIND_CONST]
    if device is None:
        if not tensors:
            raise OperationError(
                f"{op_name}: at least one operand must be a LazyTensor "
                "(all-constant expressions have nothing to stream; pass "
                "device= to build a constant subgraph)")
        device = tensors[0].device
    for tensor in tensors:
        if tensor.device is not device:
            raise OperationError(
                f"{op_name}: operands live on different devices")
    children = tuple(_lift(o, device) for o in operands)
    lengths = {c.n_elements for c in children if c.n_elements is not None}
    if len(lengths) > 1:
        raise OperationError(
            f"{op_name}: operand lengths differ: {sorted(lengths)}")
    # All-constant subgraphs have no length yet; they take their
    # consumer's (the fusion compiler folds their bits into the MIG).
    n_elements = lengths.pop() if lengths else None
    return LazyTensor(device, KIND_OP, op=op_name, children=children,
                      signed=spec.signed, n_elements=n_elements)
