"""Device performance-monitoring unit (PMU) for the simulated DRAM.

Real PuD evaluation needs hardware-counter-style introspection of the
memory device itself, not just the serving pipeline: row activations,
the ACT/PRE vs AAP command mix, per-bank occupancy, transposition
traffic and modeled energy.  This module is that counter file.

Three hook sites feed it, all on dispatch boundaries (never inside the
bit-serial inner loops):

* :meth:`DramModule.__init__ <repro.dram.bank.DramModule>` registers
  each module with the process-global PMU and tags it with a
  ``pmu_id``; the module's striped-I/O paths (``write_striped`` /
  ``read_striped`` — the transposition unit's data port) record
  transposition traffic.
* :meth:`ControlUnit.execute_on_module
  <repro.exec.control_unit.ControlUnit>` records one *dispatch
  sample* per µProgram execution: the per-bank command-stream delta,
  how many banks participated, and the kernel identity.  Banks run in
  lockstep, so one bank's delta describes every participating bank.
* :meth:`SimdramCluster._account <repro.runtime.cluster.SimdramCluster>`
  records the modeled busy-time delta of each dispatch boundary into a
  windowed utilization timeline (the heatmap source) and emits a
  ``pmu.delta`` flight-recorder event.

The serve layer attributes device work to tenants and kernel
identities via :meth:`DevicePmu.attribute` when a request finishes.

Everything is exported through a registry collector named ``"pmu"``
(``repro_pmu_*`` series) — call :meth:`DevicePmu.register` to attach
it to any :class:`~repro.obs.metrics.MetricsRegistry`.

One compute subarray is modeled per bank, so the per-bank counter rows
double as per-subarray rows.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass, field

from repro.obs import clock
from repro.obs.flightrec import get_flight_recorder
from repro.obs.metrics import MetricsRegistry, Sample, get_registry

#: Process-wide module id source: ids stay unique even when tests
#: build several DevicePmu instances.
_module_ids = itertools.count()

#: Default size of the utilization timeline: 240 windows of 250 ms
#: covers the last minute of device activity.
DEFAULT_WINDOW_S = 0.25
DEFAULT_N_WINDOWS = 240


@dataclass
class BankCounters:
    """One bank's (== one compute subarray's) counter row."""

    n_ap: float = 0.0
    n_aap: float = 0.0
    activations: float = 0.0
    busy_ns: float = 0.0

    def as_dict(self) -> dict:
        return {"n_ap": self.n_ap, "n_aap": self.n_aap,
                "activations": self.activations, "busy_ns": self.busy_ns}


@dataclass
class ModuleCounters:
    """Counter bank for one registered :class:`DramModule`."""

    module_id: int
    n_banks: int
    lanes: int
    banks: "list[BankCounters]" = field(default_factory=list)
    dispatches: float = 0.0
    #: Sum over dispatches of participating-bank count — the
    #: numerator of the lane-occupancy duty cycle.
    bank_dispatches: float = 0.0
    transposition_bits: float = 0.0
    energy_nj: float = 0.0
    busy_ns: float = 0.0
    #: Utilization timeline: (window index, modeled busy ns) pairs.
    windows: deque = field(default_factory=deque)

    def duty_cycle(self) -> float:
        """Mean fraction of banks participating per dispatch."""
        if not self.dispatches:
            return 0.0
        return self.bank_dispatches / (self.dispatches * self.n_banks)


class DevicePmu:
    """Per-bank device counters with a windowed utilization timeline.

    Thread-safe; every record is a short critical section over plain
    float adds so the hooks stay cheap enough for the always-on
    ``bench_obs`` overhead gate.
    """

    def __init__(self, *, window_s: float = DEFAULT_WINDOW_S,
                 n_windows: int = DEFAULT_N_WINDOWS) -> None:
        self.window_s = float(window_s)
        self.n_windows = int(n_windows)
        self._lock = threading.Lock()
        self._modules: "dict[int, ModuleCounters]" = {}
        #: Device-level per-kernel counts (control-unit attribution).
        self._kernels: "dict[str, dict]" = {}
        #: Serve-level per-(tenant, kernel) attribution.
        self._tenants: "dict[tuple, dict]" = {}

    # ------------------------------------------------------------------
    # recording (the hook API)
    # ------------------------------------------------------------------
    def register_module(self, n_banks: int, lanes: int) -> int:
        """Register a DRAM module; returns its ``pmu_id``."""
        module_id = next(_module_ids)
        row = ModuleCounters(module_id=module_id, n_banks=int(n_banks),
                             lanes=int(lanes),
                             banks=[BankCounters()
                                    for _ in range(int(n_banks))])
        with self._lock:
            self._modules[module_id] = row
        return module_id

    def record_dispatch(self, module_id: int, n_banks: int, per_bank,
                        *, kernel: "str | None" = None,
                        latency_ns: float = 0.0,
                        energy_nj: float = 0.0) -> None:
        """One µProgram dispatch: ``per_bank`` is a single bank's
        :class:`~repro.dram.commands.CommandStats` delta (banks run
        in lockstep, so it describes all ``n_banks`` participants)."""
        with self._lock:
            row = self._modules.get(module_id)
            if row is None:
                return
            row.dispatches += 1
            row.bank_dispatches += n_banks
            row.energy_nj += energy_nj
            row.busy_ns += latency_ns * 1.0
            for bank in row.banks[:n_banks]:
                bank.n_ap += per_bank.n_ap
                bank.n_aap += per_bank.n_aap
                bank.activations += per_bank.n_activations
                bank.busy_ns += latency_ns
            if kernel is not None:
                cell = self._kernels.setdefault(
                    kernel, {"dispatches": 0.0, "activations": 0.0})
                cell["dispatches"] += 1
                cell["activations"] += per_bank.n_activations * n_banks

    def record_transposition(self, module_id: int, bits: int) -> None:
        """Striped-I/O traffic through the transposition unit."""
        with self._lock:
            row = self._modules.get(module_id)
            if row is not None:
                row.transposition_bits += bits

    def record_boundary(self, module_id: int, busy_ns: float,
                        io_bits: int = 0) -> None:
        """Cluster dispatch boundary: fold the modeled busy-time delta
        into the utilization timeline and flight-record the delta."""
        bucket = int(clock.now() / self.window_s)
        with self._lock:
            row = self._modules.get(module_id)
            if row is None:
                return
            if row.windows and row.windows[-1][0] == bucket:
                row.windows[-1][1] += busy_ns
            else:
                row.windows.append([bucket, busy_ns])
                while len(row.windows) > self.n_windows:
                    row.windows.popleft()
        get_flight_recorder().record(
            "pmu.delta", module=module_id, busy_ns=busy_ns,
            io_bits=io_bits)

    def attribute(self, tenant: str, kernel: str, *, lanes: int = 0,
                  energy_nj: "float | None" = None,
                  requests: int = 1) -> None:
        """Serve-layer attribution of device work to a tenant and a
        kernel identity (called once per finished request)."""
        with self._lock:
            cell = self._tenants.setdefault(
                (tenant, kernel),
                {"requests": 0.0, "lanes": 0.0, "energy_nj": 0.0})
            cell["requests"] += requests
            cell["lanes"] += lanes
            if energy_nj:
                cell["energy_nj"] += energy_nj

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def utilization(self, lookback: int = 4) -> "dict[int, float]":
        """Recent modeled utilization per module: busy-ns over the
        last ``lookback`` wall windows / that much wall time."""
        horizon = int(clock.now() / self.window_s) - lookback
        span_ns = lookback * self.window_s * 1e9
        out: "dict[int, float]" = {}
        with self._lock:
            for module_id, row in self._modules.items():
                busy = sum(ns for bucket, ns in row.windows
                           if bucket > horizon)
                out[module_id] = min(1.0, busy / span_ns)
        return out

    def timeline(self) -> "list[dict]":
        """The windowed heatmap source: one entry per (module, window)
        with the window's start time and modeled busy ns."""
        out = []
        with self._lock:
            for module_id, row in self._modules.items():
                for bucket, ns in row.windows:
                    out.append({"module": module_id,
                                "t0": bucket * self.window_s,
                                "busy_ns": ns})
        out.sort(key=lambda e: (e["t0"], e["module"]))
        return out

    def snapshot(self) -> dict:
        """Structured copy of every counter (dashboard / JSON food)."""
        util = self.utilization()
        with self._lock:
            modules = {}
            for module_id, row in self._modules.items():
                modules[module_id] = {
                    "n_banks": row.n_banks,
                    "lanes": row.lanes,
                    "dispatches": row.dispatches,
                    "duty_cycle": row.duty_cycle(),
                    "utilization": util.get(module_id, 0.0),
                    "transposition_bits": row.transposition_bits,
                    "energy_nj": row.energy_nj,
                    "busy_ns": row.busy_ns,
                    "banks": [bank.as_dict() for bank in row.banks],
                }
            kernels = {k: dict(v) for k, v in self._kernels.items()}
            tenants = {f"{t}/{k}": dict(v)
                       for (t, k), v in self._tenants.items()}
        return {"modules": modules, "kernels": kernels,
                "tenants": tenants}

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def samples(self) -> "list[Sample]":
        """Registry-collector payload (``repro_pmu_*`` series)."""
        util = self.utilization()
        out: "list[Sample]" = []
        with self._lock:
            for module_id, row in self._modules.items():
                mod = str(module_id)
                out.append(Sample(
                    "repro_pmu_dispatches_total", row.dispatches,
                    (("module", mod),), "counter",
                    "uProgram dispatches sampled by the device PMU"))
                out.append(Sample(
                    "repro_pmu_transposition_bits_total",
                    row.transposition_bits, (("module", mod),),
                    "counter", "bits moved through the transposition "
                    "unit's striped I/O port"))
                out.append(Sample(
                    "repro_pmu_energy_nj_total", row.energy_nj,
                    (("module", mod),), "counter",
                    "modeled device energy sampled at dispatch"))
                out.append(Sample(
                    "repro_pmu_lane_duty_cycle", row.duty_cycle(),
                    (("module", mod),), "gauge",
                    "mean fraction of banks participating per "
                    "dispatch"))
                out.append(Sample(
                    "repro_pmu_window_utilization",
                    util.get(module_id, 0.0), (("module", mod),),
                    "gauge", "modeled busy fraction over the recent "
                    "utilization windows"))
                for index, bank in enumerate(row.banks):
                    labels = (("module", mod), ("bank", str(index)))
                    out.append(Sample(
                        "repro_pmu_row_activations_total",
                        bank.activations, labels, "counter",
                        "row activations (ACT/PRE pairs) per bank"))
                    out.append(Sample(
                        "repro_pmu_commands_total", bank.n_ap,
                        labels + (("kind", "ap"),), "counter",
                        "AP / AAP commands issued per bank"))
                    out.append(Sample(
                        "repro_pmu_commands_total", bank.n_aap,
                        labels + (("kind", "aap"),), "counter",
                        "AP / AAP commands issued per bank"))
            for kernel, cell in self._kernels.items():
                labels = (("kernel", kernel),)
                out.append(Sample(
                    "repro_pmu_kernel_dispatches_total",
                    cell["dispatches"], labels, "counter",
                    "device dispatches per kernel identity"))
                out.append(Sample(
                    "repro_pmu_kernel_activations_total",
                    cell["activations"], labels, "counter",
                    "row activations per kernel identity"))
            for (tenant, kernel), cell in self._tenants.items():
                labels = (("tenant", tenant), ("kernel", kernel))
                out.append(Sample(
                    "repro_pmu_tenant_requests_total",
                    cell["requests"], labels, "counter",
                    "finished requests attributed per tenant/kernel"))
                out.append(Sample(
                    "repro_pmu_tenant_lanes_total", cell["lanes"],
                    labels, "counter",
                    "device lanes attributed per tenant/kernel"))
                out.append(Sample(
                    "repro_pmu_tenant_energy_nj_total",
                    cell["energy_nj"], labels, "counter",
                    "modeled energy attributed per tenant/kernel"))
        return out

    def register(self, registry: "MetricsRegistry | None" = None
                 ) -> None:
        """Attach the PMU collector (named ``"pmu"``, so repeated
        registration replaces rather than stacks)."""
        (registry or get_registry()).register_collector(
            self.samples, name="pmu")

    def reset(self) -> None:
        """Zero every counter but keep module registrations."""
        with self._lock:
            for row in self._modules.values():
                row.dispatches = 0.0
                row.bank_dispatches = 0.0
                row.transposition_bits = 0.0
                row.energy_nj = 0.0
                row.busy_ns = 0.0
                row.windows.clear()
                for bank in row.banks:
                    bank.n_ap = bank.n_aap = 0.0
                    bank.activations = bank.busy_ns = 0.0
            self._kernels.clear()
            self._tenants.clear()


_GLOBAL_PMU = DevicePmu()
_GLOBAL_PMU.register(get_registry())


def get_pmu() -> DevicePmu:
    """The process-global device PMU (what the hooks feed)."""
    return _GLOBAL_PMU
