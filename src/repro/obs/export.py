"""Trace exporters: Chrome trace-event JSON for Perfetto.

:func:`write_chrome_trace` turns the tracer's finished span trees into
the Chrome trace-event format — ``"X"`` (complete) events with
microsecond ``ts``/``dur`` on the shared monotonic timeline, one
*process track* per OS process that recorded spans (the serve parent
plus each forked replica), one *thread track* per recording thread.
Open the file at https://ui.perfetto.dev or ``chrome://tracing``.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from . import clock
from .tracing import Span, Tracer


def _process_label(span: Span) -> str:
    """Track label for the process a span was recorded in.  Replica
    children stamp their spans with a ``proc`` attribute; anything else
    is the serve/driver process."""
    proc = span.attrs.get("proc")
    return str(proc) if proc else "serve"


def chrome_trace_events(roots: "Iterable[Span]") -> "list[dict[str, Any]]":
    """Flatten span trees into trace-event dicts (no file I/O)."""
    events: list[dict[str, Any]] = []
    proc_names: dict[int, str] = {}
    threads: set[tuple[int, int]] = set()
    for root in roots:
        for span in root.walk():
            if not getattr(span, "recording", True):  # grafted noops
                continue
            t1 = span.t1 if span.t1 is not None else span.t0
            args: dict[str, Any] = {str(k): v for k, v in
                                    span.attrs.items()}
            args["status"] = span.status
            if span.error is not None:
                args["error"] = span.error
            if span.t1 is None:
                args["open"] = True
            events.append({
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": span.t0 * 1e6,
                "dur": max(0.0, (t1 - span.t0) * 1e6),
                "pid": span.pid,
                "tid": span.tid,
                "args": args,
            })
            label = _process_label(span)
            # first-writer wins, except a real replica label beats the
            # default when the same pid produced both
            if proc_names.get(span.pid, "serve") == "serve":
                proc_names[span.pid] = label
            threads.add((span.pid, span.tid))
    for pid, name in sorted(proc_names.items()):
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": name}})
    for pid, tid in sorted(threads):
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": tid, "args": {"name": f"thread-{tid}"}})
    return events


def chrome_trace_dict(source: "Tracer | Iterable[Span]",
                      ) -> "dict[str, Any]":
    roots = (source.finished_traces() if isinstance(source, Tracer)
             else list(source))
    return {
        "traceEvents": chrome_trace_events(roots),
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "n_traces": len(roots),
            "exported_unix_time": clock.wall(),
        },
    }


def write_chrome_trace(path: str,
                       source: "Tracer | Iterable[Span]") -> int:
    """Write ``trace.json`` for Perfetto; returns the trace count."""
    payload = chrome_trace_dict(source)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, default=str)
        fh.write("\n")
    return payload["otherData"]["n_traces"]
