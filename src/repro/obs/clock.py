"""Monotonic clock shim for all observability timestamps.

Every span timestamp, heartbeat RTT, and latency sample in the
codebase flows through :func:`now` so that (a) traces are immune to
wall-clock steps (NTP slew, suspend/resume), and (b) tests can install
a deterministic fake clock with :func:`set_source` instead of
sleeping.  ``time.time()`` is banned in ``src/repro/`` by the ruff
``flake8-tidy-imports`` rule and a CI grep; the single sanctioned
escape hatch is :func:`wall`, which exists only to stamp export files
with a human-readable creation time.

On Linux ``time.monotonic`` reads ``CLOCK_MONOTONIC``, which is
system-wide: timestamps taken in forked replica children are directly
comparable with the parent's, so cross-process span trees line up on
one timeline without clock translation.
"""

from __future__ import annotations

import time
from typing import Callable

_source: Callable[[], float] = time.monotonic


def now() -> float:
    """Seconds on the observability timeline (monotonic by default)."""
    return _source()


def set_source(source: "Callable[[], float] | None") -> None:
    """Install a replacement time source (``None`` restores the real
    monotonic clock).  Test-only: production code never calls this."""
    global _source
    _source = time.monotonic if source is None else source


def wall() -> float:
    """Wall-clock seconds since the epoch, for stamping export files.

    The only sanctioned ``time.time`` call site under ``src/repro``;
    never use it for durations or span timestamps.
    """
    return time.time()  # noqa: TID251  - sanctioned wall-clock escape hatch
