"""Observability: spans, unified metrics, and trace/metric exporters.

The subsystem has four small parts:

* :mod:`repro.obs.clock` — the monotonic time source every timestamp
  in the repo goes through (``time.time()`` is lint-banned in
  ``src/repro``);
* :mod:`repro.obs.tracing` — span trees recording each request's path
  ``serve.admit → serve.pack → router.place → replica.transport →
  cluster.dispatch → engine.execute → serve.scatter``, with a no-op
  fast path when tracing is off and dict serialization so replica
  child processes can ship their subtrees home over the result pipe;
* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges and exponential-bucket histograms, plus scrape-time
  collectors that adapt the legacy ``ServeMetrics``/``CommandStats``
  surfaces;
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto) and,
  via the registry, Prometheus text exposition;
* :mod:`repro.obs.pmu` — the device PMU: per-bank counter banks fed
  at dispatch boundaries, exported as ``repro_pmu_*``;
* :mod:`repro.obs.flightrec` — the always-on flight recorder (bounded
  event ring, crash spill files, merged postmortem dumps);
* :mod:`repro.obs.alerts` — SLO burn-rate rules over the registry;
* :mod:`repro.obs.dashboard` — the ``repro top`` renderer and the
  shared ``refresh_loop`` that ``stats --watch`` reuses.
"""

from . import clock
from .alerts import (AlertEvent, AlertManager, AlertRule, MetricsView,
                     default_rules)
from .dashboard import collect_view, refresh_loop, render_top
from .export import chrome_trace_dict, chrome_trace_events, \
    write_chrome_trace
from .flightrec import FlightRecorder, get_flight_recorder, postmortem
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry, Sample,
                      get_registry)
from .pmu import DevicePmu, get_pmu
from .tracing import (NOOP_SPAN, Span, Tracer, current_span, get_tracer,
                      span, use_span)

__all__ = [
    "clock",
    "Span", "Tracer", "NOOP_SPAN", "span", "current_span", "use_span",
    "get_tracer",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "Sample",
    "get_registry",
    "chrome_trace_dict", "chrome_trace_events", "write_chrome_trace",
    "DevicePmu", "get_pmu",
    "FlightRecorder", "get_flight_recorder", "postmortem",
    "AlertRule", "AlertManager", "AlertEvent", "MetricsView",
    "default_rules",
    "render_top", "collect_view", "refresh_loop",
]
