"""Rendering for ``repro top`` and the ``stats --watch`` loop.

Pure-text rendering (``render_top``) over a plain-dict view
(``collect_view``), plus ``refresh_loop`` — the shared frame driver
that uses curses when stdout is an interactive terminal and falls
back to ANSI clear-and-reprint (or plain appends) everywhere else,
so tests and piped output stay deterministic.
"""

from __future__ import annotations

import sys
import time  # noqa: TID251 - frame pacing is wall-clock by nature

from repro.obs import clock

BAR_WIDTH = 24


def bar(fraction: float, width: int = BAR_WIDTH) -> str:
    """``[####....]`` utilization bar, clamped to [0, 1]."""
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def collect_view(stats: "dict | None" = None, *, alerts=None,
                 pmu=None, recorder=None, title: str = "repro top"
                 ) -> dict:
    """Assemble the dashboard view: service ``stats()`` snapshot,
    PMU snapshot, active alert states and the flight-recorder tail."""
    view = {"title": title, "t": clock.now(), "stats": stats or {}}
    view["pmu"] = pmu.snapshot() if pmu is not None else {}
    if alerts is not None:
        view["alerts"] = [
            {"rule": s.rule.name, "since": s.since,
             "value": s.last_value, "burn_short": s.burn_short,
             "burn_long": s.burn_long,
             "description": s.rule.description}
            for s in alerts.active()]
        view["rules"] = [rule.name for rule in alerts.rules()]
        view["transitions"] = [str(e) for e in alerts.events[-6:]]
    else:
        view["alerts"], view["rules"], view["transitions"] = [], [], []
    if recorder is not None:
        view["events"] = recorder.events()[-8:]
        view["n_events"] = recorder.n_recorded
    else:
        view["events"], view["n_events"] = [], 0
    return view


def _serving_lines(stats: dict) -> "list[str]":
    lines: "list[str]" = []
    req = stats.get("requests", {})
    lat = stats.get("latency_ms", {})
    slo = stats.get("slo", {})
    pack = stats.get("packing", {})
    lines.append(
        "serving   submitted %5d  completed %5d  shed %4d  "
        "in-flight %3d" % (req.get("submitted", 0),
                           req.get("completed", 0),
                           req.get("shed", 0),
                           req.get("in_flight", 0)))
    lines.append(
        "latency   p50 %7.2f ms   p99 %7.2f ms   goodput %6.2f rps"
        % (lat.get("p50", 0.0), lat.get("p99", 0.0),
           slo.get("goodput_rps", 0.0)))
    lines.append(
        "device    occupancy %s %4.0f%%   dispatches %d"
        % (bar(pack.get("lane_occupancy", 0.0)),
           100.0 * pack.get("lane_occupancy", 0.0),
           pack.get("dispatches", 0)))
    tenants = stats.get("tenants", {})
    for tenant in sorted(tenants):
        counters = tenants[tenant]
        lines.append(
            "tenant    %-10s lanes %6d  completed %5d  shed %4d"
            % (tenant, counters.get("lanes", 0),
               counters.get("completed", 0), counters.get("shed", 0)))
    return lines


def _pmu_lines(pmu_snapshot: dict) -> "list[str]":
    lines: "list[str]" = []
    modules = pmu_snapshot.get("modules", {})
    for module_id in sorted(modules):
        row = modules[module_id]
        lines.append(
            "pmu m%-3s  util %s %4.0f%%  duty %4.0f%%  %6.0f nJ"
            % (module_id, bar(row["utilization"]),
               100.0 * row["utilization"], 100.0 * row["duty_cycle"],
               row["energy_nj"]))
        banks = row.get("banks", [])
        peak = max([b["activations"] for b in banks] + [1.0])
        for index, bank in enumerate(banks):
            lines.append(
                "  bank %-3d %s %8.0f acts  %6.0f AAP"
                % (index, bar(bank["activations"] / peak),
                   bank["activations"], bank["n_aap"]))
    return lines


def _alert_lines(view: dict) -> "list[str]":
    lines: "list[str]" = []
    active = view.get("alerts", [])
    if active:
        for state in active:
            burn = state.get("burn_short")
            lines.append("ALERT FIRING  %-24s burn %s  %s"
                         % (state["rule"],
                            "-" if burn is None else f"{burn:6.2f}",
                            state.get("description", "")))
    else:
        lines.append("alerts    none firing (%d rules armed)"
                     % len(view.get("rules", [])))
    for transition in view.get("transitions", []):
        lines.append("  " + transition)
    return lines


def render_top(view: dict) -> str:
    """Render one dashboard frame as plain text."""
    lines = ["=== %s · t=%.1fs · %d flight events ==="
             % (view.get("title", "repro top"), view.get("t", 0.0),
                view.get("n_events", 0))]
    lines.extend(_serving_lines(view.get("stats", {})))
    lines.extend(_pmu_lines(view.get("pmu", {})))
    lines.extend(_alert_lines(view))
    events = view.get("events", [])
    if events:
        lines.append("recent events:")
        for event in events:
            extra = {k: v for k, v in event.items()
                     if k not in ("t", "kind")}
            lines.append("  %9.3f %-18s %s"
                         % (event.get("t", 0.0), event.get("kind", ""),
                            extra if extra else ""))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# the shared refresh loop
# ----------------------------------------------------------------------
def _curses_available() -> bool:
    try:
        import curses  # noqa: F401
    except ImportError:
        return False
    return True


def _curses_loop(frame_fn, interval_s: float,
                 frames: "int | None") -> int:
    import curses

    def run(screen) -> int:
        curses.use_default_colors()
        screen.timeout(max(1, int(interval_s * 1000)))
        shown = 0
        while frames is None or shown < frames:
            text = frame_fn(shown)
            screen.erase()
            rows, cols = screen.getmaxyx()
            for y, line in enumerate(text.splitlines()[:rows - 1]):
                screen.addnstr(y, 0, line, cols - 1)
            screen.addnstr(rows - 1, 0, "q to quit", cols - 1)
            screen.refresh()
            shown += 1
            if screen.getch() in (ord("q"), ord("Q")):
                break
        return shown

    return curses.wrapper(run)


def refresh_loop(frame_fn, interval_s: float = 1.0,
                 frames: "int | None" = None, screen: str = "auto",
                 out=None) -> int:
    """Drive ``frame_fn(index) -> str`` periodically.

    ``screen``: ``"curses"`` | ``"plain"`` | ``"auto"`` (curses only
    on an interactive terminal).  Returns the number of frames shown;
    a ``KeyboardInterrupt`` exits cleanly.
    """
    out = out or sys.stdout
    use_curses = (screen == "curses"
                  or (screen == "auto"
                      and getattr(out, "isatty", lambda: False)()
                      and _curses_available()))
    try:
        if use_curses and _curses_available():
            return _curses_loop(frame_fn, interval_s, frames)
        shown = 0
        clear = getattr(out, "isatty", lambda: False)()
        while frames is None or shown < frames:
            text = frame_fn(shown)
            if clear:
                out.write("\x1b[2J\x1b[H")
            out.write(text + "\n")
            out.flush()
            shown += 1
            if frames is None or shown < frames:
                time.sleep(interval_s)
        return shown
    except KeyboardInterrupt:
        return -1
