"""In-memory span trees for per-request, per-stage timing.

A :class:`Span` is one timed stage of a request (``serve.admit``,
``router.place``, ``engine.execute``, ...).  Spans form a tree: the
root is the request itself and children are the stages it passed
through, possibly recorded in other threads or — via
:meth:`Span.to_dict` / :meth:`Span.from_dict` — in forked replica
processes, whose monotonic timestamps are directly comparable with the
parent's (see :mod:`repro.obs.clock`).

The ambient *current span* lives in a :class:`contextvars.ContextVar`.
Instrumentation sites call the module-level :func:`span` helper, which
is the no-op fast path: when nothing upstream opened a recording span
it returns a shared inert singleton without allocating, so tracing
that is switched off costs one context-variable read per site.

:class:`Tracer` owns the on/off switch, deterministic sampling (an
accumulator, not a PRNG, so ``sample_rate=0.5`` traces exactly every
other request) and a bounded deque of finished root spans that the
exporters drain.
"""

from __future__ import annotations

import contextvars
import os
import threading
from collections import deque
from typing import Any, Iterator

from . import clock
from .flightrec import get_flight_recorder

#: Children kept per span before further ones are counted but dropped;
#: guards the serve loop against a runaway instrumentation site.
MAX_CHILDREN = 256


class Span:
    """One timed, attributed stage in a request's trace tree."""

    __slots__ = ("name", "attrs", "t0", "t1", "status", "error",
                 "children", "parent", "pid", "tid", "n_dropped",
                 "_sink", "_token")

    def __init__(self, name: str, attrs: "dict[str, Any] | None" = None,
                 parent: "Span | None" = None, _sink=None) -> None:
        self.name = name
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        self.t0 = clock.now()
        self.t1: "float | None" = None
        self.status = "ok"
        self.error: "str | None" = None
        self.children: list[Span] = []
        self.parent = parent
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self.n_dropped = 0
        self._sink = _sink

    # -- recording protocol ------------------------------------------------
    @property
    def recording(self) -> bool:
        return True

    @property
    def finished(self) -> bool:
        return self.t1 is not None

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        return 0.0 if self.t1 is None else self.t1 - self.t0

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def child(self, name: str, **attrs: Any) -> "Span":
        """Open a child stage under this span."""
        if len(self.children) >= MAX_CHILDREN:
            self.n_dropped += 1
            return NOOP_SPAN  # type: ignore[return-value]
        child = Span(name, attrs, parent=self)
        self.children.append(child)
        return child

    def adopt(self, child: "Span") -> "Span":
        """Attach an externally-built subtree (e.g. deserialized from a
        replica child process) under this span."""
        child.parent = self
        if len(self.children) >= MAX_CHILDREN:
            self.n_dropped += 1
        else:
            self.children.append(child)
        return child

    def fail(self, error: "BaseException | str") -> "Span":
        self.status = "error"
        self.error = (f"{type(error).__name__}: {error}"
                      if isinstance(error, BaseException) else str(error))
        return self

    def finish(self, error: "BaseException | str | None" = None) -> "Span":
        """Close the span (idempotent).  Root spans report themselves
        to their tracer sink on first finish."""
        if error is not None:
            self.fail(error)
        if self.t1 is None:
            self.t1 = clock.now()
            if self._sink is not None:
                self._sink(self)
        return self

    # -- context manager ---------------------------------------------------
    def __enter__(self) -> "Span":
        self._token = _current.set(self)  # type: ignore[attr-defined]
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _current.reset(self._token)  # type: ignore[attr-defined]
        self.finish(exc if exc is not None else None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"{self.duration * 1e3:.3f}ms" if self.finished else "open"
        return (f"Span({self.name!r}, {state}, status={self.status!r}, "
                f"children={len(self.children)})")

    # -- (de)serialization across the process boundary ---------------------
    def to_dict(self) -> dict[str, Any]:
        """Pickle-friendly tree encoding shipped over the replica pipe."""
        out: dict[str, Any] = {
            "name": self.name, "t0": self.t0, "t1": self.t1,
            "status": self.status, "pid": self.pid, "tid": self.tid,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.error is not None:
            out["error"] = self.error
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        if self.n_dropped:
            out["n_dropped"] = self.n_dropped
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        span = cls.__new__(cls)
        span.name = data["name"]
        span.attrs = dict(data.get("attrs", ()))
        span.t0 = data["t0"]
        span.t1 = data.get("t1")
        span.status = data.get("status", "ok")
        span.error = data.get("error")
        span.pid = data.get("pid", os.getpid())
        span.tid = data.get("tid", 0)
        span.n_dropped = data.get("n_dropped", 0)
        span.parent = None
        span._sink = None
        span.children = [cls.from_dict(c) for c in data.get("children", ())]
        for child in span.children:
            child.parent = span
        return span

    def copy_tree(self) -> "Span":
        """Deep copy of this subtree, detached from any parent.  Used to
        graft one shared packed-dispatch trace into the tree of every
        request that rode in the pack."""
        return Span.from_dict(self.to_dict())

    # -- queries (tests / exporters) ---------------------------------------
    def walk(self) -> "Iterator[Span]":
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (depth-first)."""
        for node in self.walk():
            if node.name == name:
                return node
        return None

    def find_all(self, name: str) -> "list[Span]":
        return [node for node in self.walk() if node.name == name]

    def stage_names(self) -> "list[str]":
        """Distinct span names in this tree, in depth-first order."""
        seen: dict[str, None] = {}
        for node in self.walk():
            seen.setdefault(node.name)
        return list(seen)


class _NoopSpan:
    """Shared inert span: every mutator is a no-op and ``child`` returns
    itself, so unsampled call trees cost no allocations."""

    __slots__ = ()
    name = "noop"
    attrs: dict[str, Any] = {}
    children: "list[Span]" = []
    parent = None
    status = "ok"
    error = None
    t0 = 0.0
    t1 = 0.0
    pid = 0
    tid = 0
    n_dropped = 0

    @property
    def recording(self) -> bool:
        return False

    @property
    def finished(self) -> bool:
        return True

    @property
    def duration(self) -> float:
        return 0.0

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def child(self, name: str, **attrs: Any) -> "_NoopSpan":
        return self

    def adopt(self, child: "Span") -> "Span":
        return child

    def fail(self, error: "BaseException | str") -> "_NoopSpan":
        return self

    def finish(self, error=None) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "NoopSpan()"


#: The singleton inert span returned by every no-op fast path.
NOOP_SPAN = _NoopSpan()

_current: "contextvars.ContextVar[Span | _NoopSpan]" = \
    contextvars.ContextVar("repro_obs_span", default=NOOP_SPAN)


def current_span() -> "Span | _NoopSpan":
    """The ambient span for this thread/task (noop when untraced)."""
    return _current.get()


class use_span:
    """Context manager making ``span`` the ambient span without touching
    its lifetime — used to re-activate a captured span in a scheduler
    worker thread or a packed-dispatch closure."""

    __slots__ = ("_span", "_token")

    def __init__(self, span: "Span | _NoopSpan") -> None:
        self._span = span

    def __enter__(self) -> "Span | _NoopSpan":
        self._token = _current.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        _current.reset(self._token)


def span(name: str, **attrs: Any) -> "Span | _NoopSpan":
    """Open a child stage under the ambient span.

    The universal instrumentation entry point: returns a context
    manager that records ``name`` when a trace is active, and the
    shared :data:`NOOP_SPAN` (one ContextVar read, zero allocation)
    when it is not.
    """
    parent = _current.get()
    if not parent.recording:
        return NOOP_SPAN
    return parent.child(name, **attrs)


class Tracer:
    """Owns trace collection: the on/off switch, deterministic
    sampling, and a bounded buffer of finished request trees."""

    def __init__(self, enabled: bool = False, sample_rate: float = 1.0,
                 max_traces: int = 4096) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], "
                             f"got {sample_rate}")
        self.enabled = enabled
        self.sample_rate = sample_rate
        self.max_traces = max_traces
        self._acc = 0.0
        self._lock = threading.Lock()
        self._finished: "deque[Span]" = deque(maxlen=max_traces)
        self.n_started = 0
        self.n_unsampled = 0
        #: Finished roots evicted from the bounded buffer unseen.
        self.n_buffer_dropped = 0
        #: Children discarded by the per-span ``MAX_CHILDREN`` cap,
        #: accumulated over recorded trees.
        self.n_child_dropped = 0

    # -- sampling ----------------------------------------------------------
    def _sampled(self) -> bool:
        """Deterministic rate limiter: an accumulator instead of a PRNG
        so ``sample_rate=0.25`` keeps exactly every fourth request and
        tests never flake."""
        with self._lock:
            self._acc += self.sample_rate
            if self._acc >= 1.0:
                self._acc -= 1.0
                return True
            self.n_unsampled += 1
            return False

    # -- span creation -----------------------------------------------------
    def trace(self, name: str, **attrs: Any) -> "Span | _NoopSpan":
        """Start a root span for a new request (or the noop singleton
        when disabled/unsampled).  Use as a context manager, or pair
        with an explicit ``finish()``; finished roots land in the
        buffer that :meth:`drain` empties."""
        if not self.enabled or not self._sampled():
            return NOOP_SPAN
        with self._lock:
            self.n_started += 1
        return Span(name, attrs, _sink=self._record)

    def start_detached(self, name: str, **attrs: Any) -> "Span | _NoopSpan":
        """A recording span that is *not* a buffered root — its subtree
        is grafted into request trees by the caller (the lane packer's
        shared dispatch trace)."""
        if not self.enabled:
            return NOOP_SPAN
        return Span(name, attrs)

    def _record(self, root: Span) -> None:
        with self._lock:
            if (self.max_traces
                    and len(self._finished) >= self.max_traces):
                self.n_buffer_dropped += 1
            self._finished.append(root)
            self.n_child_dropped += sum(
                node.n_dropped for node in root.walk())
        # Span edge → flight recorder: root completions are the
        # black-box breadcrumb trail of the request pipeline.
        duration = (root.t1 - root.t0
                    if root.t1 is not None and root.t0 is not None
                    else None)
        get_flight_recorder().record("span.root", name=root.name,
                                     duration_s=duration)

    def drop_stats(self) -> "dict[str, int]":
        """Silent-loss counters (exported as
        ``repro_trace_dropped_total{reason=...}``)."""
        with self._lock:
            return {"buffer": self.n_buffer_dropped,
                    "children": self.n_child_dropped}

    # -- consumption -------------------------------------------------------
    def finished_traces(self) -> "list[Span]":
        with self._lock:
            return list(self._finished)

    def drain(self) -> "list[Span]":
        """Return and clear the finished-trace buffer."""
        with self._lock:
            out = list(self._finished)
            self._finished.clear()
            return out

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
            self._acc = 0.0
            self.n_started = 0
            self.n_unsampled = 0
            self.n_buffer_dropped = 0
            self.n_child_dropped = 0


#: Process-wide default tracer; disabled (and therefore free) unless a
#: service, CLI flag, or test switches it on.
_GLOBAL_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    return _GLOBAL_TRACER
