"""Process-wide metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` unifies every telemetry surface in the
repo.  Hot paths mutate native :class:`Counter` / :class:`Gauge` /
:class:`Histogram` instruments; pre-existing surfaces that keep their
own state (``ServeMetrics``, ``CommandStats``, replica/router
counters) plug in as *collectors* — callables invoked at scrape time
that return :class:`Sample` rows — so nothing is double-accounted and
legacy snapshots stay authoritative.

Two read paths: :meth:`MetricsRegistry.snapshot` (JSON-friendly dict)
and :meth:`MetricsRegistry.prometheus_text` (Prometheus text
exposition format, consumable by ``promtool``/Grafana agents and the
``python -m repro stats`` CLI).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterable

#: Fixed exponential histogram buckets (seconds): 10µs · 2^i, i<20 —
#: spans 10µs to ~5.2s which covers every latency in the simulator.
DEFAULT_BUCKETS = tuple(1e-5 * 2.0 ** i for i in range(20))

LabelDict = "dict[str, str]"


def _label_key(labels: "dict[str, str]") -> "tuple[tuple[str, str], ...]":
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(items: "tuple[tuple[str, str], ...]") -> str:
    if not items:
        return ""
    # Prometheus text exposition: backslash must be escaped first,
    # then the quote and the (otherwise row-breaking) newline.
    body = ",".join(
        '%s="%s"' % (k, v.replace("\\", "\\\\").replace('"', '\\"')
                     .replace("\n", "\\n"))
        for k, v in items)
    return "{%s}" % body


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


@dataclass(frozen=True)
class Sample:
    """One exposition row, as produced by metrics and collectors."""
    name: str
    value: float
    labels: "tuple[tuple[str, str], ...]" = ()
    type: str = "gauge"
    help: str = ""


class _Metric:
    """Shared machinery: a named family of label→value series."""

    type = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._series: "dict[tuple[tuple[str, str], ...], float]" = {}

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def series(self) -> "dict[tuple[tuple[str, str], ...], float]":
        with self._lock:
            return dict(self._series)

    def reset(self) -> None:
        with self._lock:
            self._series.clear()

    def samples(self) -> "list[Sample]":
        series = self.series()
        if not series:
            # Schema stability: a registered instrument that has seen
            # no traffic still exposes one zero-valued (label-less)
            # series, so scrapes carry the same metric families from
            # process start — dashboards never see families pop into
            # existence at first traffic.
            return [Sample(self.name, 0.0, (), self.type, self.help)]
        return [Sample(self.name, v, k, self.type, self.help)
                for k, v in sorted(series.items())]


class Counter(_Metric):
    """Monotonically increasing count (requests, errors, retries)."""

    type = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount


class Gauge(_Metric):
    """Point-in-time value (queue depth, RTT, inflight lanes)."""

    type = "gauge"

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount


class Histogram:
    """Cumulative fixed-bucket histogram in the Prometheus layout:
    ``name_bucket{le=...}`` counts, plus ``name_sum``/``name_count``."""

    type = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: "Iterable[float] | None" = None) -> None:
        self.name = name
        self.help = help
        bounds = tuple(sorted(buckets)) if buckets else DEFAULT_BUCKETS
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._lock = threading.Lock()
        # label key -> (per-bucket counts + inf slot, sum)
        self._series: "dict[tuple[tuple[str, str], ...], list]" = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            row = self._series.get(key)
            if row is None:
                row = [[0] * (len(self.bounds) + 1), 0.0]
                self._series[key] = row
            counts, _ = row
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
            row[1] += value

    def count(self, **labels: str) -> int:
        with self._lock:
            row = self._series.get(_label_key(labels))
            return 0 if row is None else sum(row[0])

    def sum(self, **labels: str) -> float:
        with self._lock:
            row = self._series.get(_label_key(labels))
            return 0.0 if row is None else row[1]

    def quantile(self, q: float, **labels: str) -> float:
        """Upper-bound estimate of quantile ``q`` from bucket counts
        (returns the smallest bound whose cumulative count covers q)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            row = self._series.get(_label_key(labels))
            if row is None or sum(row[0]) == 0:
                return 0.0
            counts = row[0]
            target = q * sum(counts)
            seen = 0
            for i, n in enumerate(counts[:-1]):
                seen += n
                if seen >= target:
                    return self.bounds[i]
            return math.inf

    def reset(self) -> None:
        with self._lock:
            self._series.clear()

    def samples(self) -> "list[Sample]":
        out: list[Sample] = []
        with self._lock:
            rows = {k: ([list(v[0])], v[1]) for k, v in
                    self._series.items()}
        if not rows:
            # Schema stability before first observation: expose the
            # full zero-valued bucket/sum/count family (see _Metric).
            rows = {(): ([[0] * (len(self.bounds) + 1)], 0.0)}
        for key, ((counts,), total) in sorted(rows.items()):
            cum = 0
            for bound, n in zip(self.bounds, counts[:-1]):
                cum += n
                out.append(Sample(self.name + "_bucket", cum,
                                  key + (("le", _format_value(bound)),),
                                  self.type, self.help))
            cum += counts[-1]
            out.append(Sample(self.name + "_bucket", cum,
                              key + (("le", "+Inf"),),
                              self.type, self.help))
            out.append(Sample(self.name + "_sum", total, key,
                              self.type, self.help))
            out.append(Sample(self.name + "_count", cum, key,
                              self.type, self.help))
        return out


@dataclass
class _CollectorEntry:
    fn: "Callable[[], Iterable[Sample]]"
    name: str = ""


class MetricsRegistry:
    """Get-or-create registry of instruments plus scrape-time
    collectors; the single source for exporters and the CLI."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: "dict[str, Any]" = {}
        self._collectors: "list[_CollectorEntry]" = []

    # -- instruments -------------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {cls.__name__}")
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: "Iterable[float] | None" = None) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    # -- collectors --------------------------------------------------------
    def register_collector(self, fn: "Callable[[], Iterable[Sample]]",
                           name: str = "") -> None:
        """Add a scrape-time sample source (adapter over a legacy
        surface).  Re-registering the same non-empty ``name`` replaces
        the previous collector, so re-created services do not stack."""
        with self._lock:
            if name:
                self._collectors = [c for c in self._collectors
                                    if c.name != name]
            self._collectors.append(_CollectorEntry(fn, name))

    def unregister_collector(self, name: str) -> None:
        with self._lock:
            self._collectors = [c for c in self._collectors
                                if c.name != name]

    # -- scraping ----------------------------------------------------------
    def collect(self) -> "list[Sample]":
        with self._lock:
            metrics = list(self._metrics.values())
            collectors = list(self._collectors)
        samples: list[Sample] = []
        for metric in metrics:
            samples.extend(metric.samples())
        for entry in collectors:
            try:
                samples.extend(entry.fn())
            except Exception as exc:  # noqa: BLE001 - scrape must survive
                samples.append(Sample("repro_collector_errors_total", 1.0,
                                      (("collector", entry.name or "?"),
                                       ("error", type(exc).__name__)),
                                      "counter",
                                      "collectors that raised at scrape"))
        return samples

    def snapshot(self) -> "dict[str, Any]":
        """JSON-friendly scrape: {metric name: {type, help, series}}."""
        out: "dict[str, Any]" = {}
        for s in self.collect():
            entry = out.setdefault(s.name, {"type": s.type,
                                            "help": s.help, "series": []})
            entry["series"].append({"labels": dict(s.labels),
                                    "value": s.value})
        return out

    def prometheus_text(self) -> str:
        """Prometheus text exposition format (one scrape)."""
        lines: list[str] = []
        seen_header: set[str] = set()
        for s in self.collect():
            family = s.name
            for suffix in ("_bucket", "_sum", "_count"):
                if s.type == "histogram" and family.endswith(suffix):
                    family = family[: -len(suffix)]
                    break
            if family not in seen_header:
                seen_header.add(family)
                if s.help:
                    lines.append(f"# HELP {family} {s.help}")
                lines.append(f"# TYPE {family} {s.type}")
            lines.append(f"{s.name}{_format_labels(s.labels)} "
                         f"{_format_value(s.value)}")
        return "\n".join(lines) + "\n"

    def clear(self) -> None:
        """Drop every instrument and collector (bench/test reuse)."""
        with self._lock:
            self._metrics.clear()
            self._collectors.clear()


#: Process-wide default registry used when callers don't inject one.
_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _GLOBAL_REGISTRY
