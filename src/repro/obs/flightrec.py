"""Always-on flight recorder: a bounded ring of structured events.

Every process keeps a lock-cheap ring buffer of the last few thousand
structured events — admissions, dispatches, shed decisions, failovers,
PMU deltas, span edges.  In steady state it costs one dict build and a
deque append per event; when something dies the ring is the black box.

Cross-process story (the replica tier):

* replica children configure a *spill file* via
  :meth:`FlightRecorder.configure_spill`; every recorded event
  rewrites it (atomic tmp+rename), so the file on disk is always the
  child's current ring.  SIGKILL cannot be trapped — continuous
  spilling is what makes the kill drill observable.
* on clean exit a child ships its ring home over the control pipe and
  removes the spill; the parent folds it in via
  :meth:`FlightRecorder.adopt_segment`.
* when the parent buries a crashed replica it reads the leftover
  spill file (:meth:`FlightRecorder.adopt_spill_file`).

:meth:`FlightRecorder.dump` merges the local ring with every adopted
segment into one time-sorted postmortem dict;
:meth:`FlightRecorder.dump_to` writes it as JSON (the CI failure
artifact and the ``--postmortem`` output of the kill drill).
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque

from repro.obs import clock

#: Ring capacity: small enough to merge and read, large enough to
#: cover the final seconds of a busy process.
DEFAULT_CAPACITY = 4096


class FlightRecorder:
    """Bounded ring buffer of structured events.

    ``record()`` is the hot path: one timestamp, one dict, one
    lock-guarded append.  Everything else (snapshots, adoption,
    dumps) is cold postmortem machinery.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 source: str = "main") -> None:
        self.capacity = int(capacity)
        self.source = source
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=self.capacity)
        self.n_recorded = 0
        #: Segments adopted from other processes, keyed by source.
        self._segments: "dict[str, dict]" = {}
        self._spill_path: "str | None" = None
        self._spill_every = 1
        self._since_spill = 0

    # ------------------------------------------------------------------
    # hot path
    # ------------------------------------------------------------------
    def record(self, kind: str, **fields) -> None:
        """Append one event; never raises (a broken spill disk must
        not take down the serving path)."""
        event = {"t": clock.now(), "kind": kind}
        if fields:
            event.update(fields)
        with self._lock:
            self._events.append(event)
            self.n_recorded += 1
            spill = False
            if self._spill_path is not None:
                self._since_spill += 1
                if self._since_spill >= self._spill_every:
                    self._since_spill = 0
                    spill = True
        if spill:
            try:
                self._write_spill()
            except OSError:
                pass

    @property
    def n_dropped(self) -> int:
        """Events evicted from the ring by newer ones."""
        with self._lock:
            return max(0, self.n_recorded - len(self._events))

    # ------------------------------------------------------------------
    # spill files (replica children)
    # ------------------------------------------------------------------
    def configure_spill(self, path: str, every: int = 1) -> None:
        """Continuously mirror the ring to ``path`` — every ``every``
        events (1 == after each record, the crash-safe default)."""
        with self._lock:
            self._spill_path = path
            self._spill_every = max(1, int(every))
            self._since_spill = 0

    def _write_spill(self) -> None:
        path = self._spill_path
        if path is None:
            return
        payload = self.snapshot()
        tmp = f"{path}.tmp-{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)

    def spill_now(self) -> None:
        """Force a spill write (used right before risky sections)."""
        if self._spill_path is not None:
            try:
                self._write_spill()
            except OSError:
                pass

    def remove_spill(self) -> None:
        """Delete the spill file (clean exit: the ring ships home over
        the pipe instead)."""
        with self._lock:
            path, self._spill_path = self._spill_path, None
        if path is not None:
            try:
                os.unlink(path)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # snapshots and segment adoption
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Picklable/JSONable copy of this process's ring."""
        with self._lock:
            events = list(self._events)
            recorded = self.n_recorded
        return {"source": self.source, "pid": os.getpid(),
                "n_recorded": recorded,
                "n_dropped": max(0, recorded - len(events)),
                "events": events}

    def events(self) -> "list[dict]":
        with self._lock:
            return list(self._events)

    def adopt_segment(self, payload: dict,
                      source: "str | None" = None) -> None:
        """Fold another process's :meth:`snapshot` into future dumps
        (later segments from the same source replace earlier ones)."""
        if not isinstance(payload, dict) or "events" not in payload:
            return
        key = source or payload.get("source") or "unknown"
        with self._lock:
            self._segments[str(key)] = payload

    def adopt_spill_file(self, path: str,
                         source: "str | None" = None) -> bool:
        """Adopt a crashed process's spill file; ``False`` when the
        file is missing or unreadable."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return False
        self.adopt_segment(payload, source=source)
        return True

    def segments(self) -> "list[str]":
        with self._lock:
            return sorted(self._segments)

    # ------------------------------------------------------------------
    # postmortem dumps
    # ------------------------------------------------------------------
    def dump(self, reason: str = "") -> dict:
        """Merge the local ring and every adopted segment into one
        postmortem: segments keyed by source, plus a single
        time-sorted event list with each event tagged ``source``."""
        local = self.snapshot()
        with self._lock:
            segments = {key: dict(value)
                        for key, value in self._segments.items()}
        segments[local["source"]] = local
        merged: "list[dict]" = []
        for key, segment in segments.items():
            for event in segment.get("events", ()):
                tagged = dict(event)
                tagged["source"] = key
                merged.append(tagged)
        merged.sort(key=lambda e: e.get("t", 0.0))
        return {"reason": reason,
                "generated_unix_time": clock.wall(),
                "pid": os.getpid(),
                "n_events": len(merged),
                "segments": segments,
                "events": merged}

    def dump_to(self, path: "str | None" = None,
                reason: str = "") -> str:
        """Write :meth:`dump` as JSON; returns the path written."""
        if path is None:
            directory = os.environ.get("REPRO_FLIGHTREC_DIR",
                                       ".flightrec")
            os.makedirs(directory, exist_ok=True)
            path = os.path.join(
                directory,
                f"flightrec-{os.getpid()}-{self.n_recorded}.json")
        else:
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.dump(reason), handle, indent=1,
                      default=str)
        return path

    def clear(self) -> None:
        """Forget everything (tests)."""
        with self._lock:
            self._events.clear()
            self._segments.clear()
            self.n_recorded = 0
            self._since_spill = 0


_GLOBAL_RECORDER = FlightRecorder()


def get_flight_recorder() -> FlightRecorder:
    """The process-global flight recorder (every hook records here)."""
    return _GLOBAL_RECORDER


def postmortem(reason: str, path: "str | None" = None) -> "str | None":
    """Best-effort postmortem dump of the global recorder; returns the
    written path, or ``None`` when even that failed."""
    try:
        return get_flight_recorder().dump_to(path, reason=reason)
    except OSError:
        return None
