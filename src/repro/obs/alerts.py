"""SLO burn-rate alerting over the metrics registry.

Declarative :class:`AlertRule`\\ s are evaluated by an
:class:`AlertManager` against registry scrapes using the multi-window
burn-rate pattern: a rule fires only when its *burn* (how hard the
sampled value breaches the threshold) is sustained over BOTH a short
and a long window — the short window gives fast detection, the long
window suppresses blips.  Resolution is driven by the short window
alone (fast recovery) with hysteresis via ``resolve_burn``.

Three sampling modes cover the SLO families this repo exports:

* ``"value"`` — instantaneous gauges (p99 latency, PMU occupancy):
  the windowed burn is the mean breach ratio of the samples inside
  the window.
* ``"rate"`` — cumulative counters read as per-second rates (goodput
  from ``repro_serve_slo_requests_total{state="on_time"}``): the
  windowed value is the counter delta over the window divided by the
  wall time it spans.
* ``"ratio"`` — a pair of cumulative counters read as a windowed
  fraction (shed rate = shed Δ / submitted Δ).

Rules sample through a :class:`MetricsView` (an indexed registry
scrape), so anything a collector exports can drive an alert.
Transitions notify subscribers and are flight-recorded
(``alert.fire`` / ``alert.resolve``), which is how ``repro top``
shows them.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from repro.obs import clock
from repro.obs.flightrec import get_flight_recorder
from repro.obs.metrics import MetricsRegistry, get_registry

_EPS = 1e-9


class MetricsView:
    """One registry scrape, indexed by sample name for rule lambdas."""

    def __init__(self, samples) -> None:
        self._index: "dict[str, list]" = {}
        for sample in samples:
            self._index.setdefault(sample.name, []).append(
                (dict(sample.labels), sample.value))

    def _matching(self, name: str, labels: dict):
        for have, value in self._index.get(name, ()):
            if all(have.get(k) == v for k, v in labels.items()):
                yield value

    def value(self, name: str, default=None, **labels):
        """First sample of ``name`` whose labels contain ``labels``."""
        for value in self._matching(name, labels):
            return value
        return default

    def sum(self, name: str, **labels) -> "float | None":
        values = list(self._matching(name, labels))
        return sum(values) if values else None

    def max(self, name: str, **labels) -> "float | None":
        values = list(self._matching(name, labels))
        return max(values) if values else None


@dataclass
class AlertRule:
    """One declarative burn-rate rule.

    ``sample(view)`` returns the current observation — a float for
    ``value``/``rate`` mode, a ``(numerator, denominator)`` pair for
    ``ratio`` mode, or ``None`` when the rule does not apply yet
    (no traffic, no replicas, ...).
    """

    name: str
    sample: "callable"
    threshold: float
    kind: str = "ceiling"           # "ceiling" | "floor"
    mode: str = "value"             # "value" | "rate" | "ratio"
    short_s: float = 1.0
    long_s: float = 5.0
    fire_burn: float = 1.0
    resolve_burn: float = 0.9
    description: str = ""

    def breach(self, value: float) -> float:
        """Burn ratio: > 1 means the threshold is being violated."""
        if self.kind == "floor":
            return self.threshold / max(value, _EPS)
        return value / max(self.threshold, _EPS)


@dataclass
class AlertEvent:
    """One firing/resolution transition, handed to subscribers."""

    rule: str
    state: str                      # "firing" | "resolved"
    value: "float | None"
    burn_short: "float | None"
    burn_long: "float | None"
    at: float
    description: str = ""

    def __str__(self) -> str:
        burn = ("" if self.burn_short is None
                else f" (burn {self.burn_short:.2f}/{self.burn_long:.2f})")
        return f"[{self.state.upper()}] {self.rule}{burn}"


@dataclass
class AlertState:
    rule: AlertRule
    firing: bool = False
    since: "float | None" = None
    last_value: "float | None" = None
    burn_short: "float | None" = None
    burn_long: "float | None" = None
    history: deque = field(default_factory=deque)


class AlertManager:
    """Evaluates rules against a registry; notifies on transitions."""

    def __init__(self, registry: "MetricsRegistry | None" = None,
                 rules=()) -> None:
        self.registry = registry or get_registry()
        self._lock = threading.Lock()
        self._states: "dict[str, AlertState]" = {}
        self._subscribers: "list" = []
        self.events: "list[AlertEvent]" = []
        for rule in rules:
            self.add_rule(rule)

    def add_rule(self, rule: AlertRule) -> None:
        with self._lock:
            self._states[rule.name] = AlertState(rule=rule)

    def subscribe(self, fn) -> None:
        """``fn(event)`` is called on every fire/resolve transition."""
        with self._lock:
            self._subscribers.append(fn)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    @staticmethod
    def _window(history, now: float, window_s: float):
        """The history points inside ``[now - window_s, now]``."""
        return [point for point in history
                if point[0] >= now - window_s - _EPS]

    def _burn(self, state: AlertState, now: float,
              window_s: float) -> "float | None":
        rule = state.rule
        points = self._window(state.history, now, window_s)
        if not points:
            return None
        if rule.mode == "value":
            mean = sum(p[1] for p in points) / len(points)
            return rule.breach(mean)
        if rule.mode == "rate":
            t0, c0 = points[0]
            t1, c1 = points[-1]
            if t1 - t0 <= _EPS:
                return None
            return rule.breach((c1 - c0) / (t1 - t0))
        # ratio: payload is (numerator, denominator) cumulative pairs
        _, (num0, den0) = points[0]
        _, (num1, den1) = points[-1]
        if den1 - den0 <= _EPS:
            return None
        return rule.breach((num1 - num0) / (den1 - den0))

    def evaluate(self, now: "float | None" = None
                 ) -> "list[AlertEvent]":
        """One evaluation tick: scrape, sample every rule, update burn
        windows, emit transition events."""
        if now is None:
            now = clock.now()
        view = MetricsView(self.registry.collect())
        transitions: "list[AlertEvent]" = []
        with self._lock:
            states = list(self._states.values())
            subscribers = list(self._subscribers)
        for state in states:
            rule = state.rule
            try:
                observed = rule.sample(view)
            except Exception:
                observed = None
            if observed is None:
                continue
            horizon = now - max(rule.long_s, rule.short_s) * 2 - 1.0
            state.history.append((now, observed))
            while state.history and state.history[0][0] < horizon:
                state.history.popleft()
            state.last_value = (observed if rule.mode != "ratio"
                                else None)
            burn_short = self._burn(state, now, rule.short_s)
            burn_long = self._burn(state, now, rule.long_s)
            state.burn_short, state.burn_long = burn_short, burn_long
            event = None
            if (not state.firing and burn_short is not None
                    and burn_long is not None
                    and burn_short >= rule.fire_burn
                    and burn_long >= rule.fire_burn):
                state.firing, state.since = True, now
                event = AlertEvent(rule.name, "firing",
                                   state.last_value, burn_short,
                                   burn_long, now, rule.description)
            elif (state.firing and burn_short is not None
                  and burn_short < rule.resolve_burn):
                state.firing, state.since = False, now
                event = AlertEvent(rule.name, "resolved",
                                   state.last_value, burn_short,
                                   burn_long, now, rule.description)
            if event is not None:
                transitions.append(event)
                get_flight_recorder().record(
                    f"alert.{'fire' if event.state == 'firing' else 'resolve'}",
                    rule=event.rule, value=event.value,
                    burn_short=event.burn_short,
                    burn_long=event.burn_long)
                for fn in subscribers:
                    try:
                        fn(event)
                    except Exception:
                        pass
        self.events.extend(transitions)
        return transitions

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def state(self, name: str) -> "AlertState | None":
        with self._lock:
            return self._states.get(name)

    def active(self) -> "list[AlertState]":
        with self._lock:
            return [s for s in self._states.values() if s.firing]

    def rules(self) -> "list[AlertRule]":
        with self._lock:
            return [s.rule for s in self._states.values()]


# ----------------------------------------------------------------------
# the stock rule set
# ----------------------------------------------------------------------
def _goodput_sample(view: MetricsView):
    carrying = view.value("repro_serve_slo_requests_total",
                          state="with_deadline")
    if not carrying:
        return None
    return view.value("repro_serve_slo_requests_total", state="on_time")


def _p99_sample(view: MetricsView):
    done = view.value("repro_serve_requests_total", state="completed")
    if not done:
        return None
    return view.value("repro_serve_latency_ms", quantile="p99")


def _shed_sample(view: MetricsView):
    submitted = view.value("repro_serve_requests_total",
                           state="submitted")
    shed = view.value("repro_serve_requests_total", state="shed")
    if submitted is None or shed is None:
        return None
    return (shed, submitted)


def _rtt_sample(view: MetricsView):
    return view.max("repro_replica_rtt_avg_seconds")


def _occupancy_sample(view: MetricsView):
    if not view.value("repro_pmu_dispatches_total"):
        return None
    return view.max("repro_pmu_window_utilization")


def default_rules(*, goodput_floor_rps: "float | None" = None,
                  p99_ceiling_ms: "float | None" = None,
                  shed_rate_max: "float | None" = None,
                  rtt_ceiling_s: "float | None" = None,
                  occupancy_floor: "float | None" = None,
                  short_s: float = 1.0,
                  long_s: float = 5.0) -> "list[AlertRule]":
    """The stock SLO rule set; pass a threshold to enable each rule."""
    rules: "list[AlertRule]" = []
    if goodput_floor_rps is not None:
        rules.append(AlertRule(
            "goodput_floor", _goodput_sample, goodput_floor_rps,
            kind="floor", mode="rate", short_s=short_s, long_s=long_s,
            description="windowed on-time completions per second "
                        "under the goodput floor"))
    if p99_ceiling_ms is not None:
        rules.append(AlertRule(
            "p99_ceiling", _p99_sample, p99_ceiling_ms,
            kind="ceiling", mode="value", short_s=short_s,
            long_s=long_s,
            description="p99 request latency above the SLO ceiling"))
    if shed_rate_max is not None:
        rules.append(AlertRule(
            "shed_rate", _shed_sample, shed_rate_max,
            kind="ceiling", mode="ratio", short_s=short_s,
            long_s=long_s,
            description="fraction of submissions shed on lapsed "
                        "deadlines"))
    if rtt_ceiling_s is not None:
        rules.append(AlertRule(
            "replica_rtt", _rtt_sample, rtt_ceiling_s,
            kind="ceiling", mode="value", short_s=short_s,
            long_s=long_s,
            description="slowest replica heartbeat RTT (EMA) above "
                        "ceiling"))
    if occupancy_floor is not None:
        rules.append(AlertRule(
            "pmu_occupancy_collapse", _occupancy_sample,
            occupancy_floor, kind="floor", mode="value",
            short_s=short_s, long_s=long_s,
            description="device utilization collapsed while the "
                        "service is nominally serving"))
    return rules
