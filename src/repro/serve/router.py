"""``ReplicaRouter``: placement + failover over a :class:`ReplicaSet`.

:class:`~repro.serve.SimdramService` packs many small requests into
wide dispatches; this router decides **which replica process** runs
each packed dispatch and keeps every accepted request alive across
replica crashes:

* **placement** — consistent hashing by *kernel identity* (the pack
  key's ``kernel_identity`` half): the same kernel lands on the same
  replica, so each replica's µProgram/executor caches stay hot for its
  share of the key space instead of every replica cold-starting every
  kernel.  The hash ring carries virtual nodes per replica and is
  rebuilt from the live set, so a death only remaps the dead replica's
  arc;
* **least-loaded fallback** — a skewed workload (one hot kernel) would
  pin all traffic to one replica; when the hash-preferred replica has
  more than ``fallback_depth`` in-flight dispatches above the least
  loaded live replica, the dispatch overflows to the least loaded one;
* **warmup** — the serve manifest passed at construction warms every
  replica's kernel cache at spawn (`ReplicaSet` replays it inside each
  child before it reports ready), and :meth:`warm` broadcasts later
  manifests to the live set;
* **failover** — the replica set's death handler hands the router the
  dead replica's in-flight jobs (descriptor + payload + the caller's
  still-pending ``Future``); the router re-submits each to a survivor
  reusing the *same* future, so the ``ServeHandle`` a user holds
  resolves normally with no visible difference beyond latency.  Only
  when no replica survives does the handle fail, with
  :class:`~repro.errors.ReplicaError`.

The router implements the service's asynchronous dispatch-target
protocol (``submit_pack`` + completion callback + ``barrier``), so
``SimdramService(ReplicaRouter(4))`` is a drop-in scale-out of
``SimdramService(cluster)``.
"""

from __future__ import annotations

import hashlib
import threading
import time
from bisect import bisect_right
from typing import Callable, Sequence

import numpy as np

from repro.errors import DeadlineExceeded, ReplicaError
from repro.obs.flightrec import get_flight_recorder
from repro.obs.metrics import Sample
from repro.obs.tracing import span as obs_span
from repro.obs.tracing import use_span
from repro.runtime.replica import PendingJob, ReplicaSet, WorkDescriptor

#: Virtual nodes per replica on the hash ring.  Enough that each
#: replica's share of the key space stays within a few percent of
#: uniform; cheap to rebuild (rings are cached per live set).
VNODES = 64


def _stable_hash(value) -> int:
    """Position a key on the ring — stable across processes and runs
    (``repr`` of the pack-key tuple: strings, ints, engine names)."""
    digest = hashlib.blake2b(repr(value).encode(), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


class ReplicaRouter:
    """Consistent-hash placement with least-loaded fallback and
    in-flight failover (see module docstring)."""

    def __init__(self, replicas: "ReplicaSet | int", *,
                 n_modules: int = 1, config=None,
                 manifest: Sequence[tuple] | None = None,
                 seed: int | None = 1,
                 fallback_depth: int = 1,
                 vnodes: int = VNODES, **replica_kwargs) -> None:
        if isinstance(replicas, int):
            replicas = ReplicaSet(replicas, n_modules=n_modules,
                                  config=config, manifest=manifest,
                                  seed=seed, **replica_kwargs)
            self._owns_replicas = True
        else:
            self._owns_replicas = False
        self.replicas = replicas
        self.fallback_depth = fallback_depth
        self.vnodes = vnodes
        self._rings: dict[tuple[int, ...], tuple[list[int], list[int]]] = {}
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._outstanding = 0
        #: Packed dispatches re-homed by the fallback policy.
        self.n_rebalanced = 0
        #: In-flight jobs re-submitted to a survivor after a death.
        self.n_requeued = 0
        #: Jobs that failed because no replica survived.
        self.n_orphaned = 0
        self._metrics = None
        replicas.set_death_handler(self._on_death)

    # ------------------------------------------------------------------
    # dispatch-target protocol (what SimdramService talks to)
    # ------------------------------------------------------------------
    is_cluster = True
    is_async = True

    @property
    def lanes(self) -> int:
        """Lane capacity of ONE dispatch: a packed group runs on a
        single replica, so the packer's flush bound is one replica's
        lane count — replication multiplies concurrent dispatches, not
        the width of each."""
        return self.replicas.lanes

    @property
    def backend(self) -> str:
        return self.replicas.backend

    def attach_metrics(self, metrics) -> None:
        """Let the owning service's :class:`ServeMetrics` see router
        events (per-replica dispatch counters, failovers)."""
        self._metrics = metrics

    def submit_pack(self, request, vectors: list[np.ndarray], lanes: int,
                    on_done: Callable) -> None:
        """Place one packed dispatch and return immediately.

        ``on_done(values, error, replica_id)`` fires exactly once from
        a router/replica thread when the dispatch resolves — after any
        transparent failover.
        """
        desc = WorkDescriptor(
            kind=request.kind, op_name=request.op_name,
            root=request.root, slot_names=tuple(request.slot_names),
            width=request.width, engine=request.engine.name,
            deadline=getattr(request, "deadline", None))
        with self._lock:
            self._outstanding += 1

        def _resolved(future) -> None:
            try:
                values, info = future.result()
            except BaseException as error:  # noqa: BLE001 - relayed
                self._settle()
                on_done(None, error, None)
            else:
                self._settle()
                on_done(values, None, info.get("replica_id"))

        try:
            future = self._submit_with_retry(request.key, desc,
                                             vectors, lanes)
        except BaseException as error:  # noqa: BLE001 - fail this pack
            self._settle()
            on_done(None, error, None)
            return
        future.add_done_callback(_resolved)

    def _settle(self) -> None:
        with self._lock:
            self._outstanding -= 1
            if self._outstanding == 0:
                self._idle.notify_all()

    def barrier(self, timeout: float | None = None) -> bool:
        """Wait until every submitted pack has called back."""
        with self._lock:
            return self._idle.wait_for(
                lambda: self._outstanding == 0, timeout)

    def warm(self, op_or_root, width: int, engine) -> None:
        """Broadcast one kernel to every live replica's caches (the
        service's ``warmup`` target hook)."""
        name = engine if isinstance(engine, str) else engine.name
        self.replicas.warm([(op_or_root, width, name)])

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def _ring(self, alive: tuple[int, ...]
              ) -> tuple[list[int], list[int]]:
        ring = self._rings.get(alive)
        if ring is None:
            points = sorted(
                (_stable_hash(("replica", rid, v)), rid)
                for rid in alive for v in range(self.vnodes))
            ring = ([h for h, _ in points], [r for _, r in points])
            self._rings[alive] = ring
        return ring

    def place(self, key) -> int:
        """Choose a live replica for a pack key: the consistent-hash
        owner, unless it is running ``fallback_depth`` more in-flight
        dispatches than the least loaded replica (then the least
        loaded).  Raises :class:`ReplicaError` with no live replica."""
        alive = tuple(self.replicas.alive_ids())
        if not alive:
            raise ReplicaError("no live replica to place on")
        hashes, owners = self._ring(alive)
        index = bisect_right(hashes, _stable_hash(key)) % len(owners)
        preferred = owners[index]
        loads = {rid: self.replicas.n_inflight(rid) for rid in alive}
        least = min(loads.values())
        if loads[preferred] - least > self.fallback_depth:
            preferred = min(alive, key=lambda rid: (loads[rid], rid))
            with self._lock:
                self.n_rebalanced += 1
        return preferred

    def _submit_with_retry(self, key, desc: WorkDescriptor,
                           vectors, lanes: int):
        """Submit, re-placing if the chosen replica dies under us."""
        while True:
            # One placement decision per attempt; the submission's
            # ``replica.transport`` span nests under it (the transport
            # is the decision's consequence).
            place_span = obs_span("router.place")
            try:
                replica_id = self.place(key)  # raises when none survive
            except BaseException as error:
                place_span.finish(error)
                raise
            place_span.set(replica=replica_id)
            try:
                with use_span(place_span):
                    future = self.replicas.submit(replica_id, desc,
                                                  vectors, lanes)
            except ReplicaError:
                place_span.finish("replica died during submit")
                continue  # that replica just died; place again
            place_span.finish()
            return future

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------
    def _on_death(self, replica_id: int,
                  jobs: "list[PendingJob]") -> None:
        """Re-home a dead replica's in-flight jobs onto survivors,
        reusing each job's original future so callers never notice."""
        if self._metrics is not None:
            self._metrics.record_failover(replica_id, len(jobs))
        get_flight_recorder().record(
            "router.failover", replica=replica_id,
            in_flight=len(jobs))
        for job in jobs:
            self._requeue(job)

    def _requeue(self, job: "PendingJob") -> None:
        retry_span = self._open_retry(job)
        try:
            self._requeue_under(job, retry_span)
        finally:
            retry_span.finish()

    @staticmethod
    def _open_retry(job: "PendingJob"):
        """A ``retry`` span recording the failover, with the dead
        attempt's (already-failed) ``replica.transport`` span
        re-parented under it — so the re-homed request's tree keeps the
        failure visible exactly where the re-decision happened."""
        failed = job.span
        parent = getattr(failed, "parent", None)
        if not (failed.recording and parent is not None):
            return failed.child("retry")  # noop when untraced
        retry = parent.child("retry", from_replica=job.attempts[-1],
                             attempts=list(job.attempts))
        if failed in parent.children:
            parent.children.remove(failed)
        retry.adopt(failed)
        return retry

    def _requeue_under(self, job: "PendingJob", retry_span) -> None:
        if job.desc.deadline is not None:
            # Failover respects the request's remaining SLO budget: a
            # job whose deadline already lapsed while its replica died
            # is shed, not re-homed — a survivor's lanes go to work
            # that can still be on time.  The retry span records the
            # budget either way, so post-mortems see how close it was.
            remaining = job.desc.deadline - time.monotonic()
            retry_span.set(deadline_remaining_s=remaining)
            if remaining <= 0:
                retry_span.fail("deadline lapsed during failover")
                get_flight_recorder().record(
                    "router.shed", job_id=job.job_id,
                    lapsed_s=-remaining)
                if not job.future.done():
                    job.future.set_exception(DeadlineExceeded(
                        f"request shed during failover: deadline "
                        f"lapsed {-remaining:.3f}s before a survivor "
                        f"could take it (tried {job.attempts})"))
                return
        while True:
            alive = self.replicas.alive_ids()
            if not alive:
                with self._lock:
                    self.n_orphaned += 1
                retry_span.fail("every replica died")
                if not job.future.done():
                    job.future.set_exception(ReplicaError(
                        f"request lost: every replica died "
                        f"(tried {job.attempts})"))
                return
            # Least-loaded, not hash-preferred: the hash owner just
            # died, and a requeue's priority is finishing, not cache
            # affinity.
            target = min(alive,
                         key=lambda rid:
                         (self.replicas.n_inflight(rid), rid))
            try:
                with use_span(retry_span):
                    self.replicas.submit(target, job.desc, job.vectors,
                                         job.lanes, future=job.future)
            except ReplicaError:
                continue  # that one died too; scan again
            with self._lock:
                self.n_requeued += 1
            get_flight_recorder().record(
                "router.requeue", job_id=job.job_id, target=target)
            return

    # ------------------------------------------------------------------
    # telemetry / lifecycle
    # ------------------------------------------------------------------
    def paging_stats(self):
        from repro.dram.commands import CommandStats
        total = CommandStats()
        for stats in self.replicas.stats().values():
            paging = stats.get("paging") or {}
            total.n_spills += paging.get("n_spills", 0)
            total.n_fills += paging.get("n_fills", 0)
            total.spill_bits += paging.get("spill_bits", 0)
            total.fill_bits += paging.get("fill_bits", 0)
        return total

    def busy_ns(self) -> float:
        return self.replicas.busy_ns()

    def kernel_cache_size(self) -> int:
        return max((stats.get("kernels_cached", 0)
                    for stats in self.replicas.stats().values()),
                   default=0)

    def replica_stats(self) -> dict:
        """Per-replica health plus the router's placement counters."""
        with self._lock:
            router = {"rebalanced": self.n_rebalanced,
                      "requeued": self.n_requeued,
                      "orphaned": self.n_orphaned,
                      "outstanding": self._outstanding}
        return {"replicas": self.replicas.stats(),
                "alive": self.replicas.alive_ids(),
                "deaths": self.replicas.deaths,
                "router": router}

    def prometheus(self) -> str:
        """Prometheus text exposition of just the replica tier (the
        service's registry scrapes the same samples when this router is
        its dispatch target)."""
        from repro.obs.metrics import MetricsRegistry
        registry = MetricsRegistry()
        registry.register_collector(
            lambda: replica_tier_samples(self.replica_stats()))
        return registry.prometheus_text()

    def kill(self, replica_id: int) -> None:
        """Hard-kill one replica (the failover drill's trigger)."""
        self.replicas.kill(replica_id)

    def close(self) -> None:
        self.barrier(timeout=60.0)
        if self._owns_replicas:
            self.replicas.close()

    def __enter__(self) -> "ReplicaRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def replica_tier_samples(tier: dict) -> "list[Sample]":
    """Project one :meth:`ReplicaRouter.replica_stats` snapshot into
    registry samples (the service's scrape-time collector calls this
    when its dispatch target exposes a replica tier)."""
    out: list[Sample] = []
    router = tier.get("router", {})
    for key, help_text in (
            ("rebalanced", "packs re-homed by the load fallback"),
            ("requeued", "in-flight jobs re-homed after a death"),
            ("orphaned", "jobs lost because no replica survived")):
        out.append(Sample(f"repro_router_{key}_total",
                          router.get(key, 0), (), "counter", help_text))
    out.append(Sample("repro_router_outstanding_packs",
                      router.get("outstanding", 0), (), "gauge",
                      "packs placed but not yet called back"))
    out.append(Sample("repro_replica_deaths_total",
                      tier.get("deaths", 0), (), "counter",
                      "replica processes declared dead"))
    for rid, stats in sorted(tier.get("replicas", {}).items()):
        labels = (("replica", str(rid)),)
        out.append(Sample("repro_replica_alive",
                          1 if stats.get("alive") else 0, labels,
                          "gauge", "1 while the replica answers"))
        out.append(Sample("repro_replica_jobs_done_total",
                          stats.get("jobs_done", 0), labels, "counter",
                          "dispatches the replica completed"))
        out.append(Sample("repro_replica_in_flight",
                          stats.get("in_flight", 0), labels, "gauge",
                          "dispatches currently on the replica"))
        rtt = stats.get("rtt_last_s")
        if rtt is not None:
            out.append(Sample("repro_replica_rtt_seconds", rtt, labels,
                              "gauge", "last heartbeat round trip"))
        rtt_avg = stats.get("rtt_avg_s")
        if rtt_avg is not None:
            out.append(Sample("repro_replica_rtt_avg_seconds", rtt_avg,
                              labels, "gauge",
                              "smoothed heartbeat round trip"))
    return out
