"""Streaming inference: multi-step sequences with continuous batching.

A one-shot serving request is a single dispatch; real inference is a
*sequence* — tiled MLP/CNN layers, recurrent steps — where step *t*'s
activation feeds step *t+1* of the same stream.  This module serves
such sequences on top of :class:`~repro.serve.SimdramService`:

* each stream applies one **step kernel** (a fused
  :class:`~repro.core.expr.Expr` whose leaf ``"x"`` is the previous
  step's output; other leaves are static per-stream feeds such as
  weights) ``n_steps`` times;
* every step re-enters the service as an ordinary request, so the
  :class:`~repro.serve.batcher.LanePacker` packs it with *whatever
  else shares its kernel* — steps of other streams, at other step
  indices, and brand-new streams alike.  That is **continuous
  batching**: a stream admitted mid-flight joins the in-flight
  streams' next step instead of waiting for a full drain, and the
  subarray stays wide even as streams start and finish at different
  times;
* the baseline it beats is **drain-between-steps**
  (``drain_between_steps=True``): streams advance in lockstep
  generations and newly submitted streams wait until the whole active
  generation has finished every step — each generation's partial
  waves dispatch at whatever width the generation happens to have.

Deadlines compose: a stream's ``deadline_s`` rides every step (the
remaining budget is re-computed per step), so the service's SLO-aware
admission can shed a lapsed stream's next step, and the stream itself
is failed with :class:`~repro.errors.DeadlineExceeded` the moment its
budget runs out between steps.  Each step is recorded as a
``serve.step`` child of the stream's ``serve.stream`` trace root, so
a multi-step request reads as one span tree in Perfetto; modeled
energy accumulates over the steps into
:attr:`StreamHandle.energy_nj`.

All submissions into the service happen on one dedicated pump thread
— never on the thread resolving a step's handle (a service worker or
router thread), which must not block on admission control.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from collections import deque
from concurrent.futures import Future

import numpy as np

from repro.core import expr
from repro.core.expr import Expr
from repro.errors import DeadlineExceeded, OperationError
from repro.obs.flightrec import get_flight_recorder
from repro.obs.tracing import NOOP_SPAN

__all__ = [
    "StreamHandle",
    "StreamingServer",
    "affine_relu_step",
    "stream_golden",
]


def affine_relu_step(shift: int = 1) -> Expr:
    """The reference step kernel: ``relu((x + w) - shift)``.

    One tiled MLP layer in miniature — an affine transform (add the
    weight vector, subtract a constant bias) under a relu.  All three
    ops are width-preserving and relu clamps at zero, so the kernel
    chains to any depth without widening, and its output feeds the
    next step's ``"x"`` unchanged.
    """
    return expr.relu(expr.inp("x") + expr.inp("w") - expr.const(shift))


def stream_golden(step: Expr, x0: np.ndarray, n_steps: int,
                  feeds: "dict | None", width: int) -> np.ndarray:
    """Numpy reference for one stream: fold ``step`` ``n_steps`` times
    over ``x0`` with the catalog's golden models (unsigned encoding,
    like :func:`repro.core.expr.golden`)."""
    x = np.asarray(x0)
    for _ in range(n_steps):
        x = expr.golden(step, {**(feeds or {}), "x": x}, width)
    return x


class StreamHandle:
    """A future for one submitted stream.

    Resolves to the final step's output vector once every step
    completed; re-raises the stream's failure (a poisoned step, or
    :class:`~repro.errors.DeadlineExceeded` when the stream's budget
    lapsed).  Mutable progress fields (``steps_done``, ``energy_nj``)
    are written by the pump thread and are safe to read at any time.
    """

    def __init__(self, stream_id: int, tenant: str, step: Expr,
                 x0: np.ndarray, n_steps: int, feeds: dict,
                 width: int, deadline: "float | None") -> None:
        self.stream_id = stream_id
        self.tenant = tenant
        self.n_steps = n_steps
        #: Absolute monotonic SLO deadline for the *whole* sequence.
        self.deadline = deadline
        #: Steps completed so far / modeled energy they consumed.
        self.steps_done = 0
        self.energy_nj: float | None = None
        #: Whether the stream finished within its deadline (``None``
        #: until resolved, or when it carried no deadline).
        self.on_time: bool | None = None
        #: The stream's ``serve.stream`` trace root.
        self.span = NOOP_SPAN
        self._step = step
        self._feeds = feeds
        self._width = width
        self._x = np.asarray(x0)
        self._step_span = NOOP_SPAN
        self._future: Future = Future()

    def result(self, timeout: "float | None" = None) -> np.ndarray:
        """Wait for the final activation (re-raising the failure)."""
        return self._future.result(timeout)

    def done(self) -> bool:
        return self._future.done()

    def exception(self, timeout: "float | None" = None
                  ) -> "BaseException | None":
        return self._future.exception(timeout)

    def __repr__(self) -> str:
        if not self._future.done():
            state = f"step {self.steps_done}/{self.n_steps}"
        elif self._future.exception() is not None:
            state = "failed"
        else:
            state = "done"
        return (f"StreamHandle(#{self.stream_id}, "
                f"tenant={self.tenant!r}, {state})")


class StreamingServer:
    """Serve multi-step streams over one :class:`SimdramService`.

    ``drain_between_steps=False`` (the default) is continuous
    batching; ``True`` is the lockstep-generation baseline (see
    module docstring).  The server owns a pump thread and is a
    context manager; closing it drains outstanding streams first.
    It does not close the wrapped service.
    """

    def __init__(self, service, *,
                 drain_between_steps: bool = False) -> None:
        self.service = service
        self.drain_between_steps = drain_between_steps
        self._events: "queue.Queue" = queue.Queue()
        self._cond = threading.Condition()
        self._outstanding = 0
        self._closing = False
        self._ids = itertools.count()
        #: Drain mode: the active lockstep generation and the streams
        #: waiting for it to fully finish.
        self._active: "list[StreamHandle]" = []
        self._waiting: "deque[StreamHandle]" = deque()
        self._barrier_left = 0
        self._pump = threading.Thread(target=self._run,
                                      name="simdram-stream",
                                      daemon=True)
        self._pump.start()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, step: Expr, x0, *, n_steps: int, width: int = 8,
               feeds: "dict | None" = None, tenant: str = "default",
               deadline_s: "float | None" = None) -> StreamHandle:
        """Queue one stream; returns its :class:`StreamHandle`.

        ``step`` must draw on a leaf named ``"x"`` (the running
        activation — seeded with ``x0``, then each step's output);
        ``feeds`` binds the step's other leaves (static across steps).
        ``deadline_s`` is the SLO for the whole sequence.
        """
        if n_steps < 1:
            raise OperationError(f"n_steps must be >= 1, got {n_steps}")
        names = expr.input_names(step)
        if "x" not in names:
            raise OperationError(
                "a stream's step kernel must read the running "
                "activation through a leaf named 'x'")
        feeds = dict(feeds or {})
        extra = set(feeds) | {"x"}
        missing = set(names) - extra
        if missing:
            raise OperationError(
                f"step kernel leaves {sorted(missing)} have no feed")
        now = time.monotonic()
        deadline = None if deadline_s is None else now + deadline_s
        stream = StreamHandle(next(self._ids), tenant, step, x0,
                              n_steps, feeds, width, deadline)
        stream.span = self.service.tracer.trace(
            "serve.stream", tenant=tenant, stream_id=stream.stream_id,
            n_steps=n_steps)
        with self._cond:
            if self._closing:
                error = OperationError("streaming server is closed")
                stream._future.set_exception(error)
                stream.span.finish(error)
                raise error
            self._outstanding += 1
        get_flight_recorder().record(
            "stream.start", stream=stream.stream_id, tenant=tenant,
            n_steps=n_steps, deadline_s=deadline_s)
        self._events.put(("start", stream, None))
        return stream

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def drain(self, timeout: "float | None" = None) -> bool:
        """Wait until every submitted stream resolved; ``False`` on
        timeout."""
        with self._cond:
            return self._cond.wait_for(
                lambda: self._outstanding == 0, timeout)

    def close(self) -> None:
        """Drain outstanding streams, stop the pump (idempotent)."""
        with self._cond:
            if self._closing:
                already = True
            else:
                already = False
                self._closing = True
        self.drain()
        if not already:
            self._events.put(None)
            self._pump.join()

    def __enter__(self) -> "StreamingServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the pump: every service.submit happens here
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            event = self._events.get()
            if event is None:
                return
            kind, stream, handle = event
            try:
                if kind == "start":
                    self._on_start(stream)
                else:
                    self._on_step_done(stream, handle)
            except BaseException as error:  # noqa: BLE001 - never hang
                # A pump failure must not strand callers blocked on
                # stream handles: the stream that triggered it fails.
                self._resolve(stream, error=error)

    def _on_start(self, stream: StreamHandle) -> None:
        if not self.drain_between_steps:
            self._submit_step(stream)
            return
        self._waiting.append(stream)
        if not self._active:
            self._launch_wave()

    def _on_step_done(self, stream: StreamHandle, handle) -> None:
        error = handle.exception()
        stream._step_span.finish(error)
        stream._step_span = NOOP_SPAN
        if error is None:
            if handle.energy_nj is not None:
                stream.energy_nj = ((stream.energy_nj or 0.0)
                                    + handle.energy_nj)
            stream._x = handle.result()
            stream.steps_done += 1
        if self.drain_between_steps:
            self._barrier_step(stream, error)
            return
        if error is not None:
            self._resolve(stream, error=error)
        elif stream.steps_done >= stream.n_steps:
            self._resolve(stream, value=stream._x)
        else:
            self._submit_step(stream)

    # -- continuous / shared -----------------------------------------------
    def _submit_step(self, stream: StreamHandle) -> bool:
        """Submit the stream's next step; resolves the stream (shed or
        failed) and returns ``False`` when nothing was submitted."""
        remaining = None
        if stream.deadline is not None:
            remaining = stream.deadline - time.monotonic()
            if remaining <= 0:
                self._resolve(stream, error=DeadlineExceeded(
                    f"stream #{stream.stream_id} shed at step "
                    f"{stream.steps_done}/{stream.n_steps}: sequence "
                    f"deadline lapsed"))
                return False
        stream._step_span = (
            stream.span.child("serve.step", step=stream.steps_done,
                              n_steps=stream.n_steps)
            if stream.span.recording else NOOP_SPAN)
        try:
            handle = self.service.submit(
                stream._step,
                feeds={**stream._feeds, "x": stream._x},
                width=stream._width, tenant=stream.tenant,
                deadline_s=remaining)
        except Exception as error:  # noqa: BLE001 - fails this stream
            self._resolve(stream, error=error)
            return False
        if stream._step_span.recording:
            stream._step_span.set(request_id=handle.request_id)
        # The callback fires on whatever thread resolves the handle;
        # it only enqueues — the pump does the next submit.
        handle.add_done_callback(
            lambda h, s=stream: self._events.put(("step", s, h)))
        return True

    def _resolve(self, stream: StreamHandle, value=None,
                 error: "BaseException | None" = None) -> None:
        if stream._future.done():
            return
        if stream.deadline is not None:
            stream.on_time = (error is None
                              and time.monotonic() <= stream.deadline)
        if error is not None:
            stream._future.set_exception(error)
            stream.span.finish(error)
            get_flight_recorder().record(
                "stream.shed" if isinstance(error, DeadlineExceeded)
                else "stream.fail",
                stream=stream.stream_id,
                steps_done=stream.steps_done)
        else:
            stream._future.set_result(value)
            stream.span.finish()
            get_flight_recorder().record(
                "stream.done", stream=stream.stream_id,
                steps_done=stream.steps_done,
                on_time=stream.on_time)
        with self._cond:
            self._outstanding -= 1
            self._cond.notify_all()

    # -- drain-between-steps baseline --------------------------------------
    def _barrier_step(self, stream: StreamHandle,
                      error: "BaseException | None") -> None:
        """One step of the active generation came back; advance the
        lockstep barrier and, once the wave is complete, either launch
        the generation's next step or (generation fully done) promote
        the waiting streams."""
        if error is not None:
            self._resolve(stream, error=error)
        elif stream.steps_done >= stream.n_steps:
            self._resolve(stream, value=stream._x)
        self._barrier_left -= 1
        if self._barrier_left == 0:
            self._launch_wave()

    def _launch_wave(self) -> None:
        """Drain mode: submit the next step for every live stream of
        the active generation; when the generation is exhausted, the
        waiting streams become the next one (a full drain between
        admissions — the baseline continuous batching removes)."""
        while True:
            self._active = [s for s in self._active if not s.done()]
            if not self._active:
                if not self._waiting:
                    return
                self._active = list(self._waiting)
                self._waiting.clear()
            launched = sum(1 for s in list(self._active)
                           if self._submit_step(s))
            if launched:
                self._barrier_left = launched
                return
            # Every stream of the wave shed at submission (deadline
            # lapsed during the previous generation); try the next.
