"""Telemetry for the serving layer.

One :class:`ServeMetrics` instance per :class:`~repro.serve.SimdramService`
collects everything an operator watches on a serving box:

* **request counters** — submitted / completed / failed / rejected, in
  total and per tenant;
* **latency** — wall time from ``submit`` to handle resolution, kept in
  a bounded reservoir so ``p50``/``p99`` stay cheap under sustained
  load;
* **packing** — how well the lane packer amortizes dispatches:
  requests per dispatch, *lane occupancy* (lanes carried per dispatch
  over the lanes it could have carried) and *packing efficiency*
  (fraction of dispatches saved versus one-dispatch-per-request);
* **spill counts** — paging traffic observed under the serving path
  (filled in by ``service.stats()`` from the cluster's pagers);
* **replicas** — when the service dispatches through a
  :class:`~repro.serve.router.ReplicaRouter`, per-replica dispatch /
  request / lane counters plus failover events (replica deaths seen
  and requests re-queued onto survivors);
* **SLO accounting** — requests carrying a deadline are classified at
  resolution into *on-time* / *late* / *shed* (shed = the SLO-aware
  scheduler dropped a lapsed request without executing it,
  :class:`~repro.errors.DeadlineExceeded`), per tenant and in total,
  with **goodput** (on-time completions per second of service
  lifetime) derived in :meth:`ServeMetrics.snapshot`;
* **modeled energy** — :class:`RequestEnergyModel` folds the perf
  layer's DRAM energy model (:class:`~repro.perf.model.PimSystemModel`)
  into the serving path: each completed request is charged the modeled
  nanojoules of its kernel's µProgram times the lanes it occupied, so
  the service reports *joules per request*, not just latency.

Latency percentiles are computed over a bounded sliding **reservoir**
of the most recent :data:`RESERVOIR` completions, so a long-running
service reports *recent* tail latency; ``latency_ms.max`` is the true
lifetime maximum (never evicted), and ``latency_ms.window_max`` is the
maximum within the current reservoir window.

All recording methods are thread-safe; :meth:`snapshot` returns one
plain ``dict`` suitable for logging or JSON export.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

#: Latency samples kept for the percentile estimates.  Old samples
#: fall off, so long-running services report *recent* tail latency.
RESERVOIR = 8192


def percentile(samples: list[float], q: float,
               method: str = "linear") -> float:
    """The ``q``-th percentile (0..100); 0.0 on an empty sample set.

    ``method`` follows :func:`numpy.percentile`.  The default linear
    interpolation is the general-purpose estimator; :meth:`ServeMetrics
    .snapshot` asks for ``"higher"`` (nearest observed rank) so its
    reported percentiles are always values that actually occurred —
    see the comment there.
    """
    if not samples:
        return 0.0
    return float(np.percentile(samples, q, method=method))


class _TenantCounters:
    __slots__ = ("submitted", "completed", "failed", "rejected",
                 "shed", "lanes")

    def __init__(self) -> None:
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.shed = 0
        self.lanes = 0

    def as_dict(self) -> dict:
        return {"submitted": self.submitted, "completed": self.completed,
                "failed": self.failed, "rejected": self.rejected,
                "shed": self.shed, "lanes": self.lanes}


class _ReplicaCounters:
    __slots__ = ("dispatches", "requests", "lanes")

    def __init__(self) -> None:
        self.dispatches = 0
        self.requests = 0
        self.lanes = 0

    def as_dict(self) -> dict:
        return {"dispatches": self.dispatches,
                "requests": self.requests, "lanes": self.lanes}


class ServeMetrics:
    """Thread-safe counters and latency reservoir for one service."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tenants: dict[str, _TenantCounters] = {}
        self._replicas: dict[int, _ReplicaCounters] = {}
        self.n_submitted = 0
        self.n_completed = 0
        self.n_failed = 0
        self.n_rejected = 0
        #: Packed dispatches issued (each runs one µProgram stream).
        self.n_dispatches = 0
        #: Requests carried by those dispatches.
        self.n_dispatched_requests = 0
        #: Total SIMD lanes carried by those dispatches.
        self.lanes_dispatched = 0
        #: Sum over dispatches of lanes / flush capacity (for the mean).
        self._occupancy_sum = 0.0
        #: Packed dispatches that failed and were retried sequentially.
        self.n_sequential_fallbacks = 0
        #: Replica deaths observed / requests re-queued onto survivors.
        self.n_replica_deaths = 0
        self.n_failover_requeues = 0
        #: SLO accounting: requests submitted with a deadline, and how
        #: they resolved — completed within it, completed late, or
        #: shed (dropped un-executed with ``DeadlineExceeded``).
        self.n_with_deadline = 0
        self.n_on_time = 0
        self.n_late = 0
        self.n_shed = 0
        #: Modeled DRAM energy charged to completed requests (nJ), and
        #: how many requests were metered (the energy model can decline
        #: a request it cannot price without failing it).
        self.energy_nj_total = 0.0
        self.n_energy_metered = 0
        self._latencies: deque[float] = deque(maxlen=RESERVOIR)
        #: True maximum over the service's whole lifetime — samples
        #: falling out of the bounded reservoir never lower it.
        self._lifetime_max_s = 0.0
        #: Goodput denominator: service lifetime (reset() restarts it).
        self._started_at = time.monotonic()

    def _tenant(self, tenant: str) -> _TenantCounters:
        counters = self._tenants.get(tenant)
        if counters is None:
            counters = self._tenants[tenant] = _TenantCounters()
        return counters

    # ------------------------------------------------------------------
    # recording (called from submitter and worker threads)
    # ------------------------------------------------------------------
    def record_submit(self, tenant: str, lanes: int,
                      has_deadline: bool = False) -> None:
        with self._lock:
            self.n_submitted += 1
            if has_deadline:
                self.n_with_deadline += 1
            counters = self._tenant(tenant)
            counters.submitted += 1
            counters.lanes += lanes

    def record_reject(self, tenant: str) -> None:
        with self._lock:
            self.n_rejected += 1
            self._tenant(tenant).rejected += 1

    def record_dispatch(self, n_requests: int, lanes: int,
                        capacity: int,
                        replica: int | None = None) -> None:
        with self._lock:
            self.n_dispatches += 1
            self.n_dispatched_requests += n_requests
            self.lanes_dispatched += lanes
            self._occupancy_sum += min(1.0, lanes / max(1, capacity))
            if replica is not None:
                counters = self._replicas.get(replica)
                if counters is None:
                    counters = self._replicas[replica] = \
                        _ReplicaCounters()
                counters.dispatches += 1
                counters.requests += n_requests
                counters.lanes += lanes

    def record_fallback(self) -> None:
        with self._lock:
            self.n_sequential_fallbacks += 1

    def record_failover(self, replica: int, n_requeued: int) -> None:
        """One replica died with ``n_requeued`` dispatches in flight
        (each re-submitted to a survivor by the router)."""
        with self._lock:
            self.n_replica_deaths += 1
            self.n_failover_requeues += n_requeued

    def record_completion(self, tenant: str, latency_s: float,
                          on_time: "bool | None" = None,
                          energy_nj: "float | None" = None) -> None:
        """One resolved request.  ``on_time`` is ``None`` when the
        request carried no deadline, else whether it met it;
        ``energy_nj`` is the modeled DRAM energy charged to it (absent
        when the energy model could not price the kernel)."""
        with self._lock:
            self.n_completed += 1
            self._tenant(tenant).completed += 1
            if on_time is not None:
                if on_time:
                    self.n_on_time += 1
                else:
                    self.n_late += 1
            if energy_nj is not None:
                self.energy_nj_total += energy_nj
                self.n_energy_metered += 1
            self._latencies.append(latency_s)
            if latency_s > self._lifetime_max_s:
                self._lifetime_max_s = latency_s

    def record_failure(self, tenant: str) -> None:
        with self._lock:
            self.n_failed += 1
            self._tenant(tenant).failed += 1

    def record_shed(self, tenant: str) -> None:
        """One request dropped un-executed because its deadline lapsed
        (``DeadlineExceeded``) — counted apart from failures so goodput
        math and load-shedding visibility don't blur into errors."""
        with self._lock:
            self.n_shed += 1
            self._tenant(tenant).shed += 1

    def reset(self) -> None:
        """Zero every counter, tenant/replica table and the latency
        reservoir (including the lifetime max) — so one bench harness
        can reuse a warm service across measured phases without
        earlier phases polluting the numbers."""
        with self._lock:
            self._tenants.clear()
            self._replicas.clear()
            self.n_submitted = 0
            self.n_completed = 0
            self.n_failed = 0
            self.n_rejected = 0
            self.n_dispatches = 0
            self.n_dispatched_requests = 0
            self.lanes_dispatched = 0
            self._occupancy_sum = 0.0
            self.n_sequential_fallbacks = 0
            self.n_replica_deaths = 0
            self.n_failover_requeues = 0
            self.n_with_deadline = 0
            self.n_on_time = 0
            self.n_late = 0
            self.n_shed = 0
            self.energy_nj_total = 0.0
            self.n_energy_metered = 0
            self._latencies.clear()
            self._lifetime_max_s = 0.0
            self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Everything, as one plain dict (see module docstring)."""
        with self._lock:
            samples = list(self._latencies)
            dispatches = self.n_dispatches
            packed = self.n_dispatched_requests
            elapsed_s = max(1e-9, time.monotonic() - self._started_at)
            metered = self.n_energy_metered
            return {
                "requests": {
                    "submitted": self.n_submitted,
                    "completed": self.n_completed,
                    "failed": self.n_failed,
                    "rejected": self.n_rejected,
                    "shed": self.n_shed,
                    "in_flight": (self.n_submitted - self.n_completed
                                  - self.n_failed - self.n_shed),
                },
                "slo": {
                    "with_deadline": self.n_with_deadline,
                    "on_time": self.n_on_time,
                    "late": self.n_late,
                    "shed": self.n_shed,
                    # Goodput = deadline-meeting completions per second
                    # of service lifetime (reset() restarts the clock).
                    "goodput_rps": self.n_on_time / elapsed_s,
                    "elapsed_s": elapsed_s,
                },
                "energy": {
                    "modeled_request_nj_total": self.energy_nj_total,
                    "requests_metered": metered,
                    "nj_per_request_mean": (
                        self.energy_nj_total / metered if metered
                        else 0.0),
                },
                "latency_ms": {
                    # p50/p99/window_max are computed over the bounded
                    # reservoir (recent window); max is lifetime-true.
                    # Nearest-rank ("higher"), not linear interpolation:
                    # with fewer samples than the reservoir holds —
                    # above all, fewer than 100 — an interpolated p99
                    # sits strictly *below* window_max even though the
                    # window's 99th percentile is its largest sample.
                    # Nearest-rank keeps p99 <= window_max an equality
                    # whenever the window is small, so the two figures
                    # never contradict each other.
                    "p50": percentile(samples, 50, method="higher") * 1e3,
                    "p99": percentile(samples, 99, method="higher") * 1e3,
                    "max": self._lifetime_max_s * 1e3,
                    "window_max": max(samples, default=0.0) * 1e3,
                    "samples": len(samples),
                    "window": RESERVOIR,
                },
                "packing": {
                    "dispatches": dispatches,
                    "packed_requests": packed,
                    "requests_per_dispatch": (
                        packed / dispatches if dispatches else 0.0),
                    "lanes_dispatched": self.lanes_dispatched,
                    # Mean over dispatches of lanes carried / lanes the
                    # flush policy would have allowed.
                    "lane_occupancy": (
                        self._occupancy_sum / dispatches
                        if dispatches else 0.0),
                    # Fraction of dispatches lane-packing saved versus
                    # one dispatch per request.
                    "packing_efficiency": (
                        1.0 - dispatches / packed if packed else 0.0),
                    "sequential_fallbacks": self.n_sequential_fallbacks,
                },
                "failover": {
                    "replica_deaths": self.n_replica_deaths,
                    "requeued_requests": self.n_failover_requeues,
                },
                "replicas": {rid: counters.as_dict()
                             for rid, counters
                             in sorted(self._replicas.items())},
                "tenants": {name: counters.as_dict()
                            for name, counters
                            in sorted(self._tenants.items())},
            }


class RequestEnergyModel:
    """Modeled DRAM joules per served request.

    Folds the perf layer's energy model into the serving path: a
    request's kernel (the pack key's ``(identity, engine)``) compiles
    to one µProgram whose nanojoule cost under the paper's DDR4-2400
    module (:meth:`~repro.perf.model.PimSystemModel.paper`) is a pure
    function of the command stream, so it is computed once per pack
    key and cached.  Per-element energy is bank-count invariant (the
    ``measure()`` contract), so a request's bill is simply
    ``nJ/element × n_elements`` regardless of how the packer grouped
    it.  Pricing failures return ``None`` instead of raising — energy
    metering must never fail a request.
    """

    def __init__(self, system=None) -> None:
        from repro.perf.model import PimSystemModel
        self._system = system or PimSystemModel.paper()
        self._lock = threading.Lock()
        self._nj_per_element: dict = {}

    def _price_key(self, request) -> "float | None":
        identity = request.key[0]
        backend = identity[2]
        if request.kind == "op":
            from repro.core.compiler import compile_cached
            program = compile_cached(request.op_name, request.width,
                                     backend)
        elif request.root is not None:
            from repro.core import fuse
            program = fuse.compile_expr(request.root, request.width,
                                        backend).program
        else:
            return None
        system = self._system
        nj = program.energy_nj(system.timing, system.geometry,
                               system.energy)
        return nj / system.geometry.cols

    def nj_per_request(self, request) -> "float | None":
        """Modeled nanojoules for one :class:`PreparedRequest`, or
        ``None`` when the kernel cannot be priced (e.g. a traced
        module with no recompilable program)."""
        key = request.key
        with self._lock:
            if key in self._nj_per_element:
                per_element = self._nj_per_element[key]
                return (None if per_element is None
                        else per_element * request.n_elements)
        try:
            per_element = self._price_key(request)
        except Exception:  # noqa: BLE001 - metering must not fail serving
            per_element = None
        with self._lock:
            self._nj_per_element.setdefault(key, per_element)
        return (None if per_element is None
                else per_element * request.n_elements)
