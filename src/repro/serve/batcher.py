"""Lane-packing request batcher.

SIMDRAM's throughput comes from amortizing one bit-serial µProgram
replay over thousands of SIMD lanes, but a serving workload arrives as
many *small* independent requests — a few lanes each.  Dispatching
each request alone wastes almost the whole subarray.  The batcher
closes that gap:

* :func:`prepare` normalizes one request (catalog op, ``Expr``, or a
  captured lazy graph) into a :class:`PreparedRequest` carrying its
  **pack key** — the kernel identity from
  :func:`repro.core.fuse.kernel_identity` plus the execution engine.
  Requests with equal pack keys replay the *same* µProgram over the
  same operand interface, so their lanes may be concatenated into one
  wide dispatch.
* :class:`PackGroup` accumulates compatible requests and, at flush
  time, concatenates their operand vectors per slot and records each
  request's ``[lo, hi)`` lane slice, so the dispatcher can scatter the
  packed result back to individual handles.
* :class:`LanePacker` holds one open group per pack key and implements
  the flush policy: a group flushes as soon as its lanes reach
  ``max_lanes`` (a full dispatch) or when its oldest request has
  waited ``max_wait_s`` (bounded latency for sparse traffic).

The batcher is pure bookkeeping — single-threaded by design (the
service's worker owns it) and independent of the dispatch target.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.expr import Expr, analyze
from repro.core.fuse import MAX_FUSED_INPUTS, kernel_identity
from repro.core.operations import get_operation
from repro.errors import OperationError
from repro.exec.engines import ExecutionEngine, get_engine
from repro.obs.tracing import NOOP_SPAN

if TYPE_CHECKING:
    from repro.serve.service import ServeHandle

#: A pack key: (kernel identity, engine name).  Equal keys <=>
#: lane-packable: same µProgram, same operand interface, same engine.
PackKey = tuple[tuple[str, int, str], str]


@dataclass
class PreparedRequest:
    """One validated request, normalized to slot vectors.

    ``kind`` is ``"op"`` (catalog operation, positional slots) or
    ``"expr"`` (fused DAG; ``slot_names`` binds vectors to leaf names).
    Lazy-graph requests are lowered to ``"expr"`` before they get here.
    """

    handle: "ServeHandle"
    tenant: str
    key: PackKey
    kind: str
    op_name: str | None
    root: Expr | None
    slot_names: tuple[str, ...]
    vectors: list[np.ndarray]
    n_elements: int
    width: int
    #: The resolved engine instance the dispatch will run on (its
    #: ``name`` is folded into ``key``).
    engine: ExecutionEngine
    submitted_at: float
    #: The request's trace root (``serve.request``) and its open
    #: ``serve.pack`` child; the no-op singleton when untraced.  The
    #: service attaches both after :func:`prepare` — the batcher never
    #: touches them.
    span: object = NOOP_SPAN
    pack_span: object = NOOP_SPAN
    #: Absolute monotonic deadline (SLO), or ``None`` for best-effort.
    #: Set by the service after :func:`prepare`, like the spans.
    deadline: float | None = None

    def feeds(self) -> dict[str, np.ndarray]:
        """Name -> vector binding for ``"expr"`` requests."""
        return dict(zip(self.slot_names, self.vectors))


def prepare(handle: "ServeHandle", op_or_root: "str | Expr",
            operands: Sequence, feeds: dict | None, width: int,
            tenant: str, engine: ExecutionEngine, backend: str,
            submitted_at: float) -> PreparedRequest:
    """Validate one request and normalize it into slot vectors.

    Raises :class:`~repro.errors.OperationError` on anything invalid —
    unknown operation, wrong arity, missing/extra feed names,
    inconsistent widths, mismatched lengths, empty vectors.  The
    service calls this on its worker thread so a bad request fails
    *its own handle* and never poisons a co-packed dispatch.

    ``engine`` may be a registry name (resolved here) or an already
    resolved :class:`~repro.exec.engines.ExecutionEngine` instance
    (the service resolves at submission and passes the instance).
    """
    engine = get_engine(engine)
    if isinstance(op_or_root, Expr):
        if operands:
            raise OperationError(
                "expression requests bind operands via feeds=")
        return _prepare_expr(handle, op_or_root, feeds or {}, width,
                             tenant, engine, backend, submitted_at)
    if feeds is not None:
        raise OperationError(
            "catalog requests take positional operands")
    return _prepare_op(handle, str(op_or_root), operands, width,
                       tenant, engine, backend, submitted_at)


def _as_vector(value, what: str) -> np.ndarray:
    vector = np.asarray(value)
    if vector.ndim != 1:
        raise OperationError(f"{what} must be a 1-D vector, "
                             f"got shape {vector.shape}")
    if len(vector) == 0:
        raise OperationError(f"{what} needs at least one element")
    if not np.issubdtype(vector.dtype, np.integer):
        raise OperationError(
            f"{what}: SIMDRAM operates on integer vectors, "
            f"got {vector.dtype}")
    return vector


def _check_lengths(vectors: list[np.ndarray], what: str) -> int:
    lengths = [len(v) for v in vectors]
    if any(n != lengths[0] for n in lengths):
        raise OperationError(f"{what}: operand lengths differ: {lengths}")
    return lengths[0]


def _prepare_op(handle, op_name: str, operands: Sequence, width: int,
                tenant: str, engine: ExecutionEngine, backend: str,
                submitted_at: float) -> PreparedRequest:
    spec = get_operation(op_name)
    if len(operands) != spec.arity:
        raise OperationError(
            f"{op_name} takes {spec.arity} operands, "
            f"got {len(operands)}")
    if width < 1:
        raise OperationError(f"width must be >= 1, got {width}")
    vectors = [_as_vector(v, f"{op_name} operand {i}")
               for i, v in enumerate(operands)]
    n = _check_lengths(vectors, op_name)
    return PreparedRequest(
        handle=handle, tenant=tenant,
        key=(kernel_identity(op_name, width, backend), engine.name),
        kind="op", op_name=op_name, root=None, slot_names=(),
        vectors=vectors, n_elements=n, width=width, engine=engine,
        submitted_at=submitted_at)


def _prepare_expr(handle, root: Expr, feeds: dict, width: int,
                  tenant: str, engine: ExecutionEngine, backend: str,
                  submitted_at: float) -> PreparedRequest:
    analysis = analyze(root, width)   # validates widths + structure
    names = tuple(analysis.input_widths)
    if len(names) > MAX_FUSED_INPUTS:
        raise OperationError(
            f"request binds {len(names)} distinct inputs; one dispatch "
            f"carries at most {MAX_FUSED_INPUTS} source addresses")
    missing = set(names) - set(feeds)
    extra = set(feeds) - set(names)
    if missing or extra:
        raise OperationError(
            f"expression inputs are {sorted(names)}"
            + (f"; missing {sorted(missing)}" if missing else "")
            + (f"; unexpected {sorted(extra)}" if extra else ""))
    vectors = [_as_vector(feeds[name], f"feed {name!r}")
               for name in names]
    n = _check_lengths(vectors, "expression request")
    return PreparedRequest(
        handle=handle, tenant=tenant,
        key=(kernel_identity(root, width, backend), engine.name),
        kind="expr", op_name=None, root=root, slot_names=names,
        vectors=vectors, n_elements=n, width=width, engine=engine,
        submitted_at=submitted_at)


@dataclass
class PackGroup:
    """Compatible requests awaiting one shared wide dispatch."""

    key: PackKey
    created_at: float
    requests: list[PreparedRequest] = field(default_factory=list)
    total_lanes: int = 0

    def add(self, request: PreparedRequest) -> None:
        self.requests.append(request)
        self.total_lanes += request.n_elements

    def pack(self) -> tuple[list[np.ndarray], list[tuple[int, int]]]:
        """Concatenate operand vectors per slot; per-request slices.

        Returns ``(packed_vectors, slices)`` where ``packed_vectors[s]``
        is slot ``s``'s lanes for every request back to back and
        ``slices[i]`` is request ``i``'s ``[lo, hi)`` range in the
        packed lane dimension.
        """
        n_slots = len(self.requests[0].vectors)
        packed = [np.concatenate([r.vectors[s] for r in self.requests])
                  for s in range(n_slots)]
        slices: list[tuple[int, int]] = []
        offset = 0
        for request in self.requests:
            slices.append((offset, offset + request.n_elements))
            offset += request.n_elements
        return packed, slices


class LanePacker:
    """Open pack groups and the max-lanes / max-wait flush policy.

    Owned by the service's single worker thread; not itself locked.
    """

    def __init__(self, max_lanes: int, max_wait_s: float) -> None:
        if max_lanes < 1:
            raise OperationError(
                f"max_lanes must be >= 1, got {max_lanes}")
        if max_wait_s < 0:
            raise OperationError(
                f"max_wait_s must be >= 0, got {max_wait_s}")
        self.max_lanes = max_lanes
        self.max_wait_s = max_wait_s
        self._groups: dict[PackKey, PackGroup] = {}

    @property
    def pending_requests(self) -> int:
        return sum(len(g.requests) for g in self._groups.values())

    @property
    def pending_lanes(self) -> int:
        return sum(g.total_lanes for g in self._groups.values())

    def add(self, request: PreparedRequest,
            now: float | None = None) -> PackGroup | None:
        """Admit one prepared request; returns the group if it is now
        full (caller dispatches it immediately)."""
        if now is None:
            now = time.monotonic()
        group = self._groups.get(request.key)
        if group is None:
            group = self._groups[request.key] = PackGroup(
                key=request.key, created_at=now)
        group.add(request)
        if group.total_lanes >= self.max_lanes:
            return self._groups.pop(request.key)
        return None

    def take(self, key: PackKey) -> PackGroup | None:
        """Force-remove one open group (immediate flush)."""
        return self._groups.pop(key, None)

    def due(self, now: float) -> list[PackGroup]:
        """Pop every group whose oldest request exceeded ``max_wait_s``."""
        ready = [key for key, group in self._groups.items()
                 if now - group.created_at >= self.max_wait_s]
        return [self._groups.pop(key) for key in ready]

    def next_deadline(self) -> float | None:
        """Monotonic time the earliest open group must flush by."""
        if not self._groups:
            return None
        return min(group.created_at for group in self._groups.values()) \
            + self.max_wait_s

    def drain(self) -> list[PackGroup]:
        """Pop every open group (service shutdown / explicit flush)."""
        groups = list(self._groups.values())
        self._groups.clear()
        return groups
