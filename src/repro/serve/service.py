"""``SimdramService``: a multi-tenant serving layer over SIMDRAM.

The ROADMAP's north star is heavy traffic from many users, yet
SIMDRAM's efficiency comes from *wide* dispatches — one µProgram
replay amortized over thousands of SIMD lanes.  This service is the
bridge between the two: it accepts many small independent requests
(catalog operation, fused :class:`~repro.core.expr.Expr`, or a
captured lazy graph per request), **lane-packs** compatible ones —
same kernel identity, same width, same engine — into shared wide
dispatches on a :class:`~repro.Simdram` module or a sharded
:class:`~repro.SimdramCluster`, and scatters each request's result
slice back to its :class:`ServeHandle` future.

Around the packer sits the production machinery:

* **admission control** — a bounded queue; ``submit`` blocks (or
  raises :class:`~repro.errors.AdmissionError` with ``block=False``)
  while ``max_queue`` accepted requests are still unresolved;
* **weighted fair scheduling** — requests queue per tenant and the
  worker admits them into pack groups in weighted-fair order (each
  tenant's virtual time advances by ``lanes / weight``), so one noisy
  tenant cannot starve the rest; on a cluster the dispatches then flow
  through the runtime's :class:`~repro.runtime.scheduler.JobScheduler`
  like any other job;
* **flush policy** — a group dispatches when it reaches ``max_lanes``
  or when its oldest request has waited ``max_wait_s``
  (:class:`~repro.serve.batcher.LanePacker`);
* **failure isolation** — a request that fails validation fails its
  own handle only; if a *packed* dispatch raises, the group is retried
  sequentially so one poisoned request cannot corrupt co-packed
  results;
* **warmup** — :meth:`SimdramService.warmup` precompiles a declared
  op manifest so the first real request never pays Steps 1+2;
* **telemetry** — :meth:`SimdramService.stats` snapshots p50/p99
  latency, lanes-per-dispatch occupancy, packing efficiency and the
  paging layer's spill counters (:mod:`repro.serve.metrics`).

Typical use::

    from repro.serve import SimdramService

    with SimdramService(cluster) as svc:
        svc.warmup([("add", 8), ("mul", 8)])
        handles = [svc.submit("add", a, b, width=8, tenant="alice")
                   for a, b in requests]
        results = [h.result() for h in handles]
"""

from __future__ import annotations

import itertools
import sys
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.expr import Expr
from repro.core.fuse import kernel_identity
from repro.core.operations import get_operation
from repro.dram.commands import CommandStats
from repro.errors import (
    AdmissionError,
    DeadlineExceeded,
    OperationError,
)
from repro.exec.engines import ExecutionEngine, get_engine
from repro.lazy.tensor import LazyTensor
from repro.obs.flightrec import get_flight_recorder, postmortem
from repro.obs.metrics import MetricsRegistry, Sample, get_registry
from repro.obs.pmu import get_pmu
from repro.obs.tracing import (
    NOOP_SPAN,
    Tracer,
    get_tracer,
    use_span,
)
from repro.serve.batcher import (
    LanePacker,
    PackGroup,
    PreparedRequest,
    prepare,
)
from repro.serve.metrics import RequestEnergyModel, ServeMetrics


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs of one :class:`SimdramService`."""

    #: A pack group flushes when its oldest request waited this long.
    max_wait_s: float = 0.005
    #: A pack group flushes when its lanes reach this many; ``None``
    #: defaults to the target's total SIMD lane capacity.
    max_lanes: int | None = None
    #: Admission bound: requests accepted but not yet resolved.
    max_queue: int = 1024
    #: Retry a failed packed dispatch one request at a time, so a
    #: poisoned request fails alone instead of failing the pack.
    fallback_sequential: bool = True
    #: Lane-pack compatible requests (``False`` = one dispatch per
    #: request; the serving benchmark's baseline).
    pack: bool = True
    #: Default execution engine for requests that don't choose one —
    #: a registry name or an :class:`~repro.exec.engines.ExecutionEngine`.
    engine: "str | ExecutionEngine" = "auto"
    #: SLO-aware admission: within a tenant's virtual-time budget the
    #: worker pops requests earliest-deadline-first instead of FIFO
    #: (deadline-less requests sort last, preserving FIFO among
    #: themselves).  Cross-tenant fairness is untouched — EDF reorders
    #: only *inside* the tenant WFQ already chose.
    slo_aware: bool = False
    #: With ``slo_aware``: a request whose deadline has already lapsed
    #: when the worker pops it is **shed** — failed with
    #: :class:`~repro.errors.DeadlineExceeded` without executing,
    #: freeing its lanes for requests that can still make their SLO.
    #: ``False`` deprioritizes lapsed requests instead (they run after
    #: every request that can still be on time, and complete late).
    shed_lapsed: bool = True


class ServeHandle:
    """A future for one submitted request.

    Resolves to the request's result vector (decoded per the root
    operation's signedness) once its — possibly shared — dispatch
    completes; re-raises the request's own failure.
    """

    def __init__(self, request_id: int, tenant: str,
                 n_elements: int) -> None:
        self.request_id = request_id
        self.tenant = tenant
        self.n_elements = n_elements
        #: Absolute monotonic SLO deadline, or ``None`` (best effort).
        self.deadline: float | None = None
        #: Resolution verdicts, set when the handle resolves: whether a
        #: deadline-carrying request made its deadline (``None`` when
        #: it carried none) and the modeled DRAM energy charged to it
        #: (``None`` when unpriceable).
        self.on_time: bool | None = None
        self.energy_nj: float | None = None
        #: The request's ``serve.request`` trace root (the no-op
        #: singleton when tracing is off/unsampled); finished — and
        #: thereby recorded — exactly when the handle resolves.
        self.span = NOOP_SPAN
        self._future: Future = Future()

    def result(self, timeout: float | None = None) -> np.ndarray:
        """Wait for the request (re-raising its failure)."""
        return self._future.result(timeout)

    def add_done_callback(self, fn) -> None:
        """Invoke ``fn(handle)`` once the handle resolves (success or
        failure) — immediately if it already has.  Runs on the thread
        that resolves the handle, so keep it cheap and never submit
        back into the service from it (enqueue and let another thread
        submit); the streaming layer chains multi-step sequences this
        way."""
        self._future.add_done_callback(lambda _: fn(self))

    def done(self) -> bool:
        return self._future.done()

    def exception(self, timeout: float | None = None
                  ) -> BaseException | None:
        return self._future.exception(timeout)

    @property
    def shape(self) -> tuple[int]:
        return (self.n_elements,)

    def __len__(self) -> int:
        return self.n_elements

    def __repr__(self) -> str:
        if not self._future.done():
            state = "pending"
        elif self._future.exception() is not None:
            state = "failed"
        else:
            state = "done"
        return (f"ServeHandle(#{self.request_id}, "
                f"tenant={self.tenant!r}, {self.n_elements} lanes, "
                f"{state})")


@dataclass
class _RawRequest:
    """One accepted request, queued per tenant until the worker
    prepares and packs it."""

    handle: ServeHandle
    op_or_root: "str | Expr"
    operands: tuple
    feeds: dict | None
    width: int
    tenant: str
    #: Resolved at submission: one engine instance rides the request
    #: through prepare, pack and dispatch (no per-layer string).
    engine: ExecutionEngine
    submitted_at: float
    lanes: int
    #: Open ``serve.admit`` span covering queue wait (noop untraced).
    admit_span: object = NOOP_SPAN
    #: Absolute monotonic SLO deadline, or ``None`` (best effort).
    deadline: float | None = None


# ---------------------------------------------------------------------------
# dispatch targets: one tiny interface over module and cluster
# ---------------------------------------------------------------------------
class _ModuleTarget:
    """Serve on a single :class:`~repro.Simdram` module."""

    is_cluster = False
    is_async = False

    def __init__(self, sim) -> None:
        self.sim = sim

    @property
    def lanes(self) -> int:
        return self.sim.module.lanes

    @property
    def backend(self) -> str:
        return self.sim.config.backend

    def map_op(self, op_name: str, vectors: list[np.ndarray],
               width: int, engine: ExecutionEngine) -> np.ndarray:
        return self.sim.map(op_name, *vectors, width=width,
                            engine=engine)

    def map_expr(self, root: Expr, feeds: dict, width: int,
                 engine: ExecutionEngine) -> np.ndarray:
        return self.sim.map_expr(root, feeds, width=width,
                                 engine=engine)

    def compile_op(self, op_name: str, width: int) -> None:
        self.sim.compile(op_name, width)

    def compile_expr(self, root: Expr, width: int) -> None:
        self.sim.compile_expr(root, width)

    def warm(self, op_or_root, width: int,
             engine: ExecutionEngine) -> None:
        if isinstance(op_or_root, Expr):
            kernel = self.sim.compile_expr(op_or_root, width)
            self.sim.warm_executor(kernel.program, kernel.input_widths,
                                   kernel.out_width, engine)
        else:
            name = str(op_or_root)
            program = self.sim.compile(name, width)
            spec = get_operation(name)
            self.sim.warm_executor(program, spec.in_widths(width),
                                   spec.out_width(width), engine)

    def paging_stats(self) -> CommandStats:
        return CommandStats()

    def busy_ns(self) -> float | None:
        return None

    def kernel_cache_size(self) -> int:
        return self.sim.kernel_cache_size


class _ClusterTarget:
    """Serve on a :class:`~repro.SimdramCluster` (sharded dispatch
    through the runtime's job scheduler, paging included)."""

    is_cluster = True
    is_async = False

    def __init__(self, cluster) -> None:
        self.cluster = cluster

    @property
    def lanes(self) -> int:
        return self.cluster.lanes

    @property
    def backend(self) -> str:
        return self.cluster.config.backend

    def map_op(self, op_name: str, vectors: list[np.ndarray],
               width: int, engine: ExecutionEngine) -> np.ndarray:
        return self.cluster.map(op_name, *vectors, width=width,
                                engine=engine)

    def map_expr(self, root: Expr, feeds: dict, width: int,
                 engine: ExecutionEngine) -> np.ndarray:
        return self.cluster.map_expr(root, feeds, width=width,
                                     engine=engine)

    def compile_op(self, op_name: str, width: int) -> None:
        self.cluster.compile(op_name, width)

    def compile_expr(self, root: Expr, width: int) -> None:
        self.cluster.compile_expr(root, width)

    def warm(self, op_or_root, width: int,
             engine: ExecutionEngine) -> None:
        self.cluster.warm(op_or_root, width, engine)

    def paging_stats(self) -> CommandStats:
        return self.cluster.paging_stats()

    def busy_ns(self) -> float | None:
        return self.cluster.makespan_ns()

    def kernel_cache_size(self) -> int:
        return self.cluster.kernel_cache_size


def _wrap_target(target):
    from repro.core.framework import Simdram
    from repro.runtime.cluster import SimdramCluster
    from repro.runtime.replica import ReplicaSet
    from repro.serve.router import ReplicaRouter
    if isinstance(target, Simdram):
        return _ModuleTarget(target)
    if isinstance(target, SimdramCluster):
        return _ClusterTarget(target)
    if isinstance(target, ReplicaRouter):
        # The router implements the dispatch-target protocol itself
        # (asynchronously: submit_pack + callback + barrier).
        return target
    if isinstance(target, ReplicaSet):
        return ReplicaRouter(target)
    raise OperationError(
        f"a service wraps a Simdram, SimdramCluster, ReplicaSet or "
        f"ReplicaRouter, got {type(target).__name__}")


# ---------------------------------------------------------------------------
# the service
# ---------------------------------------------------------------------------
class SimdramService:
    """Multi-tenant request serving with SIMD lane-packing (see
    module docstring)."""

    def __init__(self, target, config: ServeConfig | None = None,
                 tenants: dict[str, float] | None = None,
                 tracer: "Tracer | None" = None,
                 registry: "MetricsRegistry | None" = None) -> None:
        self._target = _wrap_target(target)
        self.target = target
        self.config = config or ServeConfig()
        #: Lanes one dispatch may carry before it must flush (also the
        #: occupancy denominator in the metrics).
        self.capacity = (self.config.max_lanes
                         if self.config.max_lanes is not None
                         else self._target.lanes)
        self.metrics = ServeMetrics()
        #: Trace collection (process-global tracer unless injected).
        #: Disabled tracers cost one flag check per request.
        self.tracer = tracer if tracer is not None else get_tracer()
        #: Unified metrics: the legacy ``ServeMetrics``/paging/replica
        #: surfaces are adapted into the registry as a scrape-time
        #: collector, and request latency additionally feeds a native
        #: histogram (quantiles without a reservoir).
        self.registry = (registry if registry is not None
                         else get_registry())
        self._collector_name = f"serve:{id(self):x}"
        self.registry.register_collector(self._metric_samples,
                                         name=self._collector_name)
        # The device PMU scrapes through the same registry, so a
        # service built on a private registry still exports
        # ``repro_pmu_*`` next to its serving metrics.
        get_pmu().register(self.registry)
        self._latency_hist = self.registry.histogram(
            "repro_serve_request_latency_seconds",
            "submit-to-resolution latency of completed requests")
        #: Modeled joules per completed request (perf's energy model
        #: folded into the serving path).  Buckets span ~0.1 nJ to
        #: ~100 mJ in powers of four — kernels cost nanojoules per
        #: element, requests carry up to thousands of lanes.
        self._energy_hist = self.registry.histogram(
            "repro_request_energy_joules",
            "modeled DRAM energy per completed request (J)",
            buckets=tuple(1e-10 * 4.0 ** i for i in range(16)))
        self._energy = RequestEnergyModel()
        attach = getattr(self._target, "attach_metrics", None)
        if attach is not None:
            attach(self.metrics)
        self._packer = LanePacker(self.capacity, self.config.max_wait_s)

        self._cond = threading.Condition()
        self._queues: dict[str, deque[_RawRequest]] = {}
        self._weights: dict[str, float] = dict(tenants or {})
        for name, weight in self._weights.items():
            self._check_weight(name, weight)
        self._vtime: dict[str, float] = {}
        self._vfloor = 0.0
        #: Request ids accepted but not yet resolved — the
        #: admission-control bound.  One structure (not separate
        #: queued/dispatching states) so no failure path can ever
        #: double-release a slot; ids are monotonic, so a flush can
        #: wait on exactly the requests accepted before it was called.
        self._unresolved: set[int] = set()
        self._last_accepted_id = -1
        #: Cutoff id of every thread currently blocked in
        #: :meth:`flush`.  While any exist, the worker force-drains
        #: the packer as soon as no *covered* request (id <= cutoff)
        #: is still queued — late enough that covered requests pack
        #: together, early enough that none lingers behind max_wait.
        self._flush_cutoffs: list[int] = []
        #: The request the worker is processing right now (crash-guard
        #: bookkeeping; worker-thread confined except under ``_cond``).
        self._current: _RawRequest | None = None
        self._closing = False        # stop + reject new submissions
        self._close_started = False  # exactly one close() joins
        self._closed = False
        self._crashed = False        # worker died on an internal error
        self._ids = itertools.count()
        self._worker = threading.Thread(target=self._run_worker,
                                        name="simdram-serve",
                                        daemon=True)
        self._worker.start()

    @staticmethod
    def _check_weight(tenant: str, weight: float) -> None:
        if not weight > 0:
            raise OperationError(
                f"tenant {tenant!r} needs a positive weight, "
                f"got {weight}")

    # ------------------------------------------------------------------
    # tenants
    # ------------------------------------------------------------------
    def register_tenant(self, tenant: str, weight: float = 1.0) -> None:
        """Declare a tenant's fair-share weight (default 1.0).

        A tenant with weight 2 is admitted twice the lanes of a
        weight-1 tenant while both have requests queued.
        """
        self._check_weight(tenant, weight)
        with self._cond:
            self._weights[tenant] = weight

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, op, *operands, feeds: dict | None = None,
               width: int = 8, tenant: str = "default",
               engine: "str | ExecutionEngine | None" = None,
               block: bool = True,
               timeout: float | None = None,
               deadline_s: float | None = None) -> ServeHandle:
        """Queue one request; returns its :class:`ServeHandle`.

        ``op`` is a catalog operation name (positional ``operands``,
        host vectors), an :class:`~repro.core.expr.Expr` (``feeds``
        binding host vectors to leaf names), or a captured
        :class:`~repro.lazy.LazyTensor` graph (operands and width come
        from its sources).  ``width`` is the pipeline element width
        for op/expr requests.

        Admission control: when ``max_queue`` requests are already in
        flight (accepted, not yet resolved), ``block=True`` waits for
        space (up to ``timeout`` seconds) and ``block=False`` raises
        :class:`~repro.errors.AdmissionError` immediately.

        ``deadline_s`` declares the request's SLO: it should resolve
        within that many seconds of this call.  The verdict lands on
        ``handle.on_time`` and in the goodput metric; with
        ``ServeConfig.slo_aware`` the scheduler additionally serves
        the tenant's queue earliest-deadline-first and sheds (or
        deprioritizes, per ``shed_lapsed``) requests whose deadline
        lapsed before they reached the packer — a shed handle raises
        :class:`~repro.errors.DeadlineExceeded` and never executes.

        Semantic validation of op/``Expr`` requests happens on the
        worker thread, so a malformed request fails *its own handle*,
        never the caller or a co-packed request.  Lazy-graph requests
        are the one exception: the graph is lowered at submit time on
        the caller's thread (a ``LazyDevice`` is not thread-safe, so
        its sources must be read where the caller owns them), and an
        invalid graph — e.g. one drawing on more than three sources —
        raises here instead of failing the handle.
        """
        if isinstance(op, LazyTensor):
            if operands or feeds is not None:
                raise OperationError(
                    "lazy-graph requests carry their operands in the "
                    "graph's sources")
            with self._cond:
                # Cheap pre-check: lowering the graph may gather
                # device-resident sources back to host — don't pay
                # that only to be rejected by a closed service.
                if self._closing or self._closed:
                    self.metrics.record_reject(tenant)
                    raise AdmissionError("service is closed")
            op, feeds, width = op.device.export(op)
        # Resolved once, here: an unknown legacy string raises (with a
        # DeprecationWarning naming list_engines()) on the caller's
        # thread; the resolved instance rides the request object.
        engine = get_engine(self.config.engine if engine is None
                            else engine)
        lanes = self._lane_estimate(op, operands, feeds)
        handle = ServeHandle(next(self._ids), tenant, lanes)
        now = time.monotonic()
        slo_deadline = None if deadline_s is None else now + deadline_s
        handle.deadline = slo_deadline
        # One trace root per request; its serve.admit child stays open
        # until the worker pops the request, so queue wait is visible.
        handle.span = self.tracer.trace(
            "serve.request", tenant=tenant,
            request_id=handle.request_id, lanes=lanes)
        if handle.span.recording and deadline_s is not None:
            handle.span.set(deadline_s=deadline_s)
        admit_span = (handle.span.child("serve.admit")
                      if handle.span.recording else NOOP_SPAN)
        raw = _RawRequest(handle=handle, op_or_root=op,
                          operands=tuple(operands), feeds=feeds,
                          width=width, tenant=tenant, engine=engine,
                          submitted_at=now, lanes=lanes,
                          admit_span=admit_span, deadline=slo_deadline)

        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._cond:
            while True:
                if self._closing or self._closed:
                    self.metrics.record_reject(tenant)
                    raise self._reject(handle, admit_span,
                                       AdmissionError("service is closed"))
                if len(self._unresolved) < self.config.max_queue:
                    break
                if not block:
                    self.metrics.record_reject(tenant)
                    raise self._reject(handle, admit_span, AdmissionError(
                        f"queue full ({self.config.max_queue} "
                        f"requests waiting); retry later"))
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    self.metrics.record_reject(tenant)
                    raise self._reject(handle, admit_span, AdmissionError(
                        f"queue full ({self.config.max_queue} "
                        f"requests waiting); timed out after "
                        f"{timeout}s"))
                # Clamp: a remaining that goes non-positive between
                # the check above and here must become a zero-timeout
                # poll — a negative timeout means *wait forever* to
                # the underlying lock acquire.
                self._cond.wait(None if remaining is None
                                else max(0.0, remaining))
            queue = self._queues.get(tenant)
            if queue is None:
                queue = self._queues[tenant] = deque()
            if not queue:
                # (Re)activating tenant: advance its virtual time to
                # the service floor so idle periods earn no credit.
                self._vtime[tenant] = max(
                    self._vtime.get(tenant, 0.0), self._vfloor)
            queue.append(raw)
            self._unresolved.add(handle.request_id)
            # max(): ids are handed out before this lock, so two
            # submitters may enqueue in the opposite order.
            self._last_accepted_id = max(self._last_accepted_id,
                                         handle.request_id)
            # Recorded before the lock releases, so the worker can
            # never record this request's completion first (metrics
            # would transiently show completed > submitted).
            self.metrics.record_submit(
                tenant, lanes, has_deadline=slo_deadline is not None)
            self._cond.notify_all()
        get_flight_recorder().record(
            "serve.admit", request=handle.request_id, tenant=tenant,
            lanes=lanes, deadline_s=deadline_s)
        return handle

    @staticmethod
    def _reject(handle: ServeHandle, admit_span,
                error: AdmissionError) -> AdmissionError:
        """Close a rejected request's trace and hand back the error
        (so call sites stay single-line ``raise`` statements)."""
        admit_span.finish(error)
        handle.span.finish(error)
        return error

    @staticmethod
    def _lane_estimate(op, operands: Sequence, feeds: dict | None) -> int:
        """Best-effort lane count before validation (drives fair-share
        accounting; the prepared request carries the exact number)."""
        candidates = list(operands) + list((feeds or {}).values())
        for value in candidates:
            try:
                return max(1, len(value))
            except TypeError:
                continue
        return 1

    # ------------------------------------------------------------------
    # lifecycle / synchronization
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Dispatch every request accepted *before this call*; blocks
        until each of them has resolved.

        Requests submitted concurrently with (or after) the flush are
        not waited for, so one tenant's checkpoint cannot be starved
        by another tenant's sustained traffic.
        """
        with self._cond:
            if self._closed:
                return
            cutoff = self._last_accepted_id
            self._flush_cutoffs.append(cutoff)
            self._cond.notify_all()
            try:
                # _crashed (set under this lock before the crash
                # guard's notify) rather than a thread-liveness
                # check: a dying worker is still alive() inside its
                # excepthook and will never notify again afterwards.
                self._cond.wait_for(
                    lambda: (self._closed or self._crashed
                             or all(rid > cutoff
                                    for rid in self._unresolved)))
            finally:
                self._flush_cutoffs.remove(cutoff)
                self._cond.notify_all()

    def drain(self, timeout: float | None = None) -> bool:
        """Wait until every accepted request has resolved (success or
        failure).  Returns ``False`` on timeout."""
        with self._cond:
            return self._cond.wait_for(
                lambda: not self._unresolved, timeout)

    def close(self) -> None:
        """Flush pending work, stop the worker thread (idempotent).

        Every already-accepted request still resolves — pending pack
        groups are dispatched, not dropped.  Later ``submit`` calls
        raise :class:`~repro.errors.AdmissionError`.  Closing does
        *not* close the wrapped module/cluster; the caller owns it.
        """
        with self._cond:
            if self._closed:
                return
            self._closing = True
            first_closer = not self._close_started
            self._close_started = True
            self._cond.notify_all()
        if first_closer:
            self._worker.join()
            with self._cond:
                self._closed = True
                self._cond.notify_all()
        else:
            with self._cond:
                self._cond.wait_for(lambda: self._closed)
        # A closed service stops scraping (idempotent): the collector
        # holds a reference to self, and stats() on a dead target
        # would be stale anyway.
        self.registry.unregister_collector(self._collector_name)

    def __enter__(self) -> "SimdramService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # warmup
    # ------------------------------------------------------------------
    def warmup(self, manifest: Sequence[tuple]) -> dict:
        """Precompile a declared operation manifest.

        ``manifest`` entries are ``(op_name_or_expr, width)``.  Each
        kernel compiles into the target's caches (on a cluster, every
        module adopts it), *and* its execution plan plus the service's
        configured engine's compiled executor are warmed against the
        row layout a packed dispatch will bind — so the first real
        request replays a fully warm pipeline instead of paying
        Steps 1+2 or codegen inline.  Returns a summary dict.
        """
        start = time.perf_counter()
        engine = get_engine(self.config.engine)
        kernels: list[list] = []
        for op_or_root, width in manifest:
            self._target.warm(op_or_root, width, engine)
            identity = kernel_identity(op_or_root, width,
                                       self._target.backend)
            kernels.append([identity[0], width])
        return {"kernels": kernels,
                "n_kernels": len(kernels),
                "seconds": time.perf_counter() - start}

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """One snapshot of the service's telemetry (see
        :mod:`repro.serve.metrics` for the schema)."""
        snap = self.metrics.snapshot()
        with self._cond:
            snap["queue"] = {
                "queued": sum(len(q) for q in self._queues.values()),
                "in_flight": len(self._unresolved),
                "max_queue": self.config.max_queue,
                "capacity_lanes": self.capacity,
            }
        paging = self._target.paging_stats()
        snap["paging"] = {
            "n_spills": paging.n_spills,
            "n_fills": paging.n_fills,
            "spill_bits": paging.spill_bits,
            "fill_bits": paging.fill_bits,
        }
        snap["modeled_busy_ns"] = self._target.busy_ns()
        snap["kernels_cached"] = self._target.kernel_cache_size()
        replica_stats = getattr(self._target, "replica_stats", None)
        if replica_stats is not None:
            snap["replica_tier"] = replica_stats()
        return snap

    def prometheus(self) -> str:
        """The unified registry's Prometheus text exposition — this
        service's adapted counters plus every other instrument and
        collector registered in the same registry."""
        return self.registry.prometheus_text()

    def _metric_samples(self) -> "list[Sample]":
        """Scrape-time adapter: project :meth:`stats` into registry
        samples so the legacy surfaces stay authoritative (no double
        accounting) while Prometheus sees one namespace."""
        snap = self.stats()
        req, lat = snap["requests"], snap["latency_ms"]
        pack, paging = snap["packing"], snap["paging"]
        out: list[Sample] = []
        for state in ("submitted", "completed", "failed", "rejected",
                      "shed"):
            out.append(Sample("repro_serve_requests_total", req[state],
                              (("state", state),), "counter",
                              "requests by outcome"))
        out.append(Sample("repro_serve_requests_in_flight",
                          req["in_flight"], (), "gauge",
                          "accepted requests not yet resolved"))
        for q in ("p50", "p99", "max", "window_max"):
            out.append(Sample("repro_serve_latency_ms", lat[q],
                              (("quantile", q),), "gauge",
                              "reservoir latency percentiles (ms)"))
        for name, value in (
                ("dispatches", pack["dispatches"]),
                ("packed_requests", pack["packed_requests"]),
                ("lanes", pack["lanes_dispatched"]),
                ("sequential_fallbacks", pack["sequential_fallbacks"])):
            out.append(Sample("repro_serve_pack_" + name, value, (),
                              "counter", "lane-packer dispatch totals"))
        out.append(Sample("repro_serve_lane_occupancy",
                          pack["lane_occupancy"], (), "gauge",
                          "mean lanes carried / flush capacity"))
        out.append(Sample("repro_serve_packing_efficiency",
                          pack["packing_efficiency"], (), "gauge",
                          "dispatches saved vs one per request"))
        out.append(Sample("repro_serve_queue_depth",
                          snap["queue"]["queued"], (), "gauge",
                          "requests waiting in tenant queues"))
        for name in ("n_spills", "n_fills", "spill_bits", "fill_bits"):
            out.append(Sample("repro_paging_" + name, paging[name], (),
                              "counter", "paging traffic under serve"))
        fo = snap["failover"]
        out.append(Sample("repro_failover_replica_deaths_total",
                          fo["replica_deaths"], (), "counter",
                          "replica deaths the service observed"))
        out.append(Sample("repro_failover_requeued_total",
                          fo["requeued_requests"], (), "counter",
                          "in-flight requests re-homed to survivors"))
        slo, energy = snap["slo"], snap["energy"]
        out.append(Sample("repro_serve_goodput",
                          slo["goodput_rps"], (), "gauge",
                          "completions within deadline per second"))
        for name, value in (("with_deadline", slo["with_deadline"]),
                            ("on_time", slo["on_time"]),
                            ("late", slo["late"])):
            out.append(Sample("repro_serve_slo_requests_total", value,
                              (("state", name),), "counter",
                              "deadline-carrying requests by verdict"))
        tenants = snap["tenants"]
        if tenants:
            for tenant, counters in tenants.items():
                out.append(Sample(
                    "repro_serve_deadline_shed_total",
                    counters["shed"], (("tenant", tenant),), "counter",
                    "requests shed on a lapsed deadline, per tenant"))
        else:
            # Schema stability: the family exists from process start.
            out.append(Sample("repro_serve_deadline_shed_total", 0.0,
                              (), "counter",
                              "requests shed on a lapsed deadline, "
                              "per tenant"))
        out.append(Sample("repro_request_energy_nj_total",
                          energy["modeled_request_nj_total"], (),
                          "counter",
                          "modeled DRAM energy over completed "
                          "requests (nJ)"))
        for tenant, counters in tenants.items():
            for state in ("submitted", "completed", "failed",
                          "rejected", "shed"):
                out.append(Sample(
                    "repro_serve_tenant_requests_total",
                    counters[state],
                    (("state", state), ("tenant", tenant)), "counter",
                    "per-tenant requests by outcome"))
        if snap.get("modeled_busy_ns") is not None:
            out.append(Sample("repro_modeled_busy_ns",
                              snap["modeled_busy_ns"], (), "gauge",
                              "modeled DRAM busy time (ns)"))
        out.append(Sample("repro_kernels_cached",
                          snap["kernels_cached"], (), "gauge",
                          "kernels resident in the target's caches"))
        for reason, dropped in self.tracer.drop_stats().items():
            out.append(Sample(
                "repro_trace_dropped_total", dropped,
                (("reason", reason),), "counter",
                "trace data lost silently: finished roots evicted "
                "from the buffer, children past MAX_CHILDREN"))
        tier = snap.get("replica_tier")
        if tier is not None:
            from repro.serve.router import replica_tier_samples
            out.extend(replica_tier_samples(tier))
        return out

    # ------------------------------------------------------------------
    # the worker: weighted-fair admit -> prepare -> pack -> dispatch
    # ------------------------------------------------------------------
    def _pop_locked(self) -> _RawRequest | None:
        """Weighted-fair pop: the tenant queue with the least virtual
        time goes first; its time advances by ``lanes / weight``.

        ``_queues`` only holds tenants with requests waiting — a
        queue that empties is reclaimed together with its virtual
        time (the tenant reseeds from the floor on reactivation), so
        high-cardinality tenant ids never grow the per-pop scan or
        the service's memory.
        """
        if not self._queues:
            return None
        tenant = min(self._queues,
                     key=lambda t: self._vtime.get(t, 0.0))
        queue = self._queues[tenant]
        raw = (self._pop_edf(queue) if self.config.slo_aware
               else queue.popleft())
        vtime = self._vtime.get(tenant, 0.0)
        self._vfloor = max(self._vfloor, vtime)
        charged = vtime + raw.lanes / self._weights.get(tenant, 1.0)
        if queue:
            self._vtime[tenant] = charged
        else:
            del self._queues[tenant]
            self._vtime.pop(tenant, None)
            # The leaving tenant's full charge becomes the floor, so
            # rejoining exactly where it left grants no idle credit.
            self._vfloor = max(self._vfloor, charged)
        return raw

    def _pop_edf(self, queue: "deque[_RawRequest]") -> _RawRequest:
        """EDF-biased pop within one tenant's queue (``slo_aware``).

        Earliest deadline first; deadline-less requests sort last and
        stay FIFO among themselves (the queue index tiebreaks).  With
        ``shed_lapsed`` a lapsed request keeps its earliest-first rank
        — it pops *soonest* so :meth:`_admit` sheds it immediately,
        costing the scan one entry instead of lanes.  Without it,
        lapsed requests sort behind every request that can still make
        its deadline, and execute (late) only once nothing else waits.

        O(queue) scan per pop; queues are bounded by ``max_queue``.
        """
        if len(queue) == 1:
            return queue.popleft()
        inf = float("inf")
        now = (None if self.config.shed_lapsed else time.monotonic())
        best_i = 0
        best_key = None
        for i, raw in enumerate(queue):
            d = inf if raw.deadline is None else raw.deadline
            if now is None:
                key = (d, i)
            else:
                lapsed = raw.deadline is not None and now >= raw.deadline
                key = (1 if lapsed else 0, d, i)
            if best_key is None or key < best_key:
                best_i, best_key = i, key
        raw = queue[best_i]
        del queue[best_i]
        return raw

    def _run_worker(self) -> None:
        try:
            self._worker_loop()
        except BaseException as error:  # noqa: BLE001 - never hang callers
            # An unexpected scheduler failure must not strand callers
            # blocked on handles: fail everything pending — queued,
            # packed, and the request being processed — then stop.
            with self._cond:
                raws = [raw for queue in self._queues.values()
                        for raw in queue]
                for queue in self._queues.values():
                    queue.clear()
                groups = self._packer.drain()
                current = self._current
                self._current = None
                self._closing = True
                self._crashed = True
                self._cond.notify_all()
            if current is not None:
                self._fail_request(current.handle, current.tenant,
                                   error)
            for raw in raws:
                self._fail_request(raw.handle, raw.tenant, error)
            for group in groups:
                for request in group.requests:
                    self._fail_request(request.handle, request.tenant,
                                       error)
            # The black box outlives the crash: dump the merged
            # flight-recorder postmortem before re-raising.
            get_flight_recorder().record("serve.crash",
                                         error=repr(error))
            path = postmortem(f"serve worker crashed: {error!r}")
            if path is not None:
                print(f"[repro] flight-recorder postmortem: {path}",
                      file=sys.stderr)
            raise

    def _worker_loop(self) -> None:
        while True:
            raw = None
            stop = False
            with self._cond:
                while True:
                    raw = self._pop_locked()
                    if raw is not None:
                        break
                    now = time.monotonic()
                    deadline = self._packer.next_deadline()
                    if deadline is not None and now >= deadline:
                        break
                    if (self._flush_cutoffs
                            and self._packer.pending_requests):
                        break  # flush pending: dispatch immediately
                    if self._closing:
                        stop = True
                        break
                    # max(0, ·): a deadline that just passed must poll,
                    # not wait forever (negative = infinite underneath).
                    self._cond.wait(
                        None if deadline is None
                        else max(0.0, deadline - now))

            if raw is not None:
                self._current = raw
                self._admit(raw)
                self._current = None
                self._flush_due(everything=self._flush_ready())
                continue
            if stop:
                for group in self._packer.drain():
                    self._dispatch(group)
                if self._target.is_async:
                    # Replica dispatches resolve on router threads;
                    # close() promises every accepted request resolves
                    # before the worker is joined.
                    self._target.barrier()
                return
            self._flush_due(everything=self._flush_ready())

    def _flush_ready(self) -> bool:
        """True when a flush is waiting and every request it covers
        has left the tenant queues — the moment to force-drain the
        packer.  Not earlier (covered requests still queued must get
        their chance to pack together), not later (a covered request
        in a partial group must not linger behind max_wait).

        Only queue *heads* are inspected (O(tenants), not
        O(backlog)): per-tenant queues are FIFO, so an older covered
        request sits at the front.  Two submitters racing into one
        queue can briefly hide a covered request behind a newer id;
        the next pop re-checks, so the drain is only delayed by an
        admit, never lost.
        """
        with self._cond:
            cutoff = max(self._flush_cutoffs, default=-1)
            if cutoff < 0:
                return False
            return not any(
                queue[0].handle.request_id <= cutoff
                for queue in self._queues.values() if queue)

    def _admit(self, raw: _RawRequest) -> None:
        """Prepare one raw request and pack (or directly dispatch) it."""
        raw.admit_span.finish()  # queue wait ends here
        if (self.config.slo_aware and self.config.shed_lapsed
                and raw.deadline is not None
                and time.monotonic() >= raw.deadline):
            # Shed: the deadline lapsed in the queue; executing now
            # can only produce a late answer while displacing lanes
            # from requests that can still make theirs.
            self._fail_request(raw.handle, raw.tenant, DeadlineExceeded(
                f"request #{raw.handle.request_id} shed: deadline "
                f"lapsed before admission"))
            return
        try:
            request = prepare(
                raw.handle, raw.op_or_root, raw.operands, raw.feeds,
                raw.width, raw.tenant, raw.engine,
                self._target.backend, raw.submitted_at)
        except Exception as error:  # noqa: BLE001 - fails its handle only
            self._fail_request(raw.handle, raw.tenant, error)
            return
        request.span = raw.handle.span
        request.deadline = raw.deadline
        if request.span.recording:
            # Open until the group dispatches: the packer wait.
            request.pack_span = request.span.child(
                "serve.pack", kernel=request.key[0][0],
                engine=request.key[1])
        raw.handle.n_elements = request.n_elements
        if not self.config.pack:
            group = PackGroup(key=request.key,
                              created_at=time.monotonic())
            group.add(request)
            self._dispatch(group)
            return
        full = self._packer.add(request)
        if full is not None:
            self._dispatch(full)

    def _flush_due(self, everything: bool) -> None:
        now = time.monotonic()
        groups = (self._packer.drain() if everything
                  else self._packer.due(now))
        for group in groups:
            self._dispatch(group)

    # ------------------------------------------------------------------
    # dispatch and scatter
    # ------------------------------------------------------------------
    def _execute(self, request: PreparedRequest,
                 vectors: list[np.ndarray]) -> np.ndarray:
        if request.kind == "op":
            return self._target.map_op(request.op_name, vectors,
                                       request.width, request.engine)
        return self._target.map_expr(
            request.root, dict(zip(request.slot_names, vectors)),
            request.width, request.engine)

    def _dispatch(self, group: PackGroup) -> None:
        """One shared wide dispatch; scatter slices to the handles.

        A failing packed dispatch falls back to sequential per-request
        execution (when configured), so only the genuinely poisoned
        request fails its handle.  No exit path — not even a
        ``KeyboardInterrupt`` mid-pack — may leave a co-packed handle
        unresolved: a caller blocked on :meth:`ServeHandle.result`
        would never wake.
        """
        if self._target.is_async:
            self._dispatch_async(group)
            return
        requests = group.requests
        dispatch_span = self._open_dispatch(group)
        try:
            packed, slices = group.pack()
            with use_span(dispatch_span):
                out = self._execute(requests[0], packed)
            dispatch_span.finish()
            self.metrics.record_dispatch(
                len(requests), group.total_lanes, self.capacity)
            for request, (lo, hi) in zip(requests, slices):
                self._graft_and_scatter(request, dispatch_span, lo, hi)
                self._finish_request(request, out[lo:hi].copy())
        except BaseException as error:  # noqa: BLE001 - see docstring
            dispatch_span.finish(error)
            self._graft_failure(requests, dispatch_span)
            if (isinstance(error, Exception)
                    and self.config.fallback_sequential
                    and len(requests) > 1):
                self.metrics.record_fallback()
                self._dispatch_sequentially(requests)
            else:
                # Already-resolved handles are skipped (done() guard).
                for request in requests:
                    self._fail_request(request.handle, request.tenant,
                                       error)
                if not isinstance(error, Exception):
                    raise

    def _dispatch_sequentially(self,
                               requests: list[PreparedRequest]) -> None:
        for request in requests:
            retry_span = (request.span.child("serve.dispatch",
                                             fallback=True)
                          if request.span.recording else NOOP_SPAN)
            try:
                with use_span(retry_span):
                    out = self._execute(request, request.vectors)
            except Exception as error:  # noqa: BLE001
                retry_span.finish(error)
                self._fail_request(request.handle, request.tenant,
                                   error)
            else:
                retry_span.finish()
                self.metrics.record_dispatch(1, request.n_elements,
                                             self.capacity)
                if request.span.recording:
                    request.span.child("serve.scatter").finish()
                self._finish_request(request, out)

    # ------------------------------------------------------------------
    # trace plumbing around dispatch
    # ------------------------------------------------------------------
    def _open_dispatch(self, group: PackGroup):
        """Close the group's pack spans and open one *detached*
        ``serve.dispatch`` span shared by every request in the group.

        Detached because the packed execution belongs to N request
        trees at once; at scatter time a deep copy of the finished
        dispatch subtree is grafted into each traced request
        (:meth:`_graft_and_scatter`), so every request still reads as
        one self-contained tree."""
        requests = group.requests
        for request in requests:
            request.pack_span.finish()
        get_flight_recorder().record(
            "serve.dispatch", kernel=str(requests[0].key[0][0]),
            n_requests=len(requests), lanes=group.total_lanes)
        if not any(r.span.recording for r in requests):
            return NOOP_SPAN
        key = requests[0].key
        return self.tracer.start_detached(
            "serve.dispatch", kernel=key[0][0], engine=key[1],
            n_requests=len(requests), lanes=group.total_lanes)

    def _graft_and_scatter(self, request: PreparedRequest,
                           dispatch_span, lo: int, hi: int) -> None:
        if not request.span.recording:
            return
        if dispatch_span.recording:
            request.span.adopt(dispatch_span.copy_tree())
        request.span.child("serve.scatter", lo=lo, hi=hi).finish()

    def _graft_failure(self, requests: list[PreparedRequest],
                       dispatch_span) -> None:
        """Preserve a *failed* shared dispatch in every still-pending
        traced request, so post-mortems see the failed attempt next to
        whatever the fallback recorded."""
        if not dispatch_span.recording:
            return
        for request in requests:
            if (request.span.recording
                    and not request.handle._future.done()):
                request.span.adopt(dispatch_span.copy_tree())

    # ------------------------------------------------------------------
    # asynchronous dispatch (replica-router targets)
    # ------------------------------------------------------------------
    def _dispatch_async(self, group: PackGroup) -> None:
        """Hand one packed group to the async target and return; the
        target's completion callback — fired from a router/replica
        thread, possibly after a transparent failover — scatters the
        slices.  Handle-resolution helpers are already thread-safe."""
        requests = group.requests
        dispatch_span = self._open_dispatch(group)
        try:
            packed, slices = group.pack()
        except Exception as error:  # noqa: BLE001 - fails the group only
            dispatch_span.finish(error)
            self._graft_failure(requests, dispatch_span)
            for request in requests:
                self._fail_request(request.handle, request.tenant,
                                   error)
            return

        def on_done(out, error, replica_id) -> None:
            dispatch_span.finish(error)
            if error is not None:
                self._graft_failure(requests, dispatch_span)
                if (isinstance(error, Exception)
                        and self.config.fallback_sequential
                        and len(requests) > 1):
                    self.metrics.record_fallback()
                    for request in requests:
                        self._submit_single_async(request)
                else:
                    for request in requests:
                        self._fail_request(request.handle,
                                           request.tenant, error)
                return
            self.metrics.record_dispatch(
                len(requests), group.total_lanes, self.capacity,
                replica=replica_id)
            for request, (lo, hi) in zip(requests, slices):
                self._graft_and_scatter(request, dispatch_span, lo, hi)
                self._finish_request(request, out[lo:hi].copy())

        # Ambient during placement/transport: router.place and
        # replica.transport spans attach under the dispatch span.
        with use_span(dispatch_span):
            self._target.submit_pack(requests[0], packed,
                                     group.total_lanes, on_done)

    def _submit_single_async(self, request: PreparedRequest) -> None:
        """Sequential-fallback unit: one request, alone, so a poisoned
        request fails its own handle and the rest still complete."""
        retry_span = (request.span.child("serve.dispatch",
                                         fallback=True)
                      if request.span.recording else NOOP_SPAN)

        def on_done(out, error, replica_id) -> None:
            retry_span.finish(error)
            if error is not None:
                self._fail_request(request.handle, request.tenant,
                                   error)
                return
            self.metrics.record_dispatch(
                1, request.n_elements, self.capacity,
                replica=replica_id)
            if request.span.recording:
                request.span.child("serve.scatter").finish()
            self._finish_request(request, out)

        with use_span(retry_span):
            self._target.submit_pack(request, request.vectors,
                                     request.n_elements, on_done)

    def _finish_request(self, request: PreparedRequest,
                        values: np.ndarray) -> None:
        if request.handle._future.done():
            return
        now = time.monotonic()
        on_time = (None if request.deadline is None
                   else now <= request.deadline)
        energy_nj = self._energy.nj_per_request(request)
        request.handle.on_time = on_time
        request.handle.energy_nj = energy_nj
        request.handle._future.set_result(values)
        latency_s = now - request.submitted_at
        self.metrics.record_completion(request.tenant, latency_s,
                                       on_time=on_time,
                                       energy_nj=energy_nj)
        self._latency_hist.observe(latency_s)
        if energy_nj is not None:
            self._energy_hist.observe(energy_nj * 1e-9)
        # Device-PMU attribution: bill the finished request's lanes
        # (and modeled energy) to its tenant and kernel identity.
        get_pmu().attribute(request.tenant, str(request.key[0][0]),
                            lanes=request.n_elements,
                            energy_nj=energy_nj)
        request.handle.span.finish()
        self._release_inflight(request.handle)

    def _fail_request(self, handle: ServeHandle, tenant: str,
                      error: BaseException) -> None:
        if handle._future.done():
            return
        handle._future.set_exception(error)
        if isinstance(error, DeadlineExceeded):
            # Shed, not failed: the request never executed; goodput
            # math and error-rate alerts must not conflate the two.
            self.metrics.record_shed(tenant)
            get_flight_recorder().record(
                "serve.shed", request=handle.request_id,
                tenant=tenant)
        else:
            self.metrics.record_failure(tenant)
            get_flight_recorder().record(
                "serve.fail", request=handle.request_id,
                tenant=tenant, error=repr(error))
        handle.span.finish(error)
        self._release_inflight(handle)

    def _release_inflight(self, handle: ServeHandle) -> None:
        with self._cond:
            self._unresolved.discard(handle.request_id)
            self._cond.notify_all()
