"""Multi-tenant serving layer with SIMD lane-packing.

The system layer that turns *many small concurrent user requests* into
*few wide in-DRAM dispatches* — the traffic shape SIMDRAM is built
for.  See :mod:`repro.serve.service` for the architecture:

    request -> admission control -> per-tenant fair queue
            -> lane packer (same kernel identity + width => one group)
            -> shared wide dispatch on a Simdram / SimdramCluster
            -> per-request result slices scattered to ServeHandles

Quick start::

    from repro import SimdramCluster
    from repro.serve import ServeConfig, SimdramService

    with SimdramCluster(4) as cluster, \\
            SimdramService(cluster) as svc:
        svc.warmup([("add", 8)])
        handles = [svc.submit("add", a, b, tenant=user)
                   for user, a, b in traffic]
        results = [h.result() for h in handles]
        print(svc.stats()["packing"])
"""

from repro.errors import AdmissionError, DeadlineExceeded
from repro.serve.batcher import LanePacker, PackGroup, PreparedRequest
from repro.serve.metrics import RequestEnergyModel, ServeMetrics
from repro.serve.router import ReplicaRouter
from repro.serve.service import ServeConfig, ServeHandle, SimdramService
from repro.serve.streaming import (
    StreamHandle,
    StreamingServer,
    affine_relu_step,
    stream_golden,
)

__all__ = [
    "SimdramService",
    "ServeConfig",
    "ServeHandle",
    "ServeMetrics",
    "RequestEnergyModel",
    "ReplicaRouter",
    "StreamingServer",
    "StreamHandle",
    "affine_relu_step",
    "stream_golden",
    "LanePacker",
    "PackGroup",
    "PreparedRequest",
    "AdmissionError",
    "DeadlineExceeded",
]
