"""The fusion compiler: one µProgram for a whole expression DAG.

Where :func:`repro.core.compiler.compile_operation` compiles a single
catalog operation, this module compiles an :class:`~repro.core.expr.Expr`
DAG end to end:

1. every operation's gate-level circuit is instantiated into **one**
   shared :class:`~repro.logic.circuit.Circuit`, each operation's output
   bits wired directly as the next operation's input nets (constants
   become constant nets and fold away);
2. the stitched circuit becomes a single MIG and is optimized *across*
   operation boundaries — Step 1 sees the whole pipeline;
3. the existing Step-2 :class:`~repro.uprog.scheduler.Scheduler` then
   allocates rows for the whole graph in one pass, so intermediate
   values live in B-group planes and compiler temporaries with
   cross-operation temp-row reuse and dead-temp freeing — they never
   touch named row blocks, never transpose, never allocate per step.

The resulting :class:`FusedKernel` behaves exactly like a catalog
µProgram at Step 3: it binds up to three input spaces (the ``bbop``
instruction carries three source addresses), one output space and a
temp region; the control unit caches its
:class:`~repro.exec.plan.ExecutionPlan` keyed on the DAG hash.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.core.compiler import backend_style
from repro.core.expr import (
    KIND_CONST,
    KIND_OP,
    Expr,
    analyze,
    dag_hash,
    n_ops,
    post_order,
)
from repro.core.operations import get_operation
from repro.errors import OperationError
from repro.isa.instructions import register_opcode
from repro.logic.circuit import Circuit, Net
from repro.logic.mig import Mig
from repro.logic.optimize import optimize
from repro.uprog.program import MicroProgram, OperandSpec
from repro.uprog.scheduler import ScheduleOptions, schedule_stitched
from repro.uprog.uops import INPUT_SPACES, URow
from repro.util.bitops import to_unsigned

#: The bbop instruction carries at most this many source base addresses.
MAX_FUSED_INPUTS = len(INPUT_SPACES)

#: Operand-slot prefixes, matching compile_operation's row naming.
_SLOT_PREFIXES = ("a", "b", "c")


@dataclass(frozen=True)
class FusedKernel:
    """A compiled expression DAG: one µProgram plus its interface."""

    program: MicroProgram
    root: Expr
    width: int                        # pipeline element width
    backend: str
    dag_hash: str
    input_names: tuple[str, ...]      # leaf names, operand-slot order
    input_widths: tuple[int, ...]     # bit width of each operand slot
    out_width: int
    signed: bool                      # root operation's signedness
    n_ops: int                        # catalog operations stitched

    @property
    def op_name(self) -> str:
        return self.program.op_name


@dataclass(frozen=True)
class MultiKernel:
    """A compiled multi-root expression DAG: one µProgram, N outputs.

    The multi-output analogue of :class:`FusedKernel`: all roots share
    one input pool (at most three leaves) and one packed OUTPUT space;
    ``slices`` gives each root's ``(bit offset, width)`` inside the
    output block, so one dispatch computes every root at once.
    """

    program: MicroProgram
    roots: tuple[tuple[str, Expr], ...]   # (name, root), given order
    width: int                            # pipeline element width
    backend: str
    digest: str                           # joint content hash
    input_names: tuple[str, ...]          # leaf names, operand-slot order
    input_widths: tuple[int, ...]         # bit width of each operand slot
    slices: dict[str, tuple[int, int]]    # root name -> (bit offset, width)
    out_widths: dict[str, int]            # root name -> output bit width
    signed: dict[str, bool]               # root name -> result signedness

    @property
    def op_name(self) -> str:
        return self.program.op_name

    @property
    def total_out_width(self) -> int:
        """Bits of the packed OUTPUT space (all roots contiguous)."""
        return sum(self.out_widths.values())


def fused_op_name(digest: str) -> str:
    """The µProgram/bbop name of a fused kernel, from its DAG hash."""
    return f"fused_{digest}"


def kernel_identity(op_or_root: "str | Expr", width: int,
                    backend: str = "simdram") -> tuple[str, int, str]:
    """Canonical identity of the kernel a dispatch will execute.

    Catalog operations are identified by name, expression DAGs by
    their stable content hash — the same keys the framework's
    program/kernel caches use.  Two requests with equal identities
    replay the *same* µProgram over the same operand interface, so
    they may share one wide dispatch with their lanes concatenated;
    this is the compatibility predicate the serving layer's lane
    packer batches on.
    """
    if isinstance(op_or_root, Expr):
        return (fused_op_name(dag_hash(op_or_root)), width, backend)
    return (str(op_or_root), width, backend)


def _stitch_root(circuit: Circuit, root: Expr, width: int,
                 input_widths: dict[str, int], style: str,
                 slot_of: dict[str, int]) -> list[Net]:
    """Stitch one DAG into the shared circuit; returns the root's nets.

    Each operation's circuit factory receives its children's *output
    nets* directly as operand bit lists — the wiring that makes
    intermediates free.  Input leaves become circuit inputs named by
    their operand slot (``a0..``, ``b0..``, ``c0..``), constants become
    constant nets encoded at the width each consumer expects (the same
    const value may feed consumers of different widths); the circuit's
    structural hashing dedups subgraphs shared between roots.
    """
    bits: dict[Expr, list[Net]] = {}

    def bits_of(node: Expr) -> list[Net]:
        cached = bits.get(node)
        if cached is not None:
            return cached
        prefix = _SLOT_PREFIXES[slot_of[node.name]]
        nets = [circuit.input(f"{prefix}{i}")
                for i in range(input_widths[node.name])]
        bits[node] = nets
        return nets

    def const_nets(value: int, w: int) -> list[Net]:
        encoded = int(to_unsigned(np.array([value]), w)[0])
        return [circuit.const(bool((encoded >> i) & 1)) for i in range(w)]

    for node in post_order(root):
        if node.kind != KIND_OP:
            continue
        spec = get_operation(node.op)
        args = [const_nets(child.value, w) if child.kind == KIND_CONST
                else bits_of(child)
                for child, w in zip(node.children, spec.in_widths(width))]
        outputs = spec.build(circuit, args, style)
        expected = spec.out_width(width)
        if len(outputs) != expected:
            raise OperationError(
                f"{spec.name}: factory produced {len(outputs)} output "
                f"bits, spec says {expected}")
        bits[node] = outputs
    return bits[root]


def _input_interface(input_widths: dict[str, int],
                     ) -> tuple[list[OperandSpec], dict[str, URow]]:
    """Operand specs and symbolic row bindings for the input leaves."""
    input_rows: dict[str, URow] = {}
    input_specs: list[OperandSpec] = []
    for slot, (_, in_width) in enumerate(input_widths.items()):
        space = INPUT_SPACES[slot]
        input_specs.append(OperandSpec(space, in_width))
        for bit in range(in_width):
            input_rows[f"{_SLOT_PREFIXES[slot]}{bit}"] = URow(space, bit)
    return input_specs, input_rows


def _check_input_count(input_widths: dict[str, int]) -> None:
    if len(input_widths) > MAX_FUSED_INPUTS:
        raise OperationError(
            f"fused expression binds {len(input_widths)} distinct inputs "
            f"{sorted(input_widths)}; the bbop instruction carries at "
            f"most {MAX_FUSED_INPUTS} source addresses (fold broadcast "
            f"values into expr.const leaves)")


def compile_expr(root: Expr, width: int, backend: str = "simdram",
                 options: ScheduleOptions | None = None,
                 optimize_mig: bool = True) -> FusedKernel:
    """Compile an expression DAG into one fused µProgram.

    Mirrors :func:`~repro.core.compiler.compile_operation` (including
    the Ambit baseline's naive default schedule) but runs Steps 1+2 on
    the stitched whole-pipeline graph.
    """
    analysis = analyze(root, width)
    _check_input_count(analysis.input_widths)
    if options is None and backend == "ambit":
        options = ScheduleOptions(reuse=False)

    circuit = Circuit()
    slot_of = {name: i for i, name in enumerate(analysis.input_widths)}
    nets = _stitch_root(circuit, root, width, analysis.input_widths,
                        backend_style(backend), slot_of)
    for i, net in enumerate(nets):
        circuit.set_output(f"y{i}", net)

    mig = Mig.from_circuit(circuit)
    if optimize_mig:
        mig, _ = optimize(mig)

    input_specs, input_rows = _input_interface(analysis.input_widths)
    digest = dag_hash(root)
    name = fused_op_name(digest)
    program, _ = schedule_stitched(
        mig, op_name=name, backend=backend, element_width=width,
        input_specs=input_specs, input_rows=input_rows,
        output_groups=[("y", [f"y{i}" for i in range(analysis.out_width)])],
        options=options, source_hash=digest)
    # Fused kernels are issued through the same bbop ISA as catalog
    # operations; give the kernel an opcode on first compilation.
    register_opcode(name)
    return FusedKernel(
        program=program, root=root, width=width, backend=backend,
        dag_hash=digest,
        input_names=tuple(analysis.input_widths),
        input_widths=tuple(analysis.input_widths.values()),
        out_width=analysis.out_width, signed=analysis.signed,
        n_ops=n_ops(root))


def compile_multi(roots: dict[str, Expr], width: int,
                  backend: str = "simdram",
                  options: ScheduleOptions | None = None,
                  optimize_mig: bool = True) -> MultiKernel:
    """Compile several root expressions into one multi-output µProgram.

    All roots draw from one shared pool of at most three input leaves
    (with consistent widths); shared subgraphs between roots are
    stitched once (the circuit's structural hashing dedups them).  The
    outputs are packed contiguously into the OUTPUT space; the returned
    :class:`MultiKernel` records each root's ``(bit offset, width)``
    slice.  This is the multi-root entry used by
    :meth:`Simdram.run_multi` and the lazy frontend's
    ``evaluate_all``.
    """
    if not roots:
        raise OperationError("compile_multi needs at least one root")
    if options is None and backend == "ambit":
        options = ScheduleOptions(reuse=False)

    analyses = {name: analyze(root, width) for name, root in roots.items()}
    input_widths: dict[str, int] = {}
    for analysis in analyses.values():
        for leaf, w in analysis.input_widths.items():
            known = input_widths.setdefault(leaf, w)
            if known != w:
                raise OperationError(
                    f"input {leaf!r} is consumed at {known}-bit and "
                    f"{w}-bit widths across roots")
    _check_input_count(input_widths)

    circuit = Circuit()
    style = backend_style(backend)
    slot_of = {name: i for i, name in enumerate(input_widths)}
    output_groups: list[tuple[str, list[str]]] = []
    for out_name, analysis in analyses.items():
        nets = _stitch_root(circuit, analysis.root, width, input_widths,
                            style, slot_of)
        bit_names = []
        for i, net in enumerate(nets):
            bit_name = f"{out_name}_{i}"
            circuit.set_output(bit_name, net)
            bit_names.append(bit_name)
        output_groups.append((out_name, bit_names))

    mig = Mig.from_circuit(circuit)
    if optimize_mig:
        mig, _ = optimize(mig)

    input_specs, input_rows = _input_interface(input_widths)
    digest = multi_digest(roots)
    name = fused_op_name(digest)
    program, slices = schedule_stitched(
        mig, op_name=name, backend=backend, element_width=width,
        input_specs=input_specs, input_rows=input_rows,
        output_groups=output_groups, options=options, source_hash=digest)
    register_opcode(name)
    return MultiKernel(
        program=program, roots=tuple(roots.items()), width=width,
        backend=backend, digest=digest,
        input_names=tuple(input_widths),
        input_widths=tuple(input_widths.values()),
        slices=slices,
        out_widths={name: analysis.out_width
                    for name, analysis in analyses.items()},
        signed={name: analysis.signed
                for name, analysis in analyses.items()})


def multi_digest(roots: dict[str, Expr]) -> str:
    """Joint content hash of a named multi-root DAG (the cache key)."""
    token = "+".join(f"{name}:{dag_hash(root)}"
                     for name, root in sorted(roots.items()))
    return hashlib.sha256(token.encode()).hexdigest()[:16]
