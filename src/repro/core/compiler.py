"""The SIMDRAM three-step compilation pipeline (paper §3, Fig. 1).

``compile_operation`` chains:

* **Step 1** — instantiate the operation's gate-level circuit, convert it
  to a majority-inverter graph, and optimize it to minimize row
  activations (:mod:`repro.logic`);
* **Step 2** — allocate operands/temporaries to row spaces and schedule
  the MIG into an AAP/AP µProgram (:mod:`repro.uprog`).

Step 3 (execution) is performed by the control unit at ``bbop`` time
(:mod:`repro.exec`).  The ``backend`` argument selects the substrate
style: ``"simdram"`` compiles the MAJ/NOT form, ``"ambit"`` compiles the
same operation lowered to 2-input AND/OR (+NOT) gates only, which is the
paper's main PIM baseline.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.operations import OperationSpec, get_operation
from repro.errors import OperationError
from repro.logic.mig import Mig
from repro.logic.optimize import optimize
from repro.uprog.program import MicroProgram, OperandSpec
from repro.uprog.scheduler import ScheduleOptions, schedule
from repro.uprog.uops import INPUT_SPACES, Space, URow

BACKENDS = ("simdram", "ambit")

_BACKEND_STYLE = {"simdram": "maj", "ambit": "classic"}


def backend_style(backend: str) -> str:
    """Map a backend name to its circuit style."""
    try:
        return _BACKEND_STYLE[backend]
    except KeyError:
        raise OperationError(
            f"backend must be one of {BACKENDS}, got {backend!r}") from None


def build_mig(spec: OperationSpec, width: int, backend: str = "simdram",
              optimize_mig: bool = True) -> Mig:
    """Step 1: circuit -> (optimized) MIG for one operation/width."""
    circuit = spec.build_circuit(width, backend_style(backend))
    mig = Mig.from_circuit(circuit)
    if optimize_mig:
        mig, _ = optimize(mig)
    return mig


def compile_operation(spec: OperationSpec, width: int,
                      backend: str = "simdram",
                      options: ScheduleOptions | None = None,
                      optimize_mig: bool = True) -> MicroProgram:
    """Steps 1+2: produce the µProgram for one operation at one width.

    The Ambit baseline defaults to *naive* scheduling (``reuse=False``):
    real Ambit replays a fixed command sequence per bulk gate — three
    operand loads and a fused TRA-copy — with no inter-gate B-group
    reuse.  Exploiting reuse to minimize activations is precisely what
    SIMDRAM's Step 2 contributes, so only the SIMDRAM backend gets it.
    Pass ``options`` explicitly to override (used by the ablation bench).
    """
    if options is None and backend == "ambit":
        options = ScheduleOptions(reuse=False)
    mig = build_mig(spec, width, backend, optimize_mig)

    input_rows: dict[str, URow] = {}
    input_specs: list[OperandSpec] = []
    for operand_index, (prefix, in_width) in enumerate(
            zip(spec.operand_names(), spec.in_widths(width))):
        space = INPUT_SPACES[operand_index]
        input_specs.append(OperandSpec(space, in_width))
        for bit in range(in_width):
            input_rows[f"{prefix}{bit}"] = URow(space, bit)

    out_width = spec.out_width(width)
    output_rows = {f"y{i}": URow(Space.OUTPUT, i) for i in range(out_width)}

    return schedule(
        mig,
        op_name=spec.name,
        backend=backend,
        element_width=width,
        input_specs=input_specs,
        output_spec=OperandSpec(Space.OUTPUT, out_width),
        input_rows=input_rows,
        output_rows=output_rows,
        options=options,
    )


@lru_cache(maxsize=512)
def compile_cached(op_name: str, width: int,
                   backend: str = "simdram") -> MicroProgram:
    """Memoized :func:`compile_operation` with default options.

    µProgram compilation is deterministic, so the evaluation harness and
    application models share one compiled program per (op, width,
    backend) — exactly like the control unit's scratchpad at boot.
    """
    return compile_operation(get_operation(op_name), width, backend=backend)
