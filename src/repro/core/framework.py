"""The end-to-end SIMDRAM framework facade.

:class:`Simdram` wires together every layer of the reproduction the way
the paper's Figure 1 wires the real system:

1. operations are compiled (Step 1+2) on first use and their µPrograms
   installed into the control unit's scratchpad;
2. host arrays enter DRAM through the transposition unit into vertical
   row blocks managed by the allocator;
3. a ``bbop`` instruction is formed, encoded/decoded through the ISA, and
   dispatched to the control unit, which replays the µProgram across the
   participating banks (Step 3).

Typical use::

    sim = Simdram()
    a = sim.array([1, 2, 3, 4], width=8)
    b = sim.array([10, 20, 30, 40], width=8)
    total = sim.run("add", a, b)
    print(total.to_numpy())        # [11 22 33 44]
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.compiler import compile_operation
from repro.core.expr import Expr, dag_hash
from repro.core.fuse import FusedKernel, MultiKernel, multi_digest
from repro.core.fuse import compile_expr as _compile_expr
from repro.core.fuse import compile_multi as _compile_multi
from repro.core.operations import (
    CATALOG,
    BuildFn,
    GoldenFn,
    OperationSpec,
    get_operation,
    register_operation,
)
from repro.dram.bank import DramModule
from repro.dram.commands import CommandStats
from repro.dram.energy import DramEnergy
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTiming
from repro.errors import ExecutionError, OperationError
from repro.exec.control_unit import ControlUnit, ProgramKey
from repro.exec.engines import ExecutionEngine
from repro.exec.layout import RowLayout
from repro.exec.memory import RowBlock, VerticalAllocator
from repro.exec.tracker import ObjectTracker
from repro.exec.transposition import TranspositionUnit
from repro.isa.instructions import BbopInstruction, bbop, bbop_trsp_init
from repro.obs.tracing import span as obs_span
from repro.uprog.program import MicroProgram
from repro.uprog.scheduler import ScheduleOptions
from repro.uprog.uops import INPUT_SPACES, Space


@dataclass(frozen=True)
class SimdramConfig:
    """Configuration of a simulated SIMDRAM system."""

    geometry: DramGeometry = field(default_factory=DramGeometry.sim_small)
    timing: DramTiming = field(default_factory=DramTiming.ddr4_2400)
    energy: DramEnergy = field(default_factory=DramEnergy.ddr4)
    schedule: ScheduleOptions = field(default_factory=ScheduleOptions)
    optimize_mig: bool = True
    backend: str = "simdram"  # default substrate for compiled operations


class SimdramArray:
    """A handle to a vertically laid-out vector resident in DRAM.

    A handle is ``"live"`` until its rows are released: explicitly
    through :meth:`free`, or by the runtime's paging layer, which marks
    the handle ``"evicted"`` after spilling its bits to host memory.
    Reading a non-live handle raises :class:`~repro.errors.ExecutionError`
    instead of returning whatever now occupies the rows.
    """

    def __init__(self, framework: "Simdram", block: RowBlock,
                 n_elements: int, width: int, signed: bool) -> None:
        self._framework = framework
        self.block = block
        self.n_elements = n_elements
        self.width = width
        self.signed = signed
        self.status = "live"  # "live" | "freed" | "evicted"

    def to_numpy(self) -> np.ndarray:
        """Read the vector back to the host (through the transposer)."""
        return self._framework.read(self)

    def require_live(self) -> None:
        """Raise unless this handle still owns its rows."""
        if self.status != "live":
            raise ExecutionError(
                f"array at rows [{self.block.base}, {self.block.end}) "
                f"is {self.status}; its rows may hold unrelated data")

    def free(self) -> None:
        """Release the underlying row block and its tracker entry.

        Idempotent: freeing an already-freed or evicted handle is a
        no-op (an evicted handle's rows were released at eviction).
        """
        if self.status == "live":
            self._framework.tracker.release(self.block.base)
            self._framework._allocator.free(self.block)
        self.status = "freed"

    def __len__(self) -> int:
        return self.n_elements

    def __repr__(self) -> str:
        sign = "i" if self.signed else "u"
        return (f"SimdramArray({self.n_elements} x {sign}{self.width}, "
                f"rows [{self.block.base}, {self.block.end}), "
                f"{self.status})")


class Simdram:
    """End-to-end SIMDRAM system simulator and programming interface."""

    def __init__(self, config: SimdramConfig | None = None,
                 trace: bool = False, seed: int | None = 1) -> None:
        self.config = config or SimdramConfig()
        self.module = DramModule(self.config.geometry, trace=trace,
                                 seed=seed)
        self.control = ControlUnit()
        self.transposer = TranspositionUnit(self.config.timing,
                                            self.config.energy)
        self.tracker = ObjectTracker(capacity=4096)
        self._allocator = VerticalAllocator(self.config.geometry)
        self._programs: dict[tuple[str, int, str], MicroProgram] = {}
        #: Fused-kernel cache: (DAG hash, width, backend) -> FusedKernel.
        self._fused: dict[tuple[str, int, str], FusedKernel] = {}
        #: Multi-root kernel cache: (joint hash, width, backend).
        self._multi: dict[tuple[str, int, str], MultiKernel] = {}
        #: Stats of the most recent :meth:`run` call.
        self.last_stats: CommandStats | None = None
        #: Instruction log (every bbop issued), for tests/inspection.
        self.issued: list[BbopInstruction] = []

    # ------------------------------------------------------------------
    # operation management
    # ------------------------------------------------------------------
    def compile(self, op_name: str, width: int,
                backend: str | None = None) -> MicroProgram:
        """Compile (steps 1+2) and install an operation's µProgram."""
        backend = backend or self.config.backend
        key = (op_name, width, backend)
        program = self._programs.get(key)
        if program is None:
            spec = get_operation(op_name)
            # The configured schedule options describe *SIMDRAM's* Step-2
            # scheduler; the Ambit baseline keeps its own default (fixed
            # per-gate sequences, see compile_operation).
            options = (self.config.schedule if backend == "simdram"
                       else None)
            program = compile_operation(
                spec, width, backend=backend, options=options,
                optimize_mig=self.config.optimize_mig)
            self.control.install(program)
            self._programs[key] = program
        return program

    def compile_expr(self, root: Expr, width: int,
                     backend: str | None = None) -> FusedKernel:
        """Compile an expression DAG into one fused µProgram (cached).

        The cache key is the DAG's stable content hash plus the element
        width and backend, so structurally identical pipelines share one
        compiled kernel — and, downstream, one control-unit
        :class:`~repro.exec.plan.ExecutionPlan` per row layout.
        """
        backend = backend or self.config.backend
        key = (dag_hash(root), width, backend)
        kernel = self._fused.get(key)
        if kernel is None:
            options = (self.config.schedule if backend == "simdram"
                       else None)
            kernel = _compile_expr(
                root, width, backend=backend, options=options,
                optimize_mig=self.config.optimize_mig)
            self.control.install(kernel.program)
            self._fused[key] = kernel
        return kernel

    def compile_multi(self, roots: dict[str, Expr], width: int,
                      backend: str | None = None) -> MultiKernel:
        """Compile several roots into one multi-output µProgram (cached).

        The cache key is the joint content hash of the named roots plus
        the element width and backend, exactly like
        :meth:`compile_expr` for single-root kernels.
        """
        backend = backend or self.config.backend
        key = (multi_digest(roots), width, backend)
        kernel = self._multi.get(key)
        if kernel is None:
            options = (self.config.schedule if backend == "simdram"
                       else None)
            kernel = _compile_multi(
                roots, width, backend=backend, options=options,
                optimize_mig=self.config.optimize_mig)
            self.control.install(kernel.program)
            self._multi[key] = kernel
        return kernel

    def adopt_program(self, program: MicroProgram,
                      backend: str | None = None) -> None:
        """Install an externally compiled µProgram into this module.

        µPrograms are symbolic (geometry-independent), so a cluster
        compiles each operation once and adopts the same program into
        every member module's scratchpad instead of re-running steps
        1+2 per module.  No-op if an identical program is installed.
        """
        backend = backend or program.backend
        key = (program.op_name, program.element_width, backend)
        if self._programs.get(key) is not program:
            self.control.install(program)
            self._programs[key] = program

    def adopt_kernel(self, cache_key: tuple[str, int, str],
                     kernel: FusedKernel) -> None:
        """Install an externally compiled fused kernel (see
        :meth:`adopt_program`); ``cache_key`` is ``(dag_hash, width,
        backend)``, matching :meth:`compile_expr`'s cache."""
        if self._fused.get(cache_key) is not kernel:
            self.control.install(kernel.program)
            self._fused[cache_key] = kernel

    def adopt_multi(self, cache_key: tuple[str, int, str],
                    kernel: MultiKernel) -> None:
        """Install an externally compiled multi-root kernel (see
        :meth:`adopt_program`); ``cache_key`` is ``(joint hash, width,
        backend)``, matching :meth:`compile_multi`'s cache."""
        if self._multi.get(cache_key) is not kernel:
            self.control.install(kernel.program)
            self._multi[cache_key] = kernel

    def register_operation(self, name: str, arity: int, build: BuildFn,
                           golden: GoldenFn, category: str = "user",
                           description: str = "user-defined operation",
                           **kwargs) -> OperationSpec:
        """Register a new operation (the paper's flexibility claim)."""
        return register_operation(name, arity, category, description,
                                  build, golden, **kwargs)

    @property
    def operations(self) -> list[str]:
        """Names of all currently registered operations."""
        return sorted(CATALOG)

    @property
    def kernel_cache_size(self) -> int:
        """Compiled kernels cached on this module (catalog µPrograms,
        fused single-root and multi-root kernels, plus the compiled
        executors engines have memoized on cached execution plans) —
        the telemetry the lazy engine and the serving layer report."""
        return (len(self._programs) + len(self._fused)
                + len(self._multi) + self.control.compiled_cache_size())

    def warm_executor(self, program: MicroProgram,
                      input_widths: "tuple[int, ...] | list[int]",
                      out_width: int,
                      engine: "str | ExecutionEngine" = "auto",
                      ) -> None:
        """Precompile the control unit's plan *and* the engine's
        compiled executor for the row layout a batched dispatch will
        use, without touching DRAM state.

        Mirrors :meth:`_map_batches`' block reservations (same widths,
        same order, first-fit) so a subsequent :meth:`map` /
        :meth:`map_expr` on an idle allocator binds the identical
        :class:`RowLayout` and hits the warmed cache entries — the
        serve layer's manifest warmup relies on this.
        """
        with contextlib.ExitStack() as stack:
            in_blocks = [stack.enter_context(self._allocator.reserve(w))
                         for w in input_widths]
            out_block = stack.enter_context(
                self._allocator.reserve(out_width))
            temp_block = (stack.enter_context(
                self._allocator.reserve(program.n_temp_rows))
                if program.n_temp_rows else None)
            bases = {Space.OUTPUT: out_block.base}
            for space, block in zip(INPUT_SPACES, in_blocks):
                bases[space] = block.base
            if temp_block is not None:
                bases[Space.TEMP] = temp_block.base
            self.control.warm_plan(program, RowLayout(bases),
                                   self.module.geometry, engine)

    # ------------------------------------------------------------------
    # data movement
    # ------------------------------------------------------------------
    def array(self, values, width: int, signed: bool = False) -> SimdramArray:
        """Place a host vector into DRAM in vertical layout."""
        values = np.asarray(values)
        if values.ndim != 1:
            raise OperationError("Simdram.array expects a 1-D vector")
        if len(values) > self.module.lanes:
            raise OperationError(
                f"{len(values)} elements exceed the module's "
                f"{self.module.lanes} SIMD lanes")
        block = self._allocator.alloc(width)
        self._announce(block, len(values), width)
        self.transposer.host_to_vertical(self.module, block, values, width)
        return SimdramArray(self, block, len(values), width, signed)

    def empty(self, n_elements: int, width: int,
              signed: bool = False) -> SimdramArray:
        """Allocate an uninitialized vertical vector (e.g. for outputs)."""
        block = self._allocator.alloc(width)
        self._announce(block, n_elements, width)
        return SimdramArray(self, block, n_elements, width, signed)

    def _announce(self, block: RowBlock, n_elements: int,
                  width: int) -> None:
        """Issue bbop_trsp_init so the transposition unit tracks the
        object (paper §4)."""
        instruction = BbopInstruction.decode(
            bbop_trsp_init(block.base, n_elements, width).encode())
        self.issued.append(instruction)
        self.tracker.register(block.base, n_elements, width)

    def read(self, array: SimdramArray) -> np.ndarray:
        """Read a vertical vector back into host (horizontal) layout."""
        array.require_live()
        return self.transposer.vertical_to_host(
            self.module, array.block, array.n_elements, array.width,
            signed=array.signed)

    def spill(self, array: SimdramArray,
              stats: CommandStats | None = None) -> np.ndarray:
        """Evict an array: read its values out and release its rows.

        The paging layer's eviction primitive.  The handle transitions
        to ``"evicted"`` (subsequent reads raise), its rows return to
        the allocator, and the returned host vector round-trips
        bit-exactly through :meth:`array` on fault-in.  ``stats``
        receives the spill accounting when provided.
        """
        array.require_live()
        values = self.transposer.spill(
            self.module, array.block, array.n_elements, array.width,
            signed=array.signed, stats=stats)
        self.tracker.release(array.block.base)
        self._allocator.free(array.block)
        array.status = "evicted"
        return values

    # ------------------------------------------------------------------
    # in-DRAM bulk copy / initialization (RowClone, paper §2)
    # ------------------------------------------------------------------
    def copy(self, array: SimdramArray,
             signed: bool | None = None) -> SimdramArray:
        """Bulk-copy a vector inside DRAM via RowClone.

        One AAP per bit row; no data crosses the channel — the mechanism
        SIMDRAM also uses for its shift operations.

        ``signed`` sets the result's signedness interpretation; the
        default (``None``) preserves the source's, since a bit-exact
        copy represents the same value under the same encoding.
        """
        self.tracker.lookup(array.block.base)
        array.require_live()
        out = self.empty(array.n_elements, array.width,
                         signed=array.signed if signed is None else signed)
        from repro.dram.rows import data_row
        for bit in range(array.width):
            self.module.broadcast_aap(data_row(array.block.base + bit),
                                      data_row(out.block.base + bit))
        return out

    def fill(self, value: int, n_elements: int, width: int,
             signed: bool = False) -> SimdramArray:
        """Initialize a vector to a broadcast constant inside DRAM.

        Each bit row is RowCloned from the C-group constant row matching
        that bit of ``value`` — bulk initialization with zero host I/O.
        """
        from repro.dram.rows import ctrl_row, data_row
        from repro.util.bitops import to_unsigned
        encoded = int(to_unsigned(np.array([value]), width)[0])
        out = self.empty(n_elements, width, signed=signed)
        for bit in range(width):
            source = ctrl_row((encoded >> bit) & 1)
            self.module.broadcast_aap(source,
                                      data_row(out.block.base + bit))
        return out

    def shift_left(self, array: SimdramArray, amount: int,
                   signed: bool | None = None) -> SimdramArray:
        """Elementwise logical left shift, entirely in DRAM (paper §2).

        In vertical layout a shift is pure row bookkeeping: bit row ``i``
        of the result is a RowClone copy of source bit row ``i - amount``,
        and the vacated low rows are RowCloned from the all-zeros control
        row.  No sense-amplifier computation happens at all.

        ``signed`` sets the result's signedness interpretation; the
        default (``None``) preserves the source's, because a left shift
        is multiplication by ``2**amount`` modulo ``2**width`` under
        *both* encodings — the bits don't care.
        """
        return self._shift(array, amount, left=True, signed=signed)

    def shift_right(self, array: SimdramArray, amount: int,
                    signed: bool | None = None) -> SimdramArray:
        """Elementwise right shift, entirely in DRAM — matching the
        operand's encoding (numpy ``>>`` semantics).

        On an **unsigned** source the vacated high bit rows are
        RowCloned from the all-zeros control row (logical shift).  On a
        **signed** source they are RowCloned from the source's *sign
        plane* — the bit row holding every element's sign bit — so
        negative values stay negative: an arithmetic shift costs the
        same one AAP per bit row as a logical one, the vacated rows
        just copy a data row instead of a control row.

        ``signed`` overrides the default operand-driven behaviour:
        ``signed=False`` forces a logical (zero-filling) shift with an
        unsigned result; ``signed=True`` forces an arithmetic
        (sign-filling) shift with a signed result.
        """
        arithmetic = array.signed if signed is None else signed
        return self._shift(array, amount, left=False,
                           signed=arithmetic, arithmetic=arithmetic)

    def _shift(self, array: SimdramArray, amount: int, left: bool,
               signed: bool | None = None,
               arithmetic: bool = False) -> SimdramArray:
        from repro.dram.rows import ctrl_row, data_row
        if amount < 0:
            raise OperationError(f"shift amount must be >= 0, "
                                 f"got {amount}")
        self.tracker.lookup(array.block.base)
        array.require_live()
        out = self.empty(array.n_elements, array.width,
                         signed=array.signed if signed is None else signed)
        sign_plane = data_row(array.block.base + array.width - 1)
        for bit in range(array.width):
            source_bit = bit - amount if left else bit + amount
            if 0 <= source_bit < array.width:
                source = data_row(array.block.base + source_bit)
            elif arithmetic and not left:
                source = sign_plane  # shifted-in copies of the sign bit
            else:
                source = ctrl_row(0)  # shifted-in zeros
            self.module.broadcast_aap(source,
                                      data_row(out.block.base + bit))
        return out

    # ------------------------------------------------------------------
    # execution (Step 3)
    # ------------------------------------------------------------------
    def run(self, op_name: str, *operands: SimdramArray,
            backend: str | None = None,
            engine: "str | ExecutionEngine" = "auto") -> SimdramArray:
        """Execute an operation over DRAM-resident operands.

        Forms the ``bbop`` instruction, round-trips it through the binary
        ISA encoding (as the memory controller would receive it), and
        replays the installed µProgram on every bank in lockstep.

        ``engine`` is an execution-engine registry name or an
        :class:`~repro.exec.engines.ExecutionEngine` instance (see
        :func:`repro.exec.engines.list_engines`); ``"auto"`` picks the
        best available plan-based engine unless tracing or fault
        injection forces the per-bank slow path.  Scratch rows are
        reserved with a
        ``try``/``finally`` guarantee: a failing execution releases its
        temporary block *and* the output allocation instead of leaking
        them.
        """
        spec = get_operation(op_name)
        if len(operands) != spec.arity:
            raise OperationError(
                f"{op_name} takes {spec.arity} operands, "
                f"got {len(operands)}")
        width = operands[-1].width
        expected_widths = spec.in_widths(width)
        for i, (operand, expected) in enumerate(zip(operands,
                                                    expected_widths)):
            if operand.width != expected:
                raise OperationError(
                    f"{op_name} operand {i} must be {expected}-bit, "
                    f"got {operand.width}-bit")
        n_elements = operands[0].n_elements
        if any(o.n_elements != n_elements for o in operands):
            raise OperationError(
                f"{op_name}: operand lengths differ: "
                f"{[o.n_elements for o in operands]}")
        for operand in operands:
            # The control unit only computes on announced vertical
            # objects; the tracker catches stale base rows, and
            # require_live catches freed handles whose rows were
            # re-allocated (the tracker would find the new occupant).
            self.tracker.lookup(operand.block.base)
            operand.require_live()

        program = self.compile(op_name, width, backend)
        out = self.empty(n_elements, spec.out_width(width),
                         signed=spec.signed)
        return self._dispatch(program, operands, out, n_elements,
                              engine=engine)

    def _dispatch(self, program: MicroProgram,
                  operands: tuple[SimdramArray, ...], out: SimdramArray,
                  n_elements: int,
                  engine: "str | ExecutionEngine") -> SimdramArray:
        """Issue one installed µProgram over DRAM-resident operands.

        Forms the ``bbop`` instruction, round-trips it through the
        binary ISA encoding, reserves the program's scratch rows and
        replays it on every bank.  A failing execution releases its
        temporary block *and* the output allocation instead of leaking
        them.
        """
        try:
            temp_reservation = (
                self._allocator.reserve(program.n_temp_rows)
                if program.n_temp_rows else contextlib.nullcontext(None))
            with temp_reservation as temp_block:
                # Form, encode and decode the bbop instruction (ISA
                # round trip).
                instruction = BbopInstruction.decode(bbop(
                    program.op_name, dst=out.block.base,
                    srcs=[o.block.base for o in operands],
                    n_elements=n_elements,
                    element_width=program.element_width).encode())
                self.issued.append(instruction)

                bases = {Space.OUTPUT: instruction.dst}
                instr_srcs = (instruction.src0, instruction.src1,
                              instruction.src2)
                for space, base in zip(INPUT_SPACES,
                                       instr_srcs[:len(operands)]):
                    bases[space] = base
                if temp_block is not None:
                    bases[Space.TEMP] = temp_block.base
                layout = RowLayout(bases)

                key = ProgramKey(program.op_name, program.element_width,
                                 program.backend)
                with obs_span("engine.execute", op=program.op_name,
                              width=program.element_width,
                              engine=str(getattr(engine, "name", engine))):
                    self.last_stats = self.control.execute_on_module(
                        self.control.lookup(key), self.module, layout,
                        engine=engine)
        except BaseException:
            out.free()
            raise
        return out

    def run_expr(self, root: Expr, feeds: dict[str, SimdramArray],
                 *, width: int | None = None, backend: str | None = None,
                 engine: "str | ExecutionEngine" = "auto") -> SimdramArray:
        """Execute a whole expression DAG as **one** fused µProgram.

        ``feeds`` binds every input leaf of ``root`` to a DRAM-resident
        array.  The pipeline width defaults to the widest operand (pass
        ``width`` explicitly for pipelines whose operands are all
        narrower than the element width, e.g. an ``if_else`` fed only
        1-bit arrays).  Intermediate values never touch named row
        blocks: the whole DAG replays as a single command stream with
        one output allocation and one temp reservation.
        """
        if width is None:
            if not feeds:
                raise OperationError(
                    "run_expr needs at least one input array")
            width = max(array.width for array in feeds.values())
        kernel = self.compile_expr(root, width, backend)
        self._check_feed_names(kernel, feeds)
        operands = tuple(feeds[name] for name in kernel.input_names)
        for name, operand, expected in zip(kernel.input_names, operands,
                                           kernel.input_widths):
            if operand.width != expected:
                raise OperationError(
                    f"fused input {name!r} must be {expected}-bit, "
                    f"got {operand.width}-bit")
        n_elements = operands[0].n_elements
        if any(o.n_elements != n_elements for o in operands):
            raise OperationError(
                f"fused expression: operand lengths differ: "
                f"{[o.n_elements for o in operands]}")
        for operand in operands:
            self.tracker.lookup(operand.block.base)
            operand.require_live()
        out = self.empty(n_elements, kernel.out_width,
                         signed=kernel.signed)
        return self._dispatch(kernel.program, operands, out, n_elements,
                              engine=engine)

    def run_multi(self, roots: dict[str, Expr],
                  feeds: dict[str, SimdramArray], *,
                  width: int | None = None, backend: str | None = None,
                  engine: "str | ExecutionEngine" = "auto") -> dict[str, np.ndarray]:
        """Execute several expression roots as **one** fused µProgram.

        All roots share one input pool (at most three DRAM-resident
        leaves) and one packed output allocation: a single ``bbop``
        dispatch computes every root, and each root's bit slice is read
        back through the transposition unit.  Returns a mapping from
        root name to its host vector (decoded per the root operation's
        signedness).  Shared subexpressions between roots are computed
        once — the stitched circuit dedups them structurally.
        """
        if not roots:
            raise OperationError("run_multi needs at least one root")
        if width is None:
            if not feeds:
                raise OperationError(
                    "run_multi needs at least one input array")
            width = max(array.width for array in feeds.values())
        kernel = self.compile_multi(roots, width, backend)
        return self.run_multi_kernel(kernel, feeds, engine=engine)

    def run_multi_kernel(self, kernel: MultiKernel,
                         feeds: dict[str, SimdramArray], *,
                         engine: "str | ExecutionEngine" = "auto") -> dict[str, np.ndarray]:
        """Dispatch an already-compiled :class:`MultiKernel` (the entry
        the cluster runtime uses after :meth:`adopt_multi`)."""
        self._check_feed_names(kernel, feeds)
        operands = tuple(feeds[name] for name in kernel.input_names)
        for name, operand, expected in zip(kernel.input_names, operands,
                                           kernel.input_widths):
            if operand.width != expected:
                raise OperationError(
                    f"fused input {name!r} must be {expected}-bit, "
                    f"got {operand.width}-bit")
        n_elements = operands[0].n_elements
        if any(o.n_elements != n_elements for o in operands):
            raise OperationError(
                f"fused expression: operand lengths differ: "
                f"{[o.n_elements for o in operands]}")
        for operand in operands:
            self.tracker.lookup(operand.block.base)
            operand.require_live()

        program = kernel.program
        results: dict[str, np.ndarray] = {}
        with contextlib.ExitStack() as stack:
            out_block = stack.enter_context(
                self._allocator.reserve(kernel.total_out_width))
            temp_block = (stack.enter_context(
                self._allocator.reserve(program.n_temp_rows))
                if program.n_temp_rows else None)
            self._announce(out_block, n_elements, out_block.width)
            stack.callback(self.tracker.release, out_block.base)

            instruction = BbopInstruction.decode(bbop(
                program.op_name, dst=out_block.base,
                srcs=[o.block.base for o in operands],
                n_elements=n_elements,
                element_width=program.element_width).encode())
            self.issued.append(instruction)

            bases = {Space.OUTPUT: out_block.base}
            instr_srcs = (instruction.src0, instruction.src1,
                          instruction.src2)
            for space, base in zip(INPUT_SPACES,
                                   instr_srcs[:len(operands)]):
                bases[space] = base
            if temp_block is not None:
                bases[Space.TEMP] = temp_block.base
            layout = RowLayout(bases)
            with obs_span("engine.execute", op=program.op_name,
                          width=program.element_width,
                          engine=str(getattr(engine, "name", engine))):
                self.last_stats = self.control.execute_on_module(
                    program, self.module, layout, engine=engine)

            for name, (offset, out_width) in kernel.slices.items():
                view = RowBlock(out_block.base + offset, out_width)
                results[name] = self.transposer.vertical_to_host(
                    self.module, view, n_elements, out_width,
                    signed=kernel.signed[name])
        return results

    @staticmethod
    def _check_feed_names(kernel: "FusedKernel | MultiKernel",
                          feeds: dict) -> None:
        missing = set(kernel.input_names) - set(feeds)
        extra = set(feeds) - set(kernel.input_names)
        if missing or extra:
            raise OperationError(
                f"fused expression inputs are {sorted(kernel.input_names)}"
                + (f"; missing {sorted(missing)}" if missing else "")
                + (f"; unexpected {sorted(extra)}" if extra else ""))

    # ------------------------------------------------------------------
    # streaming execution over host vectors of any length
    # ------------------------------------------------------------------
    def map(self, op_name: str, *host_operands, width: int = 8,
            backend: str | None = None,
            engine: "str | ExecutionEngine" = "auto") -> np.ndarray:
        """Run an operation over host vectors of arbitrary length.

        Vectors longer than the module's SIMD lanes are processed in
        lane-sized batches, the paper's execution model for large
        inputs.  The operand, output and temporary row blocks are
        allocated *once* and reused across batches (each batch's
        transpose-in overwrites every row of every operand block), so
        per-batch work is transpose-in, replay, transpose-out — no
        alloc/free churn, and the control unit's plan cache hits on
        every batch after the first because the row layout is stable.
        All rows are released when the sweep finishes or fails.

        ``width`` is the element width in bits; operands with a
        fixed-width interface (e.g. ``if_else``'s 1-bit select) are
        sized per the operation's spec automatically.  Host values are
        encoded as ``width``-bit two's complement on the way in, so
        negative inputs work with the signed operations directly; the
        result's signedness follows the operation's spec.
        """
        spec = get_operation(op_name)
        if len(host_operands) != spec.arity:
            raise OperationError(
                f"{op_name} takes {spec.arity} operands, "
                f"got {len(host_operands)}")
        vectors = [np.asarray(values) for values in host_operands]
        n_total = len(vectors[0])
        if any(len(v) != n_total for v in vectors):
            raise OperationError(
                f"{op_name}: operand lengths differ: "
                f"{[len(v) for v in vectors]}")
        if n_total == 0:
            raise OperationError("map needs at least one element")

        program = self.compile(op_name, width, backend)
        return self._map_batches(program, vectors, spec.in_widths(width),
                                 spec.out_width(width), spec.signed,
                                 engine)

    def _map_batches(self, program: MicroProgram,
                     vectors: list["np.ndarray"],
                     input_widths: "tuple[int, ...] | list[int]",
                     out_width: int, signed: bool,
                     engine: "str | ExecutionEngine") -> np.ndarray:
        """The shared batching loop of :meth:`map` and :meth:`map_expr`.

        Reserves the operand/output/temporary row blocks *once* and
        reuses them across lane-sized batches, so per-batch work is
        transpose-in, replay, transpose-out and the control unit's plan
        cache hits from batch 2 on.  All rows are released when the
        sweep finishes or fails (the PR-1 leak-class guarantee lives
        here, in exactly one place).
        """
        n_total = len(vectors[0])
        lanes = self.module.lanes

        chunks = []
        with contextlib.ExitStack() as stack:
            in_blocks = [stack.enter_context(self._allocator.reserve(w))
                         for w in input_widths]
            out_block = stack.enter_context(
                self._allocator.reserve(out_width))
            temp_block = (stack.enter_context(
                self._allocator.reserve(program.n_temp_rows))
                if program.n_temp_rows else None)
            # Announce each reused vertical object once (bbop_trsp_init),
            # not once per batch, and drop it from the tracker on exit.
            for block in (*in_blocks, out_block):
                self._announce(block, min(lanes, n_total), block.width)
                stack.callback(self.tracker.release, block.base)

            bases = {Space.OUTPUT: out_block.base}
            for space, block in zip(INPUT_SPACES, in_blocks):
                bases[space] = block.base
            if temp_block is not None:
                bases[Space.TEMP] = temp_block.base
            layout = RowLayout(bases)

            for start in range(0, n_total, lanes):
                stop = min(start + lanes, n_total)
                for values, block, in_width in zip(vectors, in_blocks,
                                                   input_widths):
                    self.transposer.host_to_vertical(
                        self.module, block, values[start:stop], in_width)
                instruction = BbopInstruction.decode(bbop(
                    program.op_name, dst=out_block.base,
                    srcs=[block.base for block in in_blocks],
                    n_elements=stop - start,
                    element_width=program.element_width).encode())
                self.issued.append(instruction)
                with obs_span("engine.execute", op=program.op_name,
                              width=program.element_width,
                              n_elements=stop - start,
                              engine=str(getattr(engine, "name", engine))):
                    self.last_stats = self.control.execute_on_module(
                        program, self.module, layout, engine=engine)
                chunks.append(self.transposer.vertical_to_host(
                    self.module, out_block, stop - start, out_width,
                    signed=signed))
        return np.concatenate(chunks)

    def map_expr(self, root: Expr, feeds: dict[str, "np.ndarray"],
                 *, width: int = 8, backend: str | None = None,
                 engine: "str | ExecutionEngine" = "auto") -> np.ndarray:
        """Run a fused expression DAG over host vectors of any length.

        The fused analogue of :meth:`map`: vectors longer than the
        module's SIMD lanes are processed in lane-sized batches, with
        the operand, output and temporary row blocks allocated *once*
        and reused across batches.  Because the whole DAG is one
        µProgram, each batch is transpose-in, one replay, transpose-out
        — no per-operation intermediates exist at all.  Host values are
        encoded as two's complement at each leaf's width; the result's
        signedness follows the root operation's spec.
        """
        kernel = self.compile_expr(root, width, backend)
        self._check_feed_names(kernel, feeds)
        vectors = [np.asarray(feeds[name]) for name in kernel.input_names]
        n_total = len(vectors[0])
        if any(len(v) != n_total for v in vectors):
            raise OperationError(
                f"fused expression: operand lengths differ: "
                f"{[len(v) for v in vectors]}")
        if n_total == 0:
            raise OperationError("map_expr needs at least one element")
        return self._map_batches(kernel.program, vectors,
                                 kernel.input_widths, kernel.out_width,
                                 kernel.signed, engine)

    # ------------------------------------------------------------------
    # measurement helpers
    # ------------------------------------------------------------------
    def last_latency_ns(self) -> float:
        """Latency of the last run (banks operate in parallel)."""
        if self.last_stats is None:
            raise OperationError("no operation has been run yet")
        per_bank = self.last_stats.scaled(1)
        # All banks execute the same stream concurrently; latency is the
        # single-bank command latency.
        banks = self.config.geometry.banks
        return CommandStats(
            n_ap=per_bank.n_ap // banks,
            n_aap=per_bank.n_aap // banks,
        ).latency_ns(self.config.timing)

    def last_energy_nj(self) -> float:
        """DRAM energy of the last run (all banks)."""
        if self.last_stats is None:
            raise OperationError("no operation has been run yet")
        return self.last_stats.energy_nj(
            self.config.timing, self.config.geometry, self.config.energy)
