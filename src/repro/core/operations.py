"""The SIMDRAM operation catalog.

The paper demonstrates the framework on sixteen operations spanning five
classes (§5): N-input logic (AND/OR/XOR reductions), relational
(equality, greater-than, greater-or-equal, maximum, minimum), arithmetic
(addition, subtraction, multiplication, division, absolute value),
predication (if-then-else), and other complex operations (bitcount,
ReLU).  Each :class:`OperationSpec` couples:

* a *circuit factory* producing the operation's gate-level implementation
  in either substrate style (``maj`` for SIMDRAM, ``classic`` for the
  Ambit baseline — see :mod:`repro.logic.library`), and
* a *golden model* over two's-complement encodings, used by the test
  suite to verify every compiled µProgram bit-exactly.

The catalog is open: :func:`register_operation` adds user-defined
operations, which is the paper's headline flexibility claim (new
operations need only a new µProgram, no hardware change).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import OperationError
from repro.isa.instructions import register_opcode
from repro.logic.circuit import Circuit, GateType, Net
from repro.logic import library
from repro.util.bitops import mask_for_width, to_signed, to_unsigned

#: Circuit factory signature: (circuit, operand bit lists, style) -> output bits.
BuildFn = Callable[[Circuit, list[list[Net]], str], list[Net]]
#: Golden model signature: (unsigned-encoded inputs, element width) -> output.
GoldenFn = Callable[[list[np.ndarray], int], np.ndarray]


@dataclass(frozen=True)
class OperationSpec:
    """A SIMDRAM operation: interface, circuit factory and golden model."""

    name: str
    arity: int
    category: str
    description: str
    build: BuildFn
    golden: GoldenFn
    in_widths: Callable[[int], list[int]]
    out_width: Callable[[int], int]
    signed: bool = False  # whether results are two's-complement encoded

    def operand_names(self) -> list[str]:
        """Input operand name prefixes, in order."""
        return ["a", "b", "c"][:self.arity]

    def build_circuit(self, width: int, style: str) -> Circuit:
        """Instantiate the operation's circuit at ``width`` bits/element."""
        if width < 1:
            raise OperationError(f"width must be >= 1, got {width}")
        circuit = Circuit()
        operands = []
        for prefix, in_width in zip(self.operand_names(),
                                    self.in_widths(width)):
            operands.append([circuit.input(f"{prefix}{i}")
                             for i in range(in_width)])
        outputs = self.build(circuit, operands, style)
        expected = self.out_width(width)
        if len(outputs) != expected:
            raise OperationError(
                f"{self.name}: factory produced {len(outputs)} output "
                f"bits, spec says {expected}")
        for i, net in enumerate(outputs):
            circuit.set_output(f"y{i}", net)
        return circuit


def _same(width: int) -> int:
    return width


def _one(width: int) -> int:
    return 1


def _popcount_width(width: int) -> int:
    return max(1, width.bit_length())


def _nary(n: int) -> Callable[[int], list[int]]:
    return lambda width: [width] * n


def _if_else_widths(width: int) -> list[int]:
    return [1, width, width]  # select is a 1-bit predicate operand


# ---------------------------------------------------------------------------
# golden models (all on unsigned two's-complement encodings)
# ---------------------------------------------------------------------------
def _g_abs(inputs, width):
    return to_unsigned(np.abs(to_signed(inputs[0], width)), width)


def _g_add(inputs, width):
    return (inputs[0] + inputs[1]) & mask_for_width(width)


def _g_sub(inputs, width):
    return (inputs[0] - inputs[1]) & mask_for_width(width)


def _g_mul(inputs, width):
    return (inputs[0] * inputs[1]) & mask_for_width(width)


def _g_div(inputs, width):
    a, b = inputs
    quotient = np.full_like(a, mask_for_width(width))
    nonzero = b != 0
    quotient[nonzero] = a[nonzero] // b[nonzero]
    return quotient


def _g_eq(inputs, width):
    return (inputs[0] == inputs[1]).astype(np.int64)


def _g_ne(inputs, width):
    return (inputs[0] != inputs[1]).astype(np.int64)


def _g_lt(inputs, width):
    return (to_signed(inputs[0], width)
            < to_signed(inputs[1], width)).astype(np.int64)


def _g_le(inputs, width):
    return (to_signed(inputs[0], width)
            <= to_signed(inputs[1], width)).astype(np.int64)


def _g_gt_u(inputs, width):
    return (inputs[0] > inputs[1]).astype(np.int64)


def _g_add_sat(inputs, width):
    return np.minimum(inputs[0] + inputs[1], mask_for_width(width))


def _g_gt(inputs, width):
    return (to_signed(inputs[0], width)
            > to_signed(inputs[1], width)).astype(np.int64)


def _g_ge(inputs, width):
    return (to_signed(inputs[0], width)
            >= to_signed(inputs[1], width)).astype(np.int64)


def _g_max(inputs, width):
    return to_unsigned(np.maximum(to_signed(inputs[0], width),
                                  to_signed(inputs[1], width)), width)


def _g_min(inputs, width):
    return to_unsigned(np.minimum(to_signed(inputs[0], width),
                                  to_signed(inputs[1], width)), width)


def _g_if_else(inputs, width):
    return np.where(inputs[0] & 1, inputs[1], inputs[2])


def _g_relu(inputs, width):
    signed = to_signed(inputs[0], width)
    return to_unsigned(np.maximum(signed, 0), width)


def _g_bitcount(inputs, width):
    counts = np.zeros_like(inputs[0])
    for i in range(width):
        counts += (inputs[0] >> i) & 1
    return counts


def _g_and_red(inputs, width):
    return (inputs[0] == mask_for_width(width)).astype(np.int64)


def _g_or_red(inputs, width):
    return (inputs[0] != 0).astype(np.int64)


def _g_xor_red(inputs, width):
    return _g_bitcount(inputs, width) & 1


# ---------------------------------------------------------------------------
# circuit factories
# ---------------------------------------------------------------------------
def _b_abs(c, ops, style):
    return library.absolute(c, ops[0], style)


def _b_add(c, ops, style):
    total, _ = library.ripple_add(c, ops[0], ops[1], style=style)
    return total


def _b_sub(c, ops, style):
    diff, _ = library.ripple_sub(c, ops[0], ops[1], style)
    return diff


def _b_mul(c, ops, style):
    return library.multiply(c, ops[0], ops[1], style)


def _b_div(c, ops, style):
    quotient, _ = library.divide_unsigned(c, ops[0], ops[1], style)
    return quotient


def _b_eq(c, ops, style):
    return [library.equal(c, ops[0], ops[1], style)]


def _b_ne(c, ops, style):
    return [c.not_(library.equal(c, ops[0], ops[1], style))]


def _b_lt(c, ops, style):
    return [library.greater_signed(c, ops[1], ops[0], style)]


def _b_le(c, ops, style):
    return [c.not_(library.greater_signed(c, ops[0], ops[1], style))]


def _b_gt_u(c, ops, style):
    return [library.greater_unsigned(c, ops[0], ops[1], style)]


def _b_add_sat(c, ops, style):
    total, carry = library.ripple_add(c, ops[0], ops[1], style=style)
    return [c.or_(bit, carry) for bit in total]


def _b_gt(c, ops, style):
    return [library.greater_signed(c, ops[0], ops[1], style)]


def _b_ge(c, ops, style):
    return [library.greater_equal_signed(c, ops[0], ops[1], style)]


def _b_max(c, ops, style):
    return library.maximum_signed(c, ops[0], ops[1], style)


def _b_min(c, ops, style):
    return library.minimum_signed(c, ops[0], ops[1], style)


def _b_if_else(c, ops, style):
    return library.mux_vector(c, ops[0][0], ops[1], ops[2], style)


def _b_relu(c, ops, style):
    return library.relu(c, ops[0], style)


def _b_bitcount(c, ops, style):
    return library.popcount(c, ops[0], style)


def _b_and_red(c, ops, style):
    return [library.reduction(c, GateType.AND, ops[0], style)]


def _b_or_red(c, ops, style):
    return [library.reduction(c, GateType.OR, ops[0], style)]


def _b_xor_red(c, ops, style):
    return [library.reduction(c, GateType.XOR, ops[0], style)]


CATALOG: dict[str, OperationSpec] = {}


def register_operation(name: str, arity: int, category: str,
                       description: str, build: BuildFn, golden: GoldenFn,
                       in_widths: Callable[[int], list[int]] | None = None,
                       out_width: Callable[[int], int] = _same,
                       signed: bool = False) -> OperationSpec:
    """Register an operation (built-in or user-defined) in the catalog.

    Also assigns a bbop opcode, mirroring the paper's claim that new
    operations are software-only additions.
    """
    if name in CATALOG:
        raise OperationError(f"operation {name!r} already registered")
    if not 1 <= arity <= 3:
        raise OperationError(f"arity must be 1-3, got {arity}")
    spec = OperationSpec(
        name=name, arity=arity, category=category, description=description,
        build=build, golden=golden,
        in_widths=in_widths or _nary(arity),
        out_width=out_width, signed=signed)
    CATALOG[name] = spec
    register_opcode(name)
    return spec


def get_operation(name: str) -> OperationSpec:
    """Look up an operation, with a helpful error when unknown."""
    spec = CATALOG.get(name)
    if spec is None:
        known = ", ".join(sorted(CATALOG))
        raise OperationError(f"unknown operation {name!r}; known: {known}")
    return spec


def _register_builtins() -> None:
    register_operation("abs", 1, "arithmetic",
                       "absolute value (two's complement)",
                       _b_abs, _g_abs, signed=True)
    register_operation("add", 2, "arithmetic",
                       "elementwise addition", _b_add, _g_add)
    register_operation("sub", 2, "arithmetic",
                       "elementwise subtraction", _b_sub, _g_sub)
    register_operation("mul", 2, "arithmetic",
                       "elementwise multiplication (wrapping)",
                       _b_mul, _g_mul)
    register_operation("div", 2, "arithmetic",
                       "elementwise unsigned division", _b_div, _g_div)
    register_operation("eq", 2, "relational",
                       "equality check (1-bit result)",
                       _b_eq, _g_eq, out_width=_one)
    register_operation("gt", 2, "relational",
                       "signed greater-than (1-bit result)",
                       _b_gt, _g_gt, out_width=_one)
    register_operation("ge", 2, "relational",
                       "signed greater-or-equal (1-bit result)",
                       _b_ge, _g_ge, out_width=_one)
    register_operation("max", 2, "relational",
                       "signed elementwise maximum",
                       _b_max, _g_max, signed=True)
    register_operation("min", 2, "relational",
                       "signed elementwise minimum",
                       _b_min, _g_min, signed=True)
    register_operation("if_else", 3, "predication",
                       "elementwise select: c ? a : b",
                       _b_if_else, _g_if_else,
                       in_widths=_if_else_widths)
    register_operation("relu", 1, "other",
                       "rectified linear unit (max(x, 0), signed)",
                       _b_relu, _g_relu, signed=True)
    register_operation("bitcount", 1, "other",
                       "population count of each element",
                       _b_bitcount, _g_bitcount,
                       out_width=_popcount_width)
    register_operation("and_red", 1, "logic",
                       "N-input AND reduction over each element's bits",
                       _b_and_red, _g_and_red, out_width=_one)
    register_operation("or_red", 1, "logic",
                       "N-input OR reduction over each element's bits",
                       _b_or_red, _g_or_red, out_width=_one)
    register_operation("xor_red", 1, "logic",
                       "N-input XOR reduction over each element's bits",
                       _b_xor_red, _g_xor_red, out_width=_one)


def _register_extensions() -> None:
    """Operations beyond the paper's evaluation set.

    The paper stresses that SIMDRAM "is not limited to these operations";
    these extras exercise that claim and serve the application kernels
    (e.g. saturating addition fuses brightness clamping into one
    µProgram).
    """
    register_operation("ne", 2, "relational",
                       "inequality check (1-bit result)",
                       _b_ne, _g_ne, out_width=_one)
    register_operation("lt", 2, "relational",
                       "signed less-than (1-bit result)",
                       _b_lt, _g_lt, out_width=_one)
    register_operation("le", 2, "relational",
                       "signed less-or-equal (1-bit result)",
                       _b_le, _g_le, out_width=_one)
    register_operation("gt_u", 2, "relational",
                       "unsigned greater-than (1-bit result)",
                       _b_gt_u, _g_gt_u, out_width=_one)
    register_operation("add_sat", 2, "arithmetic",
                       "saturating unsigned addition",
                       _b_add_sat, _g_add_sat)


_register_builtins()
_register_extensions()

#: The 16 operations evaluated in the paper, in its presentation order.
PAPER_OPERATIONS: tuple[str, ...] = (
    "abs", "add", "bitcount", "div", "eq", "ge", "gt", "if_else",
    "max", "min", "mul", "relu", "sub", "and_red", "or_red", "xor_red",
)
