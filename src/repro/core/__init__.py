"""Core SIMDRAM framework: operation catalog, compilation pipeline, and
the end-to-end :class:`Simdram` facade."""

from repro.core.compiler import BACKENDS, backend_style, build_mig, compile_operation
from repro.core.framework import Simdram, SimdramArray, SimdramConfig
from repro.core.operations import (
    CATALOG,
    PAPER_OPERATIONS,
    OperationSpec,
    get_operation,
    register_operation,
)

__all__ = [
    "BACKENDS",
    "backend_style",
    "build_mig",
    "compile_operation",
    "Simdram",
    "SimdramArray",
    "SimdramConfig",
    "CATALOG",
    "PAPER_OPERATIONS",
    "OperationSpec",
    "get_operation",
    "register_operation",
]
