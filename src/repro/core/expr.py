"""Expression graphs over the SIMDRAM operation catalog.

SIMDRAM's efficiency claim is that whole computations stay in the
subarray: µPrograms are built once and data streams through them without
round-tripping intermediates to named row blocks.  An :class:`Expr` DAG
describes such a multi-operation pipeline symbolically::

    from repro.core import expr

    x = expr.inp("x")
    w = expr.inp("w")
    b = expr.inp("b")
    y = expr.relu(expr.add(expr.mul(x, w), b))

The fusion compiler (:mod:`repro.core.fuse`) stitches every catalog
operation of the DAG into **one** µProgram, so intermediates live only
in B-group planes and compiler temporaries — they are never written to
named row blocks, never transposed, and never allocated per step.

Leaves are either named inputs (:func:`inp`) — DRAM-resident operands
bound at execution time, at most three per DAG because the ``bbop``
instruction carries three source addresses — or broadcast constants
(:func:`const`), which cost no rows at all: their bits fold into the
MIG as C-group constants.

Every catalog operation is exposed as a module-level builder
(``expr.add(a, b)``, ``expr.relu(x)``, ...), including operations
registered after import; :func:`op` is the generic spelling.  ``+``,
``-`` and ``*`` on :class:`Expr` map to ``add``/``sub``/``mul``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.operations import CATALOG, OperationSpec, get_operation
from repro.errors import OperationError
from repro.util.bitops import mask_for_width, to_unsigned

#: Leaf kinds of an expression DAG.
KIND_INPUT = "input"
KIND_CONST = "const"
KIND_OP = "op"


@dataclass(frozen=True)
class Expr:
    """One node of an expression DAG (an op, a named input or a const)."""

    kind: str
    op: str | None = None                 # catalog op name (KIND_OP)
    name: str | None = None               # leaf name (KIND_INPUT)
    value: int | None = None              # broadcast value (KIND_CONST)
    children: tuple["Expr", ...] = field(default=())

    def __hash__(self) -> int:
        # The generated dataclass hash recurses through ``children``
        # uncached, which is exponential in shared-subgraph depth (a
        # 30-level ``y = y * y`` DAG would hang).  Memoize per node so
        # hashing is O(distinct nodes) over any DAG.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.kind, self.op, self.name, self.value,
                           self.children))
            object.__setattr__(self, "_hash", cached)
        return cached

    # -- sugar ---------------------------------------------------------
    def __add__(self, other: "Expr | int") -> "Expr":
        return op("add", self, other)

    def __radd__(self, other: "Expr | int") -> "Expr":
        return op("add", other, self)

    def __sub__(self, other: "Expr | int") -> "Expr":
        return op("sub", self, other)

    def __rsub__(self, other: "Expr | int") -> "Expr":
        return op("sub", other, self)

    def __mul__(self, other: "Expr | int") -> "Expr":
        return op("mul", self, other)

    def __rmul__(self, other: "Expr | int") -> "Expr":
        return op("mul", other, self)

    def __repr__(self) -> str:
        if self.kind == KIND_INPUT:
            return f"inp({self.name!r})"
        if self.kind == KIND_CONST:
            return f"const({self.value})"
        inner = ", ".join(repr(c) for c in self.children)
        return f"{self.op}({inner})"


def inp(name: str) -> Expr:
    """A named input leaf: a DRAM-resident operand bound at run time."""
    if not name or not isinstance(name, str):
        raise OperationError("input leaves need a non-empty string name")
    return Expr(KIND_INPUT, name=name)


def const(value: int) -> Expr:
    """A broadcast integer constant (folds into the MIG, costs no rows)."""
    return Expr(KIND_CONST, value=int(value))


def op(name: str, *children: "Expr | int") -> Expr:
    """Apply the catalog operation ``name`` to child expressions.

    Bare Python integers are lifted to :func:`const` leaves, so graph
    capture frontends (and plain ``x + 1`` sugar) need no explicit
    ``const`` calls.
    """
    spec = get_operation(name)
    if len(children) != spec.arity:
        raise OperationError(
            f"{name} takes {spec.arity} operands, got {len(children)}")
    lifted = []
    for child in children:
        if isinstance(child, (int, np.integer)) \
                and not isinstance(child, (bool, np.bool_)):
            child = const(int(child))
        elif not isinstance(child, Expr):
            raise OperationError(
                f"{name} operands must be Expr nodes, got {type(child)}")
        lifted.append(child)
    return Expr(KIND_OP, op=name, children=tuple(lifted))


def __getattr__(attr: str):
    """Expose every catalog operation as ``expr.<name>(*children)``."""
    if attr in CATALOG:
        spec = CATALOG[attr]

        def build(*children: Expr, _name: str = attr) -> Expr:
            return op(_name, *children)

        build.__name__ = attr
        build.__doc__ = f"Expression builder for {attr!r}: {spec.description}."
        return build
    raise AttributeError(f"module {__name__!r} has no attribute {attr!r}")


# ---------------------------------------------------------------------------
# DAG traversal and identity
# ---------------------------------------------------------------------------
def post_order(root: Expr) -> list[Expr]:
    """All distinct nodes reachable from ``root``, children first.

    Shared subexpressions appear once (identity *or* value equality —
    ``Expr`` is a frozen value type, so equal subtrees are one node).
    """
    order: list[Expr] = []
    seen: set[Expr] = set()
    stack: list[tuple[Expr, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if node in seen:
            continue
        if expanded or not node.children:
            seen.add(node)
            order.append(node)
            continue
        stack.append((node, True))
        stack.extend((child, False) for child in reversed(node.children))
    return order


def input_names(root: Expr) -> list[str]:
    """Distinct input-leaf names in first-use (post-order) order."""
    names: list[str] = []
    for node in post_order(root):
        if node.kind == KIND_INPUT and node.name not in names:
            names.append(node.name)
    return names


def n_ops(root: Expr) -> int:
    """Number of catalog operations stitched into the DAG."""
    return sum(1 for node in post_order(root) if node.kind == KIND_OP)


def dag_hash(root: Expr) -> str:
    """Stable content hash of the DAG (the fused-plan cache identity).

    Two structurally identical DAGs hash equally across processes, so
    the framework's fused-kernel cache and the control unit's
    execution-plan cache both key on it.
    """
    digest: dict[Expr, str] = {}
    for node in post_order(root):
        if node.kind == KIND_INPUT:
            token = f"i:{node.name}"
        elif node.kind == KIND_CONST:
            token = f"c:{node.value}"
        else:
            token = (f"o:{node.op}("
                     + ",".join(digest[c] for c in node.children) + ")")
        digest[node] = hashlib.sha256(token.encode()).hexdigest()[:16]
    return digest[root]


# ---------------------------------------------------------------------------
# width analysis
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ExprAnalysis:
    """Width-checked shape of a DAG at one pipeline element width."""

    root: Expr
    width: int                       # pipeline element width
    input_widths: dict[str, int]     # leaf name -> bit width
    #: const leaf -> every width it is consumed at.  Constants are free
    #: (their bits fold into the MIG), so one value may legally feed
    #: consumers of different widths — it is encoded per consumer.
    const_widths: dict[Expr, tuple[int, ...]]
    out_width: int
    signed: bool                     # root operation's result signedness


def analyze(root: Expr, width: int) -> ExprAnalysis:
    """Validate a DAG at ``width`` and derive every leaf's bit width.

    Each operation is instantiated at the pipeline width, exactly like a
    sequence of :meth:`Simdram.run` calls at that width: a child
    operation's output width must equal the width its consumer expects,
    and an input leaf's width is set by its consumers (consistently).
    """
    if not isinstance(root, Expr):
        raise OperationError(f"expected an Expr, got {type(root)}")
    if root.kind != KIND_OP:
        raise OperationError(
            "the root of a fused expression must be an operation "
            "(a bare leaf has nothing to compute)")
    if width < 1:
        raise OperationError(f"width must be >= 1, got {width}")

    input_widths: dict[str, int] = {}
    const_widths: dict[Expr, set[int]] = {}

    def require(child: Expr, needed: int, parent: OperationSpec,
                slot: int) -> None:
        if child.kind == KIND_INPUT:
            known = input_widths.get(child.name)
            if known is None:
                input_widths[child.name] = needed
            elif known != needed:
                raise OperationError(
                    f"input {child.name!r} is consumed at {known}-bit and "
                    f"{needed}-bit widths; a fused operand has one width")
        elif child.kind == KIND_CONST:
            # Constants cost no rows, so the same value may feed
            # consumers of different widths; it is encoded per consumer.
            const_widths.setdefault(child, set()).add(needed)
        else:
            produced = get_operation(child.op).out_width(width)
            if produced != needed:
                raise OperationError(
                    f"{parent.name} operand {slot} must be {needed}-bit, "
                    f"but {child.op} produces {produced}-bit results "
                    f"at pipeline width {width}")

    ordered_inputs: dict[str, int] = {}
    for node in post_order(root):
        if node.kind != KIND_OP:
            continue
        spec = get_operation(node.op)
        for slot, (child, needed) in enumerate(
                zip(node.children, spec.in_widths(width))):
            require(child, needed, spec, slot)
        for child in node.children:
            if child.kind == KIND_INPUT and child.name not in ordered_inputs:
                ordered_inputs[child.name] = input_widths[child.name]

    # Preserve first-use order in the mapping (drives operand slots).
    input_widths = {name: input_widths[name] for name in ordered_inputs}
    if not input_widths:
        raise OperationError(
            "a fused expression needs at least one input leaf "
            "(all-constant pipelines have nothing to stream)")

    root_spec = get_operation(root.op)
    return ExprAnalysis(
        root=root, width=width, input_widths=input_widths,
        const_widths={node: tuple(sorted(widths))
                      for node, widths in const_widths.items()},
        out_width=root_spec.out_width(width),
        signed=root_spec.signed)


def scaling_input_names(root: Expr) -> set[str]:
    """Input leaves whose operand width scales with the pipeline width.

    An input is *scaling* when its consumer slot is sized by the
    pipeline element width (``add``'s operands, ``mul``'s operands, …)
    and *fixed* when the slot has an intrinsic width regardless of the
    pipeline (``if_else``'s 1-bit select).  The distinction drives
    width inference: only scaling inputs can widen, and only they
    constrain the inferred pipeline width.

    Detected by analyzing the DAG at two probe widths and comparing the
    required operand widths; a DAG that does not analyze at the probes
    conservatively reports every input as scaling.
    """
    try:
        low, high = analyze(root, 8), analyze(root, 16)
    except OperationError:
        return set(input_names(root))
    return {name for name in low.input_widths
            if low.input_widths[name] != high.input_widths[name]}


def infer_width(root: Expr, leaf_widths: dict[str, int]) -> int:
    """Infer the pipeline width of a DAG over mixed-width operands.

    ``leaf_widths`` maps every input leaf to its *natural* bit width
    (the width its values were declared at).  The inferred pipeline
    width is the widest natural width among the scaling inputs, so
    narrower operands widen (two's-complement re-encoding at transfer
    time) instead of forcing the whole pipeline down to their width.
    Fixed-width inputs (e.g. a 1-bit ``if_else`` select) must match
    their slot exactly — widening would silently truncate semantics —
    and are validated, not inferred over.
    """
    missing = {name for name in input_names(root) if name not in leaf_widths}
    if missing:
        raise OperationError(
            f"infer_width: no width given for inputs {sorted(missing)}")
    scaling = scaling_input_names(root)
    candidates = [leaf_widths[name] for name in leaf_widths
                  if name in scaling]
    width = max(candidates) if candidates else max(leaf_widths.values())
    analysis = analyze(root, width)
    for name, have in leaf_widths.items():
        needed = analysis.input_widths[name]
        if name in scaling:
            if have > needed:
                raise OperationError(
                    f"input {name!r} is {have}-bit but the pipeline "
                    f"inferred width {needed}")
        elif have != needed:
            raise OperationError(
                f"input {name!r} is {have}-bit but its operand slot is "
                f"fixed at {needed}-bit (widening would change the "
                f"operation's semantics)")
    return width


# ---------------------------------------------------------------------------
# golden model
# ---------------------------------------------------------------------------
def golden(root: Expr, inputs: dict[str, np.ndarray],
           width: int) -> np.ndarray:
    """Evaluate the DAG with the catalog's numpy golden models.

    ``inputs`` maps leaf names to **unsigned-encoded** vectors (the same
    encoding the per-operation golden models use); the result is the
    unsigned encoding of the root's output.
    """
    analysis = analyze(root, width)
    missing = set(analysis.input_widths) - set(inputs)
    if missing:
        raise OperationError(f"missing input values for {sorted(missing)}")

    shape = None
    for name in analysis.input_widths:
        arr = np.asarray(inputs[name])
        if shape is None:
            shape = arr.shape
        elif arr.shape != shape:
            raise OperationError(
                f"input {name!r} has shape {arr.shape}, expected {shape}")

    values: dict[Expr, np.ndarray] = {}

    def value_of(child: Expr, needed_width: int) -> np.ndarray:
        if child.kind == KIND_INPUT:
            w = analysis.input_widths[child.name]
            return np.asarray(inputs[child.name]) & mask_for_width(w)
        if child.kind == KIND_CONST:
            # Encoded at the width this consumer expects (one const
            # value may feed consumers of different widths).
            encoded = int(to_unsigned(np.array([child.value]),
                                      needed_width)[0])
            return np.full(shape, encoded, dtype=np.int64)
        return values[child]

    for node in post_order(root):
        if node.kind != KIND_OP:
            continue
        spec = get_operation(node.op)
        args = [value_of(child, w) for child, w
                in zip(node.children, spec.in_widths(width))]
        values[node] = spec.golden(args, width)
    return values[root]
