"""Generators for the arithmetic/relational circuits behind SIMDRAM's ops.

Every function takes a :class:`~repro.logic.circuit.Circuit` plus operand
bit lists (LSB first) and returns output bit lists.  Each generator exists
in two *styles*, mirroring how the paper implements each operation on each
substrate in its best-known form:

* ``style="maj"`` — the MAJ/NOT-friendly decomposition SIMDRAM's Step 1
  produces (e.g. a full adder is 3 MAJ + 2 NOT, the identity
  ``S = MAJ(!Cout, MAJ(A, B, !Cin), Cin)``, Fig. 2 of the paper).
* ``style="classic"`` — the AND/OR/XOR/NOT decomposition used for the
  Ambit baseline, which only has 2-input AND/OR (+NOT) natively.

Bit shifts are free wiring in both styles (vertical layout: a shift is a
change of row index, §2 of the paper).
"""

from __future__ import annotations

from repro.errors import SynthesisError
from repro.logic.circuit import Circuit, GateType, Net

VALID_STYLES = ("maj", "classic")


def _check_style(style: str) -> None:
    if style not in VALID_STYLES:
        raise SynthesisError(
            f"style must be one of {VALID_STYLES}, got {style!r}")


def _check_same_width(a: list[Net], b: list[Net]) -> None:
    if len(a) != len(b):
        raise SynthesisError(
            f"operand widths differ: {len(a)} vs {len(b)}")
    if not a:
        raise SynthesisError("operands must have at least one bit")


def full_adder(c: Circuit, a: Net, b: Net, cin: Net,
               style: str = "maj") -> tuple[Net, Net]:
    """One full adder; returns ``(sum, carry_out)``."""
    _check_style(style)
    if style == "maj":
        cout = c.maj(a, b, cin)
        inner = c.maj(a, b, c.not_(cin))
        total = c.maj(c.not_(cout), inner, cin)
        return total, cout
    axb = c.xor(a, b)
    total = c.xor(axb, cin)
    cout = c.or_(c.and_(a, b), c.and_(axb, cin))
    return total, cout


def half_adder(c: Circuit, a: Net, b: Net,
               style: str = "maj") -> tuple[Net, Net]:
    """One half adder; returns ``(sum, carry_out)``."""
    _check_style(style)
    if style == "maj":
        # XOR via MAJ: a^b = MAJ(!MAJ(a,b,0), MAJ(a,b,1), 0).
        carry = c.maj(a, b, c.const(False))
        either = c.maj(a, b, c.const(True))
        total = c.maj(c.not_(carry), either, c.const(False))
        return total, carry
    return c.xor(a, b), c.and_(a, b)


def ripple_add(c: Circuit, a: list[Net], b: list[Net], cin: Net | None = None,
               style: str = "maj") -> tuple[list[Net], Net]:
    """n-bit ripple-carry addition; returns ``(sum_bits, carry_out)``."""
    _check_same_width(a, b)
    carry = cin if cin is not None else c.const(False)
    out = []
    for bit_a, bit_b in zip(a, b):
        total, carry = full_adder(c, bit_a, bit_b, carry, style)
        out.append(total)
    return out, carry


def ripple_sub(c: Circuit, a: list[Net], b: list[Net],
               style: str = "maj") -> tuple[list[Net], Net]:
    """n-bit subtraction ``a - b`` (two's complement).

    Returns ``(difference_bits, borrow)`` where ``borrow`` is 1 when the
    unsigned subtraction wrapped (i.e. a < b unsigned).
    """
    _check_same_width(a, b)
    inverted = [c.not_(bit) for bit in b]
    diff, carry = ripple_add(c, a, inverted, cin=c.const(True), style=style)
    return diff, c.not_(carry)


def negate(c: Circuit, a: list[Net], style: str = "maj") -> list[Net]:
    """Two's-complement negation ``-a`` (invert then add one)."""
    inverted = [c.not_(bit) for bit in a]
    carry = c.const(True)
    out = []
    for bit in inverted:
        total, carry = half_adder(c, bit, carry, style)
        out.append(total)
    return out


def equal(c: Circuit, a: list[Net], b: list[Net],
          style: str = "maj") -> Net:
    """Equality check; single-bit result."""
    _check_same_width(a, b)
    _check_style(style)
    same = [c.xnor(bit_a, bit_b) for bit_a, bit_b in zip(a, b)]
    return c.reduce(GateType.AND, same)


def greater_unsigned(c: Circuit, a: list[Net], b: list[Net],
                     style: str = "maj") -> Net:
    """Unsigned ``a > b``; single-bit result.

    Uses the borrow chain of ``b - a``: a borrow out means ``b < a``.
    Each stage is ``w' = MAJ(!b_i, a_i, w)`` in MAJ style.
    """
    _check_same_width(a, b)
    _check_style(style)
    borrow = c.const(False)
    for bit_a, bit_b in zip(a, b):
        not_b = c.not_(bit_b)
        if style == "maj":
            borrow = c.maj(not_b, bit_a, borrow)
        else:
            direct = c.and_(not_b, bit_a)
            keep = c.and_(c.or_(not_b, bit_a), borrow)
            borrow = c.or_(direct, keep)
    return borrow


def greater_signed(c: Circuit, a: list[Net], b: list[Net],
                   style: str = "maj") -> Net:
    """Signed (two's complement) ``a > b``; single-bit result."""
    _check_same_width(a, b)
    # a > b  <=>  (a_unsigned > b_unsigned) XOR (sign_a != sign_b)
    unsigned_gt = greater_unsigned(c, a, b, style)
    sign_diff = c.xor(a[-1], b[-1])
    return c.xor(unsigned_gt, sign_diff)


def greater_equal_signed(c: Circuit, a: list[Net], b: list[Net],
                         style: str = "maj") -> Net:
    """Signed ``a >= b``; single-bit result."""
    less = greater_signed(c, b, a, style)
    return c.not_(less)


def mux_vector(c: Circuit, select: Net, if_true: list[Net],
               if_false: list[Net], style: str = "maj") -> list[Net]:
    """Per-bit 2:1 mux of two equal-width vectors."""
    _check_same_width(if_true, if_false)
    _check_style(style)
    return [c.mux(select, t, f) for t, f in zip(if_true, if_false)]


def maximum_signed(c: Circuit, a: list[Net], b: list[Net],
                   style: str = "maj") -> list[Net]:
    """Signed elementwise maximum."""
    a_wins = greater_signed(c, a, b, style)
    return mux_vector(c, a_wins, a, b, style)


def minimum_signed(c: Circuit, a: list[Net], b: list[Net],
                   style: str = "maj") -> list[Net]:
    """Signed elementwise minimum."""
    a_wins = greater_signed(c, a, b, style)
    return mux_vector(c, a_wins, b, a, style)


def multiply(c: Circuit, a: list[Net], b: list[Net],
             style: str = "maj") -> list[Net]:
    """n x n -> n-bit (wrapping) shift-and-add multiplication.

    Partial product ``i`` is ``a AND b_i`` shifted left by ``i`` (the shift
    is free row re-indexing); products are accumulated with ripple adders
    of shrinking width, giving the usual O(n^2) bit-serial multiplier.
    """
    _check_same_width(a, b)
    width = len(a)
    acc = [c.and_(bit, b[0]) for bit in a]
    for i in range(1, width):
        partial = [c.and_(a[j], b[i]) for j in range(width - i)]
        upper, _ = ripple_add(c, acc[i:], partial, style=style)
        acc = acc[:i] + upper
    return acc


def divide_unsigned(c: Circuit, a: list[Net], b: list[Net],
                    style: str = "maj") -> tuple[list[Net], list[Net]]:
    """Unsigned restoring division; returns ``(quotient, remainder)``.

    Classic non-restoring-free formulation: the remainder register is
    shifted left one bit per step, the divisor is subtracted, and a mux
    restores the pre-subtraction value when the subtraction borrowed.
    Division by zero yields an all-ones quotient and remainder == a,
    matching the hardware divider's fixed-point behaviour.
    """
    _check_same_width(a, b)
    width = len(a)
    zero = c.const(False)
    remainder = [zero] * width
    quotient: list[Net] = [zero] * width
    for step in reversed(range(width)):
        shifted = [a[step]] + remainder[:-1]
        diff, borrow = ripple_sub(c, shifted, b, style)
        took = c.not_(borrow)
        remainder = mux_vector(c, took, diff, shifted, style)
        quotient[step] = took
    return quotient, remainder


def popcount(c: Circuit, bits: list[Net], style: str = "maj") -> list[Net]:
    """Count set bits; output width is ``ceil(log2(n+1))``.

    Accumulates bits into a ripple counter (a chain of half adders per
    increment), the standard bit-serial population count.
    """
    if not bits:
        raise SynthesisError("popcount needs at least one bit")
    out_width = max(1, (len(bits)).bit_length())
    acc: list[Net] = [bits[0]] + [c.const(False)] * (out_width - 1)
    for bit in bits[1:]:
        carry = bit
        next_acc = []
        for acc_bit in acc:
            total, carry = half_adder(c, acc_bit, carry, style)
            next_acc.append(total)
        acc = next_acc
    return acc


def relu(c: Circuit, a: list[Net], style: str = "maj") -> list[Net]:
    """Signed ReLU: ``a`` when ``a >= 0`` else 0 (mask with NOT sign)."""
    _check_style(style)
    keep = c.not_(a[-1])
    return [c.and_(bit, keep) for bit in a]


def absolute(c: Circuit, a: list[Net], style: str = "maj") -> list[Net]:
    """Signed absolute value (note: abs(INT_MIN) wraps to INT_MIN)."""
    negated = negate(c, a, style)
    return mux_vector(c, a[-1], negated, a, style)


def reduction(c: Circuit, kind: GateType, bits: list[Net],
              style: str = "maj") -> Net:
    """N-input AND/OR/XOR reduction over the bits of each element."""
    if kind not in (GateType.AND, GateType.OR, GateType.XOR):
        raise SynthesisError(f"unsupported reduction gate {kind}")
    return c.reduce(kind, bits)
