"""MIG optimization — the logic-minimization half of SIMDRAM's Step 1.

The goal (paper §3, step 1) is to minimize the number of DRAM row
activations, which is dominated by the number of MAJ nodes (one TRA each)
and, secondarily, complemented edges (DCC traffic).  The optimizer
*rebuilds* the graph bottom-up through the constructing simplifier of
:class:`~repro.logic.mig.Mig` — structural hashing, majority axioms,
constant folding, re-vote elimination and self-duality canonicalization
all re-fire on the rewritten fanins, and the pass iterates to a fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.logic.mig import CONST_NODE, Mig, Ref

_MAX_PASSES = 8


@dataclass(frozen=True)
class OptimizeStats:
    """Node/depth/edge counts before and after optimization."""

    nodes_before: int
    nodes_after: int
    depth_before: int
    depth_after: int
    complemented_before: int
    complemented_after: int
    passes: int

    @property
    def node_reduction(self) -> float:
        """Fraction of MAJ nodes removed."""
        if self.nodes_before == 0:
            return 0.0
        return 1.0 - self.nodes_after / self.nodes_before


def rebuild(mig: Mig) -> Mig:
    """One optimization pass: reconstruct the graph through the simplifier."""
    out = Mig()
    mapping: dict[int, Ref] = {CONST_NODE: out.const0}
    # Declare inputs first, in their original order, so the operand
    # interface (and thus the µProgram row binding) is stable.
    for name in mig.input_names:
        node = mig.input(name).node
        mapping[node] = out.input(name)
    for node in mig.live_nodes():
        children = mig.children_of(node)
        new_children = []
        for ref in children:
            target = mapping.get(ref.node)
            if target is None:  # a leaf seen for the first time
                name = mig.input_name(ref.node)
                target = out.input(name)
                mapping[ref.node] = target
            new_children.append(~target if ref.negated else target)
        mapping[node] = out.maj(*new_children)
    for name, ref in mig.outputs:
        target = mapping[ref.node]
        out.set_output(name, ~target if ref.negated else target)
    return out


def optimize(mig: Mig) -> tuple[Mig, OptimizeStats]:
    """Iterate :func:`rebuild` to a fixpoint; returns (optimized, stats)."""
    nodes_before = mig.n_nodes
    depth_before = mig.depth()
    complemented_before = mig.n_complemented_edges()

    current = mig
    passes = 0
    previous_nodes = None
    while passes < _MAX_PASSES:
        candidate = rebuild(current)
        passes += 1
        if candidate.n_nodes == previous_nodes:
            current = candidate
            break
        previous_nodes = candidate.n_nodes
        current = candidate

    stats = OptimizeStats(
        nodes_before=nodes_before,
        nodes_after=current.n_nodes,
        depth_before=depth_before,
        depth_after=current.depth(),
        complemented_before=complemented_before,
        complemented_after=current.n_complemented_edges(),
        passes=passes,
    )
    return current, stats
