"""Gate-level combinational circuit builder.

A :class:`Circuit` is the *input* of SIMDRAM's Step 1: the
"AND/OR/NOT-based implementation" of a desired operation (the paper also
allows richer gates — XOR, MUX, MAJ — which Step 1 then re-expresses in
MAJ/NOT form).  Circuits here are pure DAGs of single-output gates,
referenced by integer net ids, evaluated with numpy over any number of
SIMD lanes at once.

The same circuit object serves both substrates: the SIMDRAM backend
converts it to a majority-inverter graph (:mod:`repro.logic.mig`), while
the Ambit baseline lowers it to 2-input AND/OR + NOT command sequences
(:mod:`repro.ambit`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SynthesisError

Net = int


class GateType(enum.Enum):
    """Supported gate kinds (all single-output)."""

    INPUT = "input"
    CONST = "const"
    NOT = "not"
    AND = "and"
    OR = "or"
    XOR = "xor"
    XNOR = "xnor"
    NAND = "nand"
    NOR = "nor"
    MAJ = "maj"
    MUX = "mux"  # fanin order: (select, if_true, if_false)


_ARITY: dict[GateType, int] = {
    GateType.INPUT: 0,
    GateType.CONST: 0,
    GateType.NOT: 1,
    GateType.AND: 2,
    GateType.OR: 2,
    GateType.XOR: 2,
    GateType.XNOR: 2,
    GateType.NAND: 2,
    GateType.NOR: 2,
    GateType.MAJ: 3,
    GateType.MUX: 3,
}


@dataclass(frozen=True)
class Gate:
    """One gate: its type, fanin nets and (for INPUT/CONST) payload."""

    kind: GateType
    fanin: tuple[Net, ...] = ()
    name: str | None = None      # INPUT only
    value: bool | None = None    # CONST only


@dataclass
class Circuit:
    """A combinational netlist with named inputs and outputs."""

    gates: list[Gate] = field(default_factory=list)
    _input_ids: dict[str, Net] = field(default_factory=dict)
    _outputs: list[tuple[str, Net]] = field(default_factory=list)
    _output_names: set[str] = field(default_factory=set)
    _hash_cache: dict[tuple, Net] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _add(self, gate: Gate) -> Net:
        expected = _ARITY[gate.kind]
        if len(gate.fanin) != expected:
            raise SynthesisError(
                f"{gate.kind.value} needs {expected} fanin nets, "
                f"got {len(gate.fanin)}")
        for net in gate.fanin:
            if not 0 <= net < len(self.gates):
                raise SynthesisError(f"fanin net {net} does not exist")
        key = (gate.kind, gate.fanin, gate.value)
        if gate.kind not in (GateType.INPUT,):
            cached = self._hash_cache.get(key)
            if cached is not None:
                return cached
        self.gates.append(gate)
        net = len(self.gates) - 1
        if gate.kind is not GateType.INPUT:
            self._hash_cache[key] = net
        return net

    def input(self, name: str) -> Net:
        """Declare (or fetch) the primary input called ``name``."""
        if name in self._input_ids:
            return self._input_ids[name]
        net = self._add(Gate(GateType.INPUT, name=name))
        self._input_ids[name] = net
        return net

    def const(self, value: bool) -> Net:
        """A constant 0/1 net."""
        return self._add(Gate(GateType.CONST, value=bool(value)))

    def not_(self, a: Net) -> Net:
        gate = self.gates[a]
        if gate.kind is GateType.NOT:
            return gate.fanin[0]  # double negation
        if gate.kind is GateType.CONST:
            return self.const(not gate.value)
        return self._add(Gate(GateType.NOT, (a,)))

    def _binary(self, kind: GateType, a: Net, b: Net) -> Net:
        if a > b and kind is not GateType.MUX:  # commutative: canonical order
            a, b = b, a
        return self._add(Gate(kind, (a, b)))

    def and_(self, a: Net, b: Net) -> Net:
        return self._binary(GateType.AND, a, b)

    def or_(self, a: Net, b: Net) -> Net:
        return self._binary(GateType.OR, a, b)

    def xor(self, a: Net, b: Net) -> Net:
        return self._binary(GateType.XOR, a, b)

    def xnor(self, a: Net, b: Net) -> Net:
        return self._binary(GateType.XNOR, a, b)

    def nand(self, a: Net, b: Net) -> Net:
        return self._binary(GateType.NAND, a, b)

    def nor(self, a: Net, b: Net) -> Net:
        return self._binary(GateType.NOR, a, b)

    def maj(self, a: Net, b: Net, c: Net) -> Net:
        """3-input majority — SIMDRAM's native compute primitive."""
        ordered = tuple(sorted((a, b, c)))
        return self._add(Gate(GateType.MAJ, ordered))

    def mux(self, select: Net, if_true: Net, if_false: Net) -> Net:
        """2:1 multiplexer: ``if_true`` when ``select`` else ``if_false``."""
        return self._add(Gate(GateType.MUX, (select, if_true, if_false)))

    def reduce(self, kind: GateType, nets: list[Net]) -> Net:
        """Balanced reduction tree of a commutative 2-input gate."""
        if not nets:
            raise SynthesisError("cannot reduce an empty net list")
        level = list(nets)
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(self._binary(kind, level[i], level[i + 1]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def set_output(self, name: str, net: Net) -> None:
        """Mark ``net`` as the primary output called ``name``."""
        if name in self._output_names:
            raise SynthesisError(f"duplicate output name {name!r}")
        if not 0 <= net < len(self.gates):
            raise SynthesisError(f"output net {net} does not exist")
        self._output_names.add(name)
        self._outputs.append((name, net))

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def input_names(self) -> list[str]:
        return list(self._input_ids)

    @property
    def outputs(self) -> list[tuple[str, Net]]:
        return list(self._outputs)

    @property
    def n_gates(self) -> int:
        """Number of logic gates (excluding inputs and constants)."""
        return sum(1 for g in self.gates
                   if g.kind not in (GateType.INPUT, GateType.CONST))

    def count(self, kind: GateType) -> int:
        """Number of gates of the given type."""
        return sum(1 for g in self.gates if g.kind is kind)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, inputs: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Evaluate all outputs over vectors of lane values.

        ``inputs`` maps every input name to a boolean array; all arrays
        must share one shape.  Returns output name → boolean array.
        """
        missing = set(self._input_ids) - set(inputs)
        if missing:
            raise SynthesisError(f"missing input values for {sorted(missing)}")
        shape = None
        values: list[np.ndarray | None] = [None] * len(self.gates)
        for name, net in self._input_ids.items():
            arr = np.asarray(inputs[name], dtype=bool)
            if shape is None:
                shape = arr.shape
            elif arr.shape != shape:
                raise SynthesisError(
                    f"input {name!r} has shape {arr.shape}, expected {shape}")
            values[net] = arr
        if shape is None:
            shape = (1,)

        for net, gate in enumerate(self.gates):
            if values[net] is not None:
                continue
            values[net] = self._eval_gate(gate, values, shape)
        return {name: values[net] for name, net in self._outputs}

    def _eval_gate(self, gate: Gate, values: list, shape: tuple) -> np.ndarray:
        kind = gate.kind
        if kind is GateType.CONST:
            return np.full(shape, gate.value, dtype=bool)
        fanin = [values[f] for f in gate.fanin]
        if kind is GateType.NOT:
            return ~fanin[0]
        if kind is GateType.AND:
            return fanin[0] & fanin[1]
        if kind is GateType.OR:
            return fanin[0] | fanin[1]
        if kind is GateType.XOR:
            return fanin[0] ^ fanin[1]
        if kind is GateType.XNOR:
            return ~(fanin[0] ^ fanin[1])
        if kind is GateType.NAND:
            return ~(fanin[0] & fanin[1])
        if kind is GateType.NOR:
            return ~(fanin[0] | fanin[1])
        if kind is GateType.MAJ:
            a, b, c = fanin
            return (a & b) | (b & c) | (a & c)
        if kind is GateType.MUX:
            select, if_true, if_false = fanin
            return np.where(select, if_true, if_false)
        raise SynthesisError(f"cannot evaluate gate kind {kind}")
