"""Majority-inverter graphs (MIG) — the output representation of Step 1.

A MIG is a DAG whose internal nodes are all 3-input majority gates and
whose edges may be complemented; together MAJ + NOT are logically
complete.  SIMDRAM computes directly in this representation: each MAJ
node becomes one triple-row activation, each complemented edge is served
by a dual-contact cell.  Minimizing MIG nodes therefore minimizes DRAM
row activations, which is exactly the paper's Step 1 objective.

Construction applies local simplification rules on the fly:

* ``M(x, x, y) = x`` and ``M(x, !x, y) = y`` (majority axioms),
* constant folding (a pair of constants always hits one rule above),
* ``M(x, y, M(x, y, z)) = M(x, y, z)`` and
  ``M(x, y, !M(x, y, z)) = M(x, y, !z)`` (redundant re-vote),
* self-duality canonicalization ``M(!x, !y, !z) = !M(x, y, z)`` so at
  most one fanin edge per node is complemented where possible,
* structural hashing (identical children share one node).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SynthesisError
from repro.logic.circuit import Circuit, GateType

CONST_NODE = 0


@dataclass(frozen=True, order=True)
class Ref:
    """A (possibly complemented) edge to a MIG node."""

    node: int
    negated: bool = False

    def __invert__(self) -> "Ref":
        return Ref(self.node, not self.negated)


class Mig:
    """A majority-inverter graph with named inputs and outputs."""

    def __init__(self) -> None:
        # Parallel node arrays; node 0 is the constant-0 leaf.
        self._children: list[tuple[Ref, Ref, Ref] | None] = [None]
        self._input_names: list[str | None] = [None]
        self._input_ids: dict[str, int] = {}
        self._hash: dict[tuple[Ref, Ref, Ref], int] = {}
        self._outputs: list[tuple[str, Ref]] = []
        self._output_names: set[str] = set()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @property
    def const0(self) -> Ref:
        """The constant-0 edge."""
        return Ref(CONST_NODE, False)

    @property
    def const1(self) -> Ref:
        """The constant-1 edge."""
        return Ref(CONST_NODE, True)

    def input(self, name: str) -> Ref:
        """Declare (or fetch) the primary input called ``name``."""
        node = self._input_ids.get(name)
        if node is None:
            self._children.append(None)
            self._input_names.append(name)
            node = len(self._children) - 1
            self._input_ids[name] = node
        return Ref(node, False)

    def _validate(self, ref: Ref) -> None:
        if not 0 <= ref.node < len(self._children):
            raise SynthesisError(f"reference to unknown node {ref.node}")

    def maj(self, a: Ref, b: Ref, c: Ref) -> Ref:
        """Create (or simplify away) the majority of three edges."""
        for ref in (a, b, c):
            self._validate(ref)
        # Majority axioms on every pair.
        for x, y, z in ((a, b, c), (a, c, b), (b, c, a)):
            if x == y:
                return x
            if x == ~y:
                return z
        children = tuple(sorted((a, b, c)))
        # Redundant re-vote: M(x, y, [!]M(x, y, z)) simplification.
        simplified = self._fold_revote(children)
        if simplified is not None:
            return simplified
        # Self-duality: keep at most one complemented fanin edge.
        n_negated = sum(ref.negated for ref in children)
        if n_negated >= 2:
            flipped = tuple(sorted(~ref for ref in children))
            return ~self._lookup(flipped)
        return self._lookup(children)

    def _fold_revote(self, children: tuple[Ref, Ref, Ref]) -> Ref | None:
        for i in range(3):
            candidate = children[i]
            inner = self._children[candidate.node]
            if inner is None:
                continue
            others = {children[j] for j in range(3) if j != i}
            inner_set = set(inner)
            if others <= inner_set:
                (z,) = inner_set - others
                if not candidate.negated:
                    return candidate
                return self.maj(*sorted(others), ~z)
        return None

    def _lookup(self, children: tuple[Ref, Ref, Ref]) -> Ref:
        node = self._hash.get(children)
        if node is None:
            self._children.append(children)
            self._input_names.append(None)
            node = len(self._children) - 1
            self._hash[children] = node
        return Ref(node, False)

    def and_(self, a: Ref, b: Ref) -> Ref:
        return self.maj(a, b, self.const0)

    def or_(self, a: Ref, b: Ref) -> Ref:
        return self.maj(a, b, self.const1)

    def xor(self, a: Ref, b: Ref) -> Ref:
        # a ^ b = AND(NAND(a, b), OR(a, b)).
        return self.and_(~self.and_(a, b), self.or_(a, b))

    def mux(self, select: Ref, if_true: Ref, if_false: Ref) -> Ref:
        return self.or_(self.and_(select, if_true),
                        self.and_(~select, if_false))

    def set_output(self, name: str, ref: Ref) -> None:
        """Mark ``ref`` as the primary output called ``name``."""
        self._validate(ref)
        if name in self._output_names:
            raise SynthesisError(f"duplicate output name {name!r}")
        self._output_names.add(name)
        self._outputs.append((name, ref))

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def outputs(self) -> list[tuple[str, Ref]]:
        return list(self._outputs)

    @property
    def input_names(self) -> list[str]:
        return list(self._input_ids)

    def children_of(self, node: int) -> tuple[Ref, Ref, Ref] | None:
        """Fanin edges of ``node`` (None for inputs and the constant)."""
        return self._children[node]

    def input_name(self, node: int) -> str | None:
        """Input name of ``node`` when it is a primary input."""
        return self._input_names[node]

    def is_input(self, node: int) -> bool:
        return self._input_names[node] is not None

    def live_nodes(self) -> list[int]:
        """MAJ nodes reachable from the outputs, in topological order."""
        order: list[int] = []
        seen: set[int] = set()
        stack = [ref.node for _, ref in self._outputs]
        # Iterative post-order DFS.
        visit: list[tuple[int, bool]] = [(n, False) for n in stack]
        while visit:
            node, expanded = visit.pop()
            if node in seen:
                continue
            children = self._children[node]
            if children is None:  # leaf
                seen.add(node)
                continue
            if expanded:
                seen.add(node)
                order.append(node)
                continue
            visit.append((node, True))
            visit.extend((ref.node, False) for ref in children)
        return order

    @property
    def n_nodes(self) -> int:
        """Number of live MAJ nodes (TRAs needed, before scheduling)."""
        return len(self.live_nodes())

    def depth(self) -> int:
        """Longest input-to-output path in MAJ levels."""
        level: dict[int, int] = {}
        for node in self.live_nodes():
            children = self._children[node]
            level[node] = 1 + max(level.get(ref.node, 0) for ref in children)
        if not self._outputs:
            return 0
        return max(level.get(ref.node, 0) for _, ref in self._outputs)

    def n_complemented_edges(self) -> int:
        """Complemented fanin edges among live nodes (NOT pressure)."""
        total = 0
        for node in self.live_nodes():
            children = self._children[node]
            total += sum(ref.negated for ref in children)
        return total

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, inputs: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Evaluate outputs over boolean lane vectors (like Circuit)."""
        missing = set(self._input_ids) - set(inputs)
        if missing:
            raise SynthesisError(f"missing input values for {sorted(missing)}")
        shape = None
        for name in self._input_ids:
            arr = np.asarray(inputs[name], dtype=bool)
            if shape is None:
                shape = arr.shape
            elif arr.shape != shape:
                raise SynthesisError(
                    f"input {name!r} has shape {arr.shape}, expected {shape}")
        if shape is None:
            shape = (1,)

        values: dict[int, np.ndarray] = {
            CONST_NODE: np.zeros(shape, dtype=bool)}
        for name, node in self._input_ids.items():
            values[node] = np.asarray(inputs[name], dtype=bool)

        def edge(ref: Ref) -> np.ndarray:
            val = values[ref.node]
            return ~val if ref.negated else val

        for node in self.live_nodes():
            a, b, c = (edge(ref) for ref in self._children[node])
            values[node] = (a & b) | (b & c) | (a & c)
        return {name: edge(ref) for name, ref in self._outputs}

    # ------------------------------------------------------------------
    # synthesis from a gate-level circuit (Step 1 conversion)
    # ------------------------------------------------------------------
    @classmethod
    def from_circuit(cls, circuit: Circuit) -> "Mig":
        """Convert an AND/OR/NOT(+XOR/MUX/MAJ) circuit into MAJ/NOT form."""
        mig = cls()
        refs: list[Ref | None] = [None] * len(circuit.gates)
        for net, gate in enumerate(circuit.gates):
            kind = gate.kind
            fanin = [refs[f] for f in gate.fanin]
            if kind is GateType.INPUT:
                refs[net] = mig.input(gate.name)
            elif kind is GateType.CONST:
                refs[net] = mig.const1 if gate.value else mig.const0
            elif kind is GateType.NOT:
                refs[net] = ~fanin[0]
            elif kind is GateType.AND:
                refs[net] = mig.and_(*fanin)
            elif kind is GateType.OR:
                refs[net] = mig.or_(*fanin)
            elif kind is GateType.NAND:
                refs[net] = ~mig.and_(*fanin)
            elif kind is GateType.NOR:
                refs[net] = ~mig.or_(*fanin)
            elif kind is GateType.XOR:
                refs[net] = mig.xor(*fanin)
            elif kind is GateType.XNOR:
                refs[net] = ~mig.xor(*fanin)
            elif kind is GateType.MAJ:
                refs[net] = mig.maj(*fanin)
            elif kind is GateType.MUX:
                refs[net] = mig.mux(*fanin)
            else:
                raise SynthesisError(f"cannot synthesize gate kind {kind}")
        for name, net in circuit.outputs:
            mig.set_output(name, refs[net])
        return mig
