"""Logic layer: gate-level circuits, the arithmetic circuit library, and
majority-inverter graphs with optimization (the paper's Step 1)."""

from repro.logic.circuit import Circuit, Gate, GateType, Net
from repro.logic.mig import CONST_NODE, Mig, Ref
from repro.logic.optimize import OptimizeStats, optimize, rebuild
from repro.logic import library

__all__ = [
    "Circuit",
    "Gate",
    "GateType",
    "Net",
    "CONST_NODE",
    "Mig",
    "Ref",
    "OptimizeStats",
    "optimize",
    "rebuild",
    "library",
]
