"""Ambit-style compilation of SIMDRAM's operation set.

The paper evaluates every operation on Ambit by implementing it with
Ambit's native primitives — 2-input AND/OR via triple-row activation with
a control row, and NOT via dual-contact cells — in the operation's
best-known AND/OR/NOT form.  That is exactly what
``compile_operation(..., backend="ambit")`` produces; this module is the
discoverable entry point and adds the latency/energy comparison helper
used throughout the benchmarks.
"""

from __future__ import annotations

from repro.core.compiler import compile_operation
from repro.core.operations import OperationSpec, get_operation
from repro.uprog.program import MicroProgram
from repro.uprog.scheduler import ScheduleOptions


def compile_ambit(spec_or_name: OperationSpec | str, width: int,
                  options: ScheduleOptions | None = None) -> MicroProgram:
    """Compile an operation for the Ambit baseline substrate."""
    spec = (get_operation(spec_or_name)
            if isinstance(spec_or_name, str) else spec_or_name)
    return compile_operation(spec, width, backend="ambit", options=options)
