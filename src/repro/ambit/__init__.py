"""The Ambit baseline (Seshadri et al., MICRO 2017).

Ambit is the in-DRAM bulk-bitwise accelerator SIMDRAM compares against.
This package provides:

* :func:`compile_ambit` — the paper's Ambit baseline for the 16
  operations: the same operation lowered to Ambit's native 2-input
  AND/OR (+ DCC NOT) command sequences on the identical substrate;
* :mod:`repro.ambit.bulk` — Ambit's original horizontal bulk bitwise
  operations (AND/OR/NOT/... of whole 8 KB rows), used by applications
  such as BitWeaving that operate on horizontally packed bitmaps.
"""

from repro.ambit.baseline import compile_ambit
from repro.ambit.bulk import BULK_OPS, BulkOp, bulk_program

__all__ = ["compile_ambit", "BULK_OPS", "BulkOp", "bulk_program"]
