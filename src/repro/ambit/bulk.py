"""Ambit's native horizontal bulk bitwise operations.

Ambit's original use case operates on *horizontally* packed bit rows: one
DRAM row is 65536 independent bits, and a bulk operation combines whole
rows (e.g. a bitmap index intersection).  SIMDRAM subsumes these as
1-bit-element operations, so each bulk op here is compiled through the
same pipeline with ``width=1`` — which reproduces the exact command
sequences of the Ambit paper (e.g. bulk AND = 4 AAPs: three operand
loads and one triple-row activation fused with the result copy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.compiler import compile_operation
from repro.core.operations import OperationSpec
from repro.errors import OperationError
from repro.logic.circuit import Circuit, Net
from repro.uprog.program import MicroProgram


@dataclass(frozen=True)
class BulkOp:
    """One Ambit bulk bitwise operation on whole rows."""

    name: str
    arity: int
    build: Callable[[Circuit, list[Net]], Net]
    golden: Callable[[list[np.ndarray]], np.ndarray]


BULK_OPS: dict[str, BulkOp] = {
    "and": BulkOp("and", 2, lambda c, x: c.and_(x[0], x[1]),
                  lambda v: v[0] & v[1]),
    "or": BulkOp("or", 2, lambda c, x: c.or_(x[0], x[1]),
                 lambda v: v[0] | v[1]),
    "nand": BulkOp("nand", 2, lambda c, x: c.nand(x[0], x[1]),
                   lambda v: ~(v[0] & v[1])),
    "nor": BulkOp("nor", 2, lambda c, x: c.nor(x[0], x[1]),
                  lambda v: ~(v[0] | v[1])),
    "xor": BulkOp("xor", 2, lambda c, x: c.xor(x[0], x[1]),
                  lambda v: v[0] ^ v[1]),
    "xnor": BulkOp("xnor", 2, lambda c, x: c.xnor(x[0], x[1]),
                   lambda v: ~(v[0] ^ v[1])),
    "not": BulkOp("not", 1, lambda c, x: c.not_(x[0]),
                  lambda v: ~v[0]),
}


def bulk_program(name: str) -> MicroProgram:
    """Compile an Ambit bulk bitwise op as a width-1 µProgram."""
    op = BULK_OPS.get(name)
    if op is None:
        raise OperationError(
            f"unknown bulk op {name!r}; known: {sorted(BULK_OPS)}")

    def build(circuit: Circuit, operands: list[list[Net]],
              style: str) -> list[Net]:
        return [op.build(circuit, [bits[0] for bits in operands])]

    def golden(inputs: list[np.ndarray], width: int) -> np.ndarray:
        return op.golden(inputs) & 1

    spec = OperationSpec(
        name=f"bulk_{name}", arity=op.arity, category="bulk",
        description=f"Ambit bulk bitwise {name} of whole rows",
        build=build, golden=golden,
        in_widths=lambda width: [1] * op.arity,
        out_width=lambda width: 1)
    return compile_operation(spec, width=1, backend="ambit")
