"""Allocator behaviour under churn: coalescing, accounting, reclaim.

The paging layer frees and reallocates row blocks constantly, so the
allocator must never degrade into fragmentation that a coalescing free
list would have avoided.  The hypothesis sweep drives random
alloc/free/reserve sequences against a reference free-extent model and
asserts the invariants that make paging safe:

* adjacent free extents are always merged (no two extents touch);
* ``free_rows``/``largest_free`` match the reference model exactly;
* an allocation succeeds iff a contiguous extent of the requested width
  exists — and after freeing *everything*, the full D-group is one
  extent again, so total-free capacity is always recoverable.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from hypothesis_profiles import scaled_examples

from repro.dram.geometry import DramGeometry
from repro.errors import AllocationError
from repro.exec.memory import VerticalAllocator

DATA_ROWS = 64


def make_allocator(reclaim=None) -> VerticalAllocator:
    geometry = DramGeometry.sim_small(cols=8, data_rows=DATA_ROWS,
                                      banks=1)
    return VerticalAllocator(geometry, reclaim=reclaim)


#: One churn step: (op, width, victim-index). ``victim`` picks which
#: live block to free (modulo the live count at that point).
steps = st.lists(
    st.tuples(st.sampled_from(["alloc", "free", "reserve"]),
              st.integers(min_value=1, max_value=33),
              st.integers(min_value=0, max_value=7)),
    min_size=1, max_size=60)


@settings(max_examples=scaled_examples(120), deadline=None)
@given(steps)
def test_churn_matches_reference_model(sequence):
    allocator = make_allocator()
    live = []
    for op, width, victim in sequence:
        extents_before = allocator.free_extents
        can_fit = any(size >= width for _, size in extents_before)
        if op == "alloc":
            if can_fit:
                block = allocator.alloc(width)
                assert block.width == width
                live.append(block)
            else:
                with pytest.raises(AllocationError):
                    allocator.alloc(width)
        elif op == "reserve":
            if can_fit:
                with allocator.reserve(width) as block:
                    assert block.width == width
                # reserve must leave the free list exactly as it was
                assert allocator.free_extents == extents_before
            else:
                with pytest.raises(AllocationError):
                    with allocator.reserve(width):
                        pass
        elif live:
            allocator.free(live.pop(victim % len(live)))

        # Invariants after every step.
        extents = allocator.free_extents
        assert extents == sorted(extents)
        for (base_a, size_a), (base_b, _) in zip(extents, extents[1:]):
            assert base_a + size_a < base_b, (
                f"uncoalesced neighbours {extents}")
        used = sum(block.width for block in allocator.allocated_blocks)
        assert allocator.free_rows() == DATA_ROWS - used
        assert allocator.largest_free() == max(
            (size for _, size in extents), default=0)

    # Full recovery: freeing every live block restores one extent.
    for block in live:
        allocator.free(block)
    assert allocator.free_extents == [(0, DATA_ROWS)]


def test_free_coalesces_both_neighbours():
    allocator = make_allocator()
    a = allocator.alloc(8)
    b = allocator.alloc(8)
    c = allocator.alloc(8)
    allocator.free(a)
    allocator.free(c)  # c's hole merges with the tail immediately
    assert allocator.free_extents == [(0, 8), (16, DATA_ROWS - 16)]
    allocator.free(b)  # merges a-hole + b + tail into one extent
    assert allocator.free_extents == [(0, DATA_ROWS)]


def test_interleaved_free_recovers_contiguity():
    """The fragmentation pattern the paging layer produces: free every
    other block, then allocate something wider than any single hole."""
    allocator = make_allocator()
    blocks = [allocator.alloc(4) for _ in range(16)]
    assert allocator.free_rows() == 0
    for block in blocks[::2]:
        allocator.free(block)
    assert allocator.largest_free() == 4
    with pytest.raises(AllocationError):
        allocator.alloc(8)
    for block in blocks[1::2]:
        allocator.free(block)
    # Coalescing restored the whole D-group; a large block fits again.
    assert allocator.largest_free() == DATA_ROWS
    assert allocator.alloc(DATA_ROWS).width == DATA_ROWS


def test_double_free_rejected():
    allocator = make_allocator()
    block = allocator.alloc(4)
    allocator.free(block)
    with pytest.raises(AllocationError):
        allocator.free(block)


class TestReclaimHook:
    def test_reclaim_is_retried_until_fit(self):
        victims = []
        allocator = make_allocator()

        def reclaim(width):
            if victims:
                allocator.free(victims.pop())
                return True
            return False

        allocator.set_reclaim(reclaim)
        victims.extend(allocator.alloc(16) for _ in range(4))
        assert allocator.free_rows() == 0
        # Needs two evictions (16 rows each, adjacent, coalesced).
        block = allocator.alloc(24)
        assert block.width == 24
        assert len(victims) == 2

    def test_exhausted_reclaim_raises(self):
        allocator = make_allocator(reclaim=lambda width: False)
        allocator.alloc(DATA_ROWS)
        with pytest.raises(AllocationError):
            allocator.alloc(1)

    def test_unproductive_reclaim_terminates(self):
        calls = []
        allocator = make_allocator()
        allocator.set_reclaim(lambda width: not calls.append(width)
                              and False)
        allocator.alloc(DATA_ROWS)
        with pytest.raises(AllocationError):
            allocator.alloc(2)
        assert calls == [2]
