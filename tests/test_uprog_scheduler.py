"""Tests for the Step-2 scheduler: MIG -> AAP/AP command streams.

Every scheduled program is validated by executing it on the bit-accurate
subarray with *randomized* initial contents, so any reliance on stale
state or mis-sequenced commands shows up as a wrong result.
"""

import numpy as np
import pytest

from repro.dram.geometry import DramGeometry
from repro.dram.rows import data_row
from repro.dram.subarray import Subarray
from repro.errors import SchedulingError
from repro.exec.control_unit import ControlUnit
from repro.exec.layout import RowLayout
from repro.logic.mig import Mig
from repro.uprog.program import OperandSpec
from repro.uprog.scheduler import ScheduleOptions, schedule
from repro.uprog.uops import Space, UAap, URow


def run_mig(mig, n_in0, n_in1, n_out, inputs0, inputs1,
            options=None, seed=0):
    """Schedule ``mig`` and execute it on a randomized subarray."""
    input_rows = {f"a{i}": URow(Space.INPUT0, i) for i in range(n_in0)}
    input_rows |= {f"b{i}": URow(Space.INPUT1, i) for i in range(n_in1)}
    output_rows = {f"y{i}": URow(Space.OUTPUT, i) for i in range(n_out)}
    input_specs = [OperandSpec(Space.INPUT0, n_in0)]
    if n_in1:
        input_specs.append(OperandSpec(Space.INPUT1, n_in1))
    program = schedule(
        mig, op_name="test", backend="simdram", element_width=max(n_in0, 1),
        input_specs=input_specs,
        output_spec=OperandSpec(Space.OUTPUT, n_out),
        input_rows=input_rows, output_rows=output_rows, options=options)

    cols = len(inputs0[0]) if n_in0 else 8
    geometry = DramGeometry.sim_small(
        cols=cols, data_rows=n_in0 + n_in1 + n_out + program.n_temp_rows + 4)
    subarray = Subarray(geometry, rng=np.random.default_rng(seed))
    layout = RowLayout({
        Space.INPUT0: 0,
        Space.INPUT1: n_in0,
        Space.OUTPUT: n_in0 + n_in1,
        Space.TEMP: n_in0 + n_in1 + n_out,
    })
    for i, bits in enumerate(inputs0):
        subarray.write_row(data_row(i), np.asarray(bits, dtype=bool))
    for i, bits in enumerate(inputs1):
        subarray.write_row(data_row(n_in0 + i), np.asarray(bits, dtype=bool))
    ControlUnit().execute(program, subarray, layout)
    outputs = [subarray.peek(data_row(n_in0 + n_in1 + i))
               for i in range(n_out)]
    return program, outputs


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestBasicNodes:
    def test_single_and(self, rng):
        m = Mig()
        a, b = m.input("a0"), m.input("b0")
        m.set_output("y0", m.and_(a, b))
        av, bv = rng.integers(0, 2, 16).astype(bool), \
            rng.integers(0, 2, 16).astype(bool)
        _, (out,) = run_mig(m, 1, 1, 1, [av], [bv])
        assert np.array_equal(out, av & bv)

    def test_single_or_and_xor(self, rng):
        m = Mig()
        a, b = m.input("a0"), m.input("b0")
        m.set_output("y0", m.or_(a, b))
        m.set_output("y1", m.xor(a, b))
        av, bv = rng.integers(0, 2, 16).astype(bool), \
            rng.integers(0, 2, 16).astype(bool)
        _, (out_or, out_xor) = run_mig(m, 1, 1, 2, [av], [bv])
        assert np.array_equal(out_or, av | bv)
        assert np.array_equal(out_xor, av ^ bv)

    def test_negated_output(self, rng):
        m = Mig()
        a, b = m.input("a0"), m.input("b0")
        m.set_output("y0", ~m.and_(a, b))  # NAND
        av, bv = rng.integers(0, 2, 16).astype(bool), \
            rng.integers(0, 2, 16).astype(bool)
        _, (out,) = run_mig(m, 1, 1, 1, [av], [bv])
        assert np.array_equal(out, ~(av & bv))

    def test_passthrough_output(self, rng):
        m = Mig()
        a = m.input("a0")
        m.input("b0")  # declared but unused
        m.set_output("y0", a)
        av = rng.integers(0, 2, 16).astype(bool)
        bv = rng.integers(0, 2, 16).astype(bool)
        _, (out,) = run_mig(m, 1, 1, 1, [av], [bv])
        assert np.array_equal(out, av)

    def test_negated_input_passthrough(self, rng):
        m = Mig()
        a = m.input("a0")
        m.input("b0")
        m.set_output("y0", ~a)  # NOT via DCC round trip
        av = rng.integers(0, 2, 16).astype(bool)
        bv = rng.integers(0, 2, 16).astype(bool)
        _, (out,) = run_mig(m, 1, 1, 1, [av], [bv])
        assert np.array_equal(out, ~av)

    def test_constant_outputs(self, rng):
        m = Mig()
        m.input("a0")
        m.input("b0")
        m.set_output("y0", m.const0)
        m.set_output("y1", m.const1)
        av = rng.integers(0, 2, 16).astype(bool)
        bv = rng.integers(0, 2, 16).astype(bool)
        _, (zero, one) = run_mig(m, 1, 1, 2, [av], [bv])
        assert not zero.any()
        assert one.all()

    def test_same_node_feeds_two_outputs(self, rng):
        m = Mig()
        a, b = m.input("a0"), m.input("b0")
        node = m.and_(a, b)
        m.set_output("y0", node)
        m.set_output("y1", ~node)
        av, bv = rng.integers(0, 2, 16).astype(bool), \
            rng.integers(0, 2, 16).astype(bool)
        _, (pos, neg) = run_mig(m, 1, 1, 2, [av], [bv])
        assert np.array_equal(pos, av & bv)
        assert np.array_equal(neg, ~(av & bv))


class TestDeepGraphs:
    @pytest.mark.parametrize("reuse", [True, False])
    def test_xor_tree(self, rng, reuse):
        n = 8
        m = Mig()
        refs = [m.input(f"a{i}") for i in range(n)]
        m.input("b0")
        acc = refs[0]
        for ref in refs[1:]:
            acc = m.xor(acc, ref)
        m.set_output("y0", acc)
        rows = [rng.integers(0, 2, 16).astype(bool) for _ in range(n)]
        bv = rng.integers(0, 2, 16).astype(bool)
        options = ScheduleOptions(reuse=reuse)
        _, (out,) = run_mig(m, n, 1, 1, rows, [bv], options=options)
        expected = rows[0].copy()
        for bits in rows[1:]:
            expected ^= bits
        assert np.array_equal(out, expected)

    def test_reuse_never_issues_more_commands_than_naive(self, rng):
        n = 6
        m = Mig()
        refs = [m.input(f"a{i}") for i in range(n)]
        acc = refs[0]
        for ref in refs[1:]:
            acc = m.maj(acc, ref, ~refs[0])
        m.set_output("y0", acc)
        rows = [rng.integers(0, 2, 8).astype(bool) for _ in range(n)]
        prog_reuse, _ = run_mig(m, n, 0, 1, rows, [],
                                options=ScheduleOptions(reuse=True))
        prog_naive, _ = run_mig(m, n, 0, 1, rows, [],
                                options=ScheduleOptions(reuse=False))
        assert prog_reuse.n_commands <= prog_naive.n_commands


class TestPeephole:
    def test_ambit_and_is_four_aaps(self):
        """The canonical Ambit bulk AND: 3 loads + fused TRA-copy."""
        m = Mig()
        a, b = m.input("a0"), m.input("b0")
        m.set_output("y0", m.and_(a, b))
        input_rows = {"a0": URow(Space.INPUT0, 0),
                      "b0": URow(Space.INPUT1, 0)}
        program = schedule(
            m, op_name="and", backend="ambit", element_width=1,
            input_specs=[OperandSpec(Space.INPUT0, 1),
                         OperandSpec(Space.INPUT1, 1)],
            output_spec=OperandSpec(Space.OUTPUT, 1),
            input_rows=input_rows,
            output_rows={"y0": URow(Space.OUTPUT, 0)})
        assert program.n_aap == 4
        assert program.n_ap == 0  # TRA fused into the copy-out AAP

    def test_peephole_can_be_disabled(self):
        m = Mig()
        a, b = m.input("a0"), m.input("b0")
        m.set_output("y0", m.and_(a, b))
        input_rows = {"a0": URow(Space.INPUT0, 0),
                      "b0": URow(Space.INPUT1, 0)}
        program = schedule(
            m, op_name="and", backend="simdram", element_width=1,
            input_specs=[OperandSpec(Space.INPUT0, 1),
                         OperandSpec(Space.INPUT1, 1)],
            output_spec=OperandSpec(Space.OUTPUT, 1),
            input_rows=input_rows,
            output_rows={"y0": URow(Space.OUTPUT, 0)},
            options=ScheduleOptions(peephole=False))
        assert program.n_ap == 1
        assert program.n_aap == 4

    def test_merged_aap_reads_triple(self):
        m = Mig()
        a, b = m.input("a0"), m.input("b0")
        m.set_output("y0", m.and_(a, b))
        program = schedule(
            m, op_name="and", backend="simdram", element_width=1,
            input_specs=[OperandSpec(Space.INPUT0, 1),
                         OperandSpec(Space.INPUT1, 1)],
            output_spec=OperandSpec(Space.OUTPUT, 1),
            input_rows={"a0": URow(Space.INPUT0, 0),
                        "b0": URow(Space.INPUT1, 0)},
            output_rows={"y0": URow(Space.OUTPUT, 0)})
        fused = [op for op in program.uops
                 if isinstance(op, UAap) and op.src.n_wordlines == 3]
        assert len(fused) == 1


class TestValidation:
    def test_missing_input_binding_rejected(self):
        m = Mig()
        a, b = m.input("a0"), m.input("b0")
        m.set_output("y0", m.and_(a, b))
        with pytest.raises(SchedulingError):
            schedule(m, op_name="bad", backend="simdram", element_width=1,
                     input_specs=[OperandSpec(Space.INPUT0, 1)],
                     output_spec=OperandSpec(Space.OUTPUT, 1),
                     input_rows={"a0": URow(Space.INPUT0, 0)},
                     output_rows={"y0": URow(Space.OUTPUT, 0)})

    def test_missing_output_binding_rejected(self):
        m = Mig()
        a = m.input("a0")
        m.set_output("y0", a)
        with pytest.raises(SchedulingError):
            schedule(m, op_name="bad", backend="simdram", element_width=1,
                     input_specs=[OperandSpec(Space.INPUT0, 1)],
                     output_spec=OperandSpec(Space.OUTPUT, 1),
                     input_rows={"a0": URow(Space.INPUT0, 0)},
                     output_rows={})


class TestTempAccounting:
    def test_temp_high_water_reported(self):
        """A multiplier keeps more values live than the six B-group
        planes can hold, so the scheduler must spill to temporaries."""
        from repro.core.compiler import compile_operation
        from repro.core.operations import get_operation
        program = compile_operation(get_operation("mul"), 8)
        assert program.n_temp_rows >= 1

    def test_temps_freed_and_reused(self):
        """High-water mark stays far below one-temp-per-node."""
        from repro.core.compiler import compile_operation
        from repro.core.operations import get_operation
        spec = get_operation("mul")
        program = compile_operation(spec, 8)
        from repro.core.compiler import build_mig
        nodes = build_mig(spec, 8).n_nodes
        assert program.n_temp_rows < nodes / 2
