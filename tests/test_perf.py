"""Tests for the throughput/energy/area evaluation models."""

import pytest

from repro.core.compiler import compile_cached
from repro.dram.geometry import DramGeometry
from repro.errors import ConfigError
from repro.perf.area import area_report
from repro.perf.model import (
    PimSystemModel,
    measure_all_platforms,
    measure_host,
)
from repro.perf.opmodel import host_profile
from repro.perf.platforms import HostPlatform, cpu_skylake, gpu_volta


class TestHostPlatforms:
    def test_gpu_faster_than_cpu(self):
        cpu = measure_host(cpu_skylake(), "add", 32)
        gpu = measure_host(gpu_volta(), "add", 32)
        assert gpu.throughput_gops > cpu.throughput_gops

    def test_memory_bound_for_bulk_ops(self):
        cpu = cpu_skylake()
        profile = host_profile("add", 32)
        expected = cpu.sustained_bw_bytes_per_ns / profile.bytes_per_element
        assert cpu.throughput_gops(
            profile.bytes_per_element,
            profile.ops_per_element) == pytest.approx(expected)

    def test_compute_bound_when_ops_dominate(self):
        cpu = cpu_skylake()
        # Absurdly expensive op: compute ceiling must bind.
        assert cpu.throughput_gops(1.0, 1e6) == pytest.approx(
            cpu.peak_ops_per_ns / 1e6)

    def test_div_slower_than_add_on_host(self):
        cpu_add = measure_host(cpu_skylake(), "add", 8)
        cpu_div = measure_host(cpu_skylake(), "div", 8)
        assert cpu_div.energy_nj_per_element > cpu_add.energy_nj_per_element

    def test_profile_bytes(self):
        assert host_profile("add", 32).bytes_per_element == 12
        assert host_profile("eq", 8).bytes_per_element == 3  # 2 in + 1 out
        assert host_profile("if_else", 8).bytes_per_element == 4

    def test_invalid_platform_rejected(self):
        with pytest.raises(ConfigError):
            HostPlatform(name="bad", peak_bw_gbps=10,
                         sustained_bw_fraction=0.0, n_cores=1,
                         simd_lanes_per_core=1, freq_ghz=1,
                         dram_pj_per_bit=1, core_pj_per_op=1)


class TestPimModel:
    def test_throughput_scales_linearly_with_banks(self):
        system = PimSystemModel.paper()
        program = compile_cached("add", 32)
        one = system.measure(program, n_banks=1)
        sixteen = system.measure(program, n_banks=16)
        assert sixteen.throughput_gops == pytest.approx(
            16 * one.throughput_gops)
        # Per-element energy is bank-count invariant.
        assert sixteen.energy_nj_per_element == pytest.approx(
            one.energy_nj_per_element)

    def test_simdram_beats_ambit_throughput(self):
        system = PimSystemModel.paper()
        simdram = system.measure(compile_cached("add", 32, "simdram"), 1)
        ambit = system.measure(compile_cached("add", 32, "ambit"), 1)
        ratio = simdram.throughput_gops / ambit.throughput_gops
        assert 1.5 < ratio < 5.1  # the paper's reported band

    def test_platform_labels(self):
        system = PimSystemModel.paper()
        assert system.measure(
            compile_cached("add", 8, "simdram"), 4).platform == "SIMDRAM:4"
        assert system.measure(
            compile_cached("add", 8, "ambit"), 1).platform == "Ambit:1"

    def test_bad_bank_count_rejected(self):
        system = PimSystemModel.paper()
        with pytest.raises(ConfigError):
            system.measure(compile_cached("add", 8), 0)

    def test_measure_all_platforms_composition(self):
        results = measure_all_platforms("add", 8)
        names = [m.platform for m in results]
        assert names == ["CPU", "GPU", "Ambit:1", "SIMDRAM:1",
                         "SIMDRAM:4", "SIMDRAM:16"]

    def test_simdram_more_energy_efficient_than_hosts(self):
        """The headline energy claim holds for a cheap wide op."""
        results = {m.platform: m for m in measure_all_platforms("add", 8)}
        assert results["SIMDRAM:16"].energy_nj_per_element < \
            results["CPU"].energy_nj_per_element
        assert results["SIMDRAM:16"].energy_nj_per_element < \
            results["GPU"].energy_nj_per_element


class TestArea:
    def test_dram_overhead_below_one_percent(self):
        report = area_report()
        assert report.dram_total_percent < 1.0

    def test_controller_units_tiny(self):
        report = area_report()
        assert report.controller_percent_of_cpu < 0.1
        assert report.controller_total_mm2 == pytest.approx(
            report.control_unit_mm2 + report.transposition_unit_mm2)

    def test_smaller_subarrays_cost_more(self):
        small_rows = area_report(DramGeometry(data_rows=502))
        large_rows = area_report(DramGeometry(data_rows=1014))
        assert small_rows.dram_total_percent > \
            large_rows.dram_total_percent


class TestPagedMeasure:
    """The paging-aware model: spill/fill traffic degrades throughput
    and adds channel I/O energy, and vanishes at zero traffic."""

    def test_zero_traffic_reduces_to_measure(self):
        system = PimSystemModel.paper()
        program = compile_cached("add", 8)
        base = system.measure(program, n_banks=4)
        paged = system.measure_paged(program, n_banks=4)
        assert paged.platform == "SIMDRAM:4:paged"
        assert paged.throughput_gops == pytest.approx(
            base.throughput_gops)
        assert paged.energy_nj_per_element == pytest.approx(
            base.energy_nj_per_element)

    def test_traffic_monotonically_degrades(self):
        system = PimSystemModel.paper()
        program = compile_cached("add", 8)
        sweeps = [system.measure_paged(program, n_banks=4,
                                       spill_bits_per_element=bits,
                                       fill_bits_per_element=bits)
                  for bits in (0, 8, 64)]
        assert (sweeps[0].throughput_gops > sweeps[1].throughput_gops
                > sweeps[2].throughput_gops)
        assert (sweeps[0].energy_nj_per_element
                < sweeps[1].energy_nj_per_element
                < sweeps[2].energy_nj_per_element)

    def test_negative_traffic_rejected(self):
        system = PimSystemModel.paper()
        program = compile_cached("add", 8)
        with pytest.raises(ConfigError):
            system.measure_paged(program, spill_bits_per_element=-1)

    def test_per_element_energy_is_bank_count_invariant(self):
        """Like measure(): each element pays for its own paging bits,
        regardless of how many banks participate."""
        system = PimSystemModel.paper()
        program = compile_cached("add", 8)
        one = system.measure_paged(program, n_banks=1,
                                   spill_bits_per_element=8,
                                   fill_bits_per_element=8)
        four = system.measure_paged(program, n_banks=4,
                                    spill_bits_per_element=8,
                                    fill_bits_per_element=8)
        assert one.energy_nj_per_element == pytest.approx(
            four.energy_nj_per_element)
