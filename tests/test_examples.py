"""Smoke tests: every example script must run green end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship six
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(path):
    result = subprocess.run(
        [sys.executable, str(path)], capture_output=True, text=True,
        timeout=600)
    assert result.returncode == 0, (
        f"{path.name} failed:\n{result.stdout}\n{result.stderr}")
    assert result.stdout.strip(), f"{path.name} printed nothing"
