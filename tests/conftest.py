"""Shared fixtures and helpers for the SIMDRAM reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

# Registers the ci/dev/thorough hypothesis profiles at collection time
# (before any test module loads); see that module for the policy.
import hypothesis_profiles  # noqa: F401
from repro.core.framework import Simdram, SimdramConfig
from repro.dram.geometry import DramGeometry
from repro.dram.subarray import Subarray


# ----------------------------------------------------------------------
# flight-recorder postmortems for failed tests
# ----------------------------------------------------------------------
#: Cap the number of dumps per run: a cascading failure (one broken
#: layer failing hundreds of tests) must not write hundreds of files.
_MAX_FLIGHTREC_DUMPS = 20
_flightrec_dumps = 0


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """On a call-phase failure, dump the in-process flight recorder to
    ``.flightrec/`` (CI uploads the directory as a ``flightrec-<sha>``
    artifact) and point at the file from the test report."""
    outcome = yield
    report = outcome.get_result()
    global _flightrec_dumps
    if (report.when != "call" or not report.failed
            or _flightrec_dumps >= _MAX_FLIGHTREC_DUMPS):
        return
    _flightrec_dumps += 1
    from repro.obs.flightrec import postmortem
    path = postmortem(f"test failed: {item.nodeid}")
    if path:
        report.sections.append(
            ("flight recorder", f"postmortem written to {path}"))


@pytest.fixture
def small_geometry() -> DramGeometry:
    """A tiny subarray: fast, but large enough for 16-bit µPrograms."""
    return DramGeometry.sim_small(cols=32, data_rows=512, banks=2)


@pytest.fixture
def subarray(small_geometry) -> Subarray:
    """A zero-initialized small subarray."""
    return Subarray(small_geometry)


@pytest.fixture
def random_subarray(small_geometry) -> Subarray:
    """A subarray with random power-up contents (catches programs that
    rely on residual state)."""
    return Subarray(small_geometry, rng=np.random.default_rng(1234))


@pytest.fixture
def sim() -> Simdram:
    """A small end-to-end Simdram system (2 banks x 64 lanes)."""
    config = SimdramConfig(
        geometry=DramGeometry.sim_small(cols=64, data_rows=768, banks=2))
    return Simdram(config, seed=7)


def rand_bits(rng: np.random.Generator, n: int) -> np.ndarray:
    """Random boolean row of length ``n``."""
    return rng.integers(0, 2, n).astype(bool)


def edge_and_random_values(rng: np.random.Generator, width: int,
                           n: int) -> np.ndarray:
    """Input vectors mixing edge cases with random values."""
    edges = np.array([0, 1, (1 << width) - 1, 1 << (width - 1),
                      (1 << (width - 1)) - 1], dtype=np.int64)
    edges = edges[edges < (1 << width)]
    random_part = rng.integers(0, 1 << width, max(0, n - len(edges)))
    values = np.concatenate([edges, random_part])[:n]
    return values.astype(np.int64)
