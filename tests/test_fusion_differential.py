"""Property-based differential suite for fused expression kernels.

Hypothesis generates random expression DAGs (depth <= 4, operations
drawn from the catalog) at widths {4, 8, 16} and checks, for every DAG:

* the fused kernel's output is bit-identical on **both** execution
  engines (vectorized and per-bank);
* both equal the step-by-step ``run()`` pipeline (one catalog µProgram
  per DAG node, intermediates materialized in named row blocks);
* both equal the numpy golden model composed over the DAG;
* the fused plan issues strictly fewer operand-row copies and strictly
  fewer vertical-object announcements (transposition-unit traffic) than
  the unfused pipeline whenever there is anything to fuse (>= 2 ops);
* no row-block leaks: the allocator's free-row count returns to its
  pre-example value.

Deterministic tests pin the PR's acceptance pipeline (mul->add->relu,
8-bit, 16 banks), multi-output stitching, cache identity and the
fused-input ISA limit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from hypothesis_profiles import scaled_examples
from repro.core import expr as E
from repro.core.expr import analyze, dag_hash, input_names, n_ops, post_order
from repro.core.framework import Simdram, SimdramConfig
from repro.core.fuse import MAX_FUSED_INPUTS, compile_expr, compile_multi
from repro.core.operations import get_operation
from repro.dram.geometry import DramGeometry
from repro.errors import OperationError
from repro.exec.layout import RowLayout
from repro.isa.instructions import BbopKind
from repro.uprog.uops import INPUT_SPACES, Space
from repro.exec.engines import list_engines

#: Every engine available in this process, per-bank baseline included.
ALL_ENGINES = tuple(list_engines(available_only=True))

WIDTHS = (4, 8, 16)
LEAF_NAMES = ("x", "y", "z")

#: One simulator shared across hypothesis examples so the per-operation
#: compile caches stay warm (examples only pay for the fused compile).
_SHARED_SIM: Simdram | None = None


def shared_sim() -> Simdram:
    global _SHARED_SIM
    if _SHARED_SIM is None:
        _SHARED_SIM = Simdram(SimdramConfig(
            geometry=DramGeometry.sim_small(cols=32, data_rows=768,
                                            banks=2)), seed=11)
    return _SHARED_SIM


# ---------------------------------------------------------------------------
# random DAG strategies (width-legal by construction)
# ---------------------------------------------------------------------------
def w_unary_ops(width: int) -> list[str]:
    return ["abs", "relu"]


def w_binary_ops(width: int) -> list[str]:
    ops = ["add", "sub", "max", "min", "add_sat"]
    if width <= 8:  # the 16-bit multiplier is compile-heavy; keep CI fast
        ops.append("mul")
    return ops


BIT_BINARY_OPS = ("eq", "ne", "gt", "ge", "lt", "le", "gt_u")
BIT_UNARY_OPS = ("and_red", "or_red", "xor_red")


def w_leaf(width: int) -> st.SearchStrategy:
    return st.one_of(
        st.sampled_from(LEAF_NAMES).map(E.inp),
        st.integers(0, (1 << width) - 1).map(E.const),
    )


def w_node(width: int, depth: int,
           leaf_ok: bool = True) -> st.SearchStrategy:
    """Strategy for a width-typed expression of depth <= ``depth``."""
    if depth <= 0:
        return w_leaf(width)
    child = w_node(width, depth - 1)
    options = []
    if leaf_ok:
        options.append(w_leaf(width))
    options.append(st.tuples(
        st.sampled_from(w_unary_ops(width)), child
    ).map(lambda t: E.op(t[0], t[1])))
    options.append(st.tuples(
        st.sampled_from(w_binary_ops(width)), child, child
    ).map(lambda t: E.op(t[0], t[1], t[2])))
    options.append(st.tuples(
        bit_node(width, depth - 1), child, child
    ).map(lambda t: E.op("if_else", t[0], t[1], t[2])))
    return st.one_of(options)


def bit_node(width: int, depth: int) -> st.SearchStrategy:
    """Strategy for a 1-bit-typed expression (comparison/reduction)."""
    child = w_node(width, max(depth - 1, 0))
    return st.one_of(
        st.tuples(st.sampled_from(BIT_BINARY_OPS), child, child
                  ).map(lambda t: E.op(t[0], t[1], t[2])),
        st.tuples(st.sampled_from(BIT_UNARY_OPS), child
                  ).map(lambda t: E.op(t[0], t[1])),
    )


def dags(width: int) -> st.SearchStrategy:
    return st.integers(1, 4).flatmap(
        lambda depth: w_node(width, depth, leaf_ok=False))


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
def read_unsigned(sim: Simdram, array) -> np.ndarray:
    return sim.transposer.vertical_to_host(
        sim.module, array.block, array.n_elements, array.width,
        signed=False)


def announces(sim: Simdram) -> int:
    return sum(1 for instr in sim.issued
               if instr.kind is BbopKind.TRSP_INIT)


def run_sequential(sim: Simdram, root, arrays, width: int):
    """Execute the DAG one catalog ``run()`` per node.

    Returns (unsigned result, per-op µPrograms executed in order).
    Every intermediate (and every broadcast constant) is materialized
    in a named row block — the pre-fusion execution model.
    """
    n = next(iter(arrays.values())).n_elements
    values: dict = {}
    const_arrays: dict = {}
    created = []
    programs = []
    analysis = analyze(root, width)

    def operand_for(child, needed_width):
        if child.kind == "input":
            return arrays[child.name]
        if child.kind == "const":
            key = (child.value, needed_width)
            if key not in const_arrays:
                arr = sim.fill(child.value, n, needed_width)
                const_arrays[key] = arr
                created.append(arr)
            return const_arrays[key]
        return values[child]

    try:
        for node in post_order(root):
            if node.kind != "op":
                continue
            spec = get_operation(node.op)
            operands = [operand_for(child, cw) for child, cw
                        in zip(node.children, spec.in_widths(width))]
            out = sim.run(node.op, *operands)
            created.append(out)
            values[node] = out
            programs.append(sim.compile(node.op, width))
        result = read_unsigned(sim, values[root])
    finally:
        for arr in created:
            arr.free()
    del analysis
    return result, programs


def differential_check(sim: Simdram, root, width: int,
                       rng: np.random.Generator) -> None:
    """The core fused-vs-unfused-vs-golden comparison for one DAG."""
    free_before = sim._allocator.free_rows()
    leaves = input_names(root)
    n = sim.module.lanes
    analysis = analyze(root, width)
    feeds_np = {name: rng.integers(0, 1 << analysis.input_widths[name], n)
                for name in leaves}
    golden = E.golden(root, feeds_np, width)

    arrays = {name: sim.array(values, analysis.input_widths[name])
              for name, values in feeds_np.items()}
    try:
        fused_results = {}
        fused_announces = {}
        for engine in ALL_ENGINES:
            before = announces(sim)
            out = sim.run_expr(root, arrays, width=width, engine=engine)
            fused_announces[engine] = announces(sim) - before
            fused_results[engine] = read_unsigned(sim, out)
            out.free()

        before = announces(sim)
        sequential, programs = run_sequential(sim, root, arrays, width)
        sequential_announces = announces(sim) - before

        for engine, values in fused_results.items():
            assert np.array_equal(values, golden), \
                f"{engine} fused != golden for {root!r} @ {width}"
        assert np.array_equal(sequential, golden), \
            f"sequential != golden for {root!r} @ {width}"

        kernel = sim.compile_expr(root, width)
        if n_ops(root) >= 2:
            # Fusion's structural claim: strictly fewer row copies into
            # and out of named operand row blocks...
            fused_copies = kernel.program.n_operand_copies
            unfused_copies = sum(p.n_operand_copies for p in programs)
            assert fused_copies < unfused_copies, (
                f"{root!r} @ {width}: fused operand-row copies "
                f"{fused_copies} !< unfused {unfused_copies}")
            # ... and strictly fewer transposition-unit announcements
            # (one output object vs. one per materialized intermediate).
            assert fused_announces["vectorized"] < sequential_announces, (
                f"{root!r} @ {width}: fused announces "
                f"{fused_announces['vectorized']} !< sequential "
                f"{sequential_announces}")
        assert fused_announces["vectorized"] == 1  # the output, only
    finally:
        for arr in arrays.values():
            arr.free()
    assert sim._allocator.free_rows() == free_before, \
        f"row leak after {root!r} @ {width}"


# ---------------------------------------------------------------------------
# the property
# ---------------------------------------------------------------------------
class TestFusedDifferential:
    # Example budgets are calibrated for the ``dev`` hypothesis profile
    # and scale with ``--hypothesis-profile`` (ci shrinks, thorough
    # grows) — see conftest.scaled_examples.
    @settings(max_examples=scaled_examples(20), deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(root=dags(4), data=st.data())
    def test_width_4(self, root, data):
        self._check(root, 4, data)

    @settings(max_examples=scaled_examples(12), deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(root=dags(8), data=st.data())
    def test_width_8(self, root, data):
        self._check(root, 8, data)

    @settings(max_examples=scaled_examples(6), deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(root=dags(16), data=st.data())
    def test_width_16(self, root, data):
        self._check(root, 16, data)

    def _check(self, root, width, data):
        assume(input_names(root))  # all-constant DAGs don't execute
        try:
            analyze(root, width)
        except OperationError:
            # e.g. one input leaf consumed at two widths (select vs data)
            assume(False)
        seed = data.draw(st.integers(0, 2**32 - 1))
        differential_check(shared_sim(), root, width,
                           np.random.default_rng(seed))


# ---------------------------------------------------------------------------
# deterministic anchors
# ---------------------------------------------------------------------------
def mad_relu_root():
    return E.relu(E.add(E.mul(E.inp("x"), E.inp("w")), E.inp("b")))


class TestAcceptancePipeline:
    """The PR's acceptance pipeline: mul->add->relu, 8-bit, 16 banks."""

    @pytest.fixture(scope="class")
    def sim16(self):
        return Simdram(SimdramConfig(
            geometry=DramGeometry.sim_small(cols=64, data_rows=768,
                                            banks=16)), seed=13)

    def test_bit_identical_on_both_engines(self, sim16):
        sim = sim16
        rng = np.random.default_rng(21)
        feeds_np = {name: rng.integers(0, 256, sim.module.lanes)
                    for name in ("x", "w", "b")}
        root = mad_relu_root()
        golden = E.golden(root, feeds_np, 8)
        arrays = {name: sim.array(v, 8) for name, v in feeds_np.items()}

        for engine in ALL_ENGINES:
            out = sim.run_expr(root, arrays, width=8, engine=engine)
            assert np.array_equal(read_unsigned(sim, out), golden)
            out.free()

        product = sim.run("mul", arrays["x"], arrays["w"])
        total = sim.run("add", product, arrays["b"])
        result = sim.run("relu", total)
        assert np.array_equal(read_unsigned(sim, result), golden)
        for arr in (product, total, result, *arrays.values()):
            arr.free()

    def test_fewer_operand_copies_and_zero_intermediate_transposes(
            self, sim16):
        sim = sim16
        kernel = sim.compile_expr(mad_relu_root(), 8)
        unfused = [sim.compile(op, 8) for op in ("mul", "add", "relu")]
        assert kernel.program.n_operand_copies < sum(
            p.n_operand_copies for p in unfused)

        # One fused dispatch announces exactly one vertical object (the
        # output) and moves zero bits over the host channel.
        rng = np.random.default_rng(22)
        arrays = {name: sim.array(rng.integers(0, 256, 8), 8)
                  for name in ("x", "w", "b")}
        stats_before = sim.module.total_stats()
        issued_before = announces(sim)
        out = sim.run_expr(mad_relu_root(), arrays, width=8)
        stats_after = sim.module.total_stats()
        assert announces(sim) - issued_before == 1
        assert stats_after.host_bits_read == stats_before.host_bits_read
        assert (stats_after.host_bits_written
                == stats_before.host_bits_written)
        for arr in (out, *arrays.values()):
            arr.free()

    def test_fused_wins_commands_with_constant_tap(self, sim16):
        """The cnn dot-product tap (constant weight) must fuse to a
        measurably cheaper command stream than the generic pipeline."""
        sim = sim16
        root = E.relu(E.add(E.mul(E.inp("x"), E.const(37)), E.inp("b")))
        kernel = sim.compile_expr(root, 8)
        unfused = sum(sim.compile(op, 8).n_commands
                      for op in ("mul", "add", "relu"))
        assert kernel.program.n_commands * 3 < unfused * 2  # >= 1.5x


class TestFusedKernelIdentity:
    def test_compile_cache_hits_on_structural_equality(self):
        sim = shared_sim()
        k1 = sim.compile_expr(mad_relu_root(), 8)
        k2 = sim.compile_expr(mad_relu_root(), 8)
        assert k1 is k2

    def test_dag_hash_stable_and_recorded(self):
        root = mad_relu_root()
        kernel = compile_expr(root, 4)
        assert kernel.dag_hash == dag_hash(root)
        assert kernel.program.source_hash == dag_hash(root)
        assert kernel.op_name == f"fused_{dag_hash(root)}"

    def test_distinct_dags_distinct_hashes(self):
        a = E.add(E.inp("x"), E.inp("y"))
        b = E.add(E.inp("y"), E.inp("x"))
        c = E.add(E.inp("x"), E.const(1))
        hashes = {dag_hash(a), dag_hash(b), dag_hash(c)}
        assert len(hashes) == 3

    def test_plan_cache_reused_across_map_expr_batches(self):
        sim = Simdram(SimdramConfig(
            geometry=DramGeometry.sim_small(cols=32, data_rows=768,
                                            banks=2)), seed=3)
        root = E.add(E.inp("x"), E.const(3))
        values = np.arange(sim.module.lanes * 3)
        misses_before = sim.control.plan_cache_misses
        got = sim.map_expr(root, {"x": values}, width=8)
        assert np.array_equal(got, (values + 3) % 256)
        assert sim.control.plan_cache_misses == misses_before + 1
        assert sim.control.plan_cache_hits >= 2  # batches 2 and 3


class TestMultiOutputStitching:
    def test_two_roots_one_uprogram(self):
        width = 8
        x, y = E.inp("x"), E.inp("y")
        roots = {"total": E.add(x, y), "delta": E.sub(x, y)}
        kernel = compile_multi(roots, width)
        program, slices = kernel.program, kernel.slices
        assert kernel.total_out_width == 16
        assert kernel.signed == {"total": False, "delta": False}
        assert set(slices) == {"total", "delta"}
        widths = {name: w for name, (_, w) in slices.items()}
        assert widths == {"total": 8, "delta": 8}
        offsets = sorted(off for off, _ in slices.values())
        assert offsets == [0, 8]
        assert program.output.width == 16

        sim = Simdram(SimdramConfig(
            geometry=DramGeometry.sim_small(cols=32, data_rows=768,
                                            banks=2)), seed=5)
        rng = np.random.default_rng(4)
        xv = rng.integers(0, 256, sim.module.lanes)
        yv = rng.integers(0, 256, sim.module.lanes)
        ax = sim.array(xv, 8)
        ay = sim.array(yv, 8)
        out = sim.empty(sim.module.lanes, program.output.width)
        bases = {Space.OUTPUT: out.block.base,
                 INPUT_SPACES[0]: ax.block.base,
                 INPUT_SPACES[1]: ay.block.base}
        temp = (sim._allocator.alloc(program.n_temp_rows)
                if program.n_temp_rows else None)
        if temp is not None:
            bases[Space.TEMP] = temp.base
        sim.control.install(program)
        sim.control.execute_on_module(program, sim.module,
                                      RowLayout(bases))
        from repro.exec.memory import RowBlock
        for name, expected in (("total", (xv + yv) % 256),
                               ("delta", (xv - yv) % 256)):
            offset, w = slices[name]
            view = RowBlock(out.block.base + offset, w)
            got = sim.transposer.vertical_to_host(
                sim.module, view, sim.module.lanes, w)
            assert np.array_equal(got, expected), name


class TestFusionErrors:
    def test_too_many_inputs_rejected(self):
        root = E.add(E.add(E.inp("a"), E.inp("b")),
                     E.add(E.inp("c"), E.inp("d")))
        with pytest.raises(OperationError,
                           match=f"at most {MAX_FUSED_INPUTS}"):
            compile_expr(root, 8)

    def test_all_constant_dag_rejected(self):
        with pytest.raises(OperationError, match="input leaf"):
            compile_expr(E.add(E.const(1), E.const(2)), 8)

    def test_leaf_root_rejected(self):
        with pytest.raises(OperationError, match="root"):
            compile_expr(E.inp("x"), 8)

    def test_const_reused_at_two_widths_is_legal(self):
        """Constants fold into the MIG per consumer, so one const value
        may feed consumers of different widths (here: a 1-bit if_else
        select and an 8-bit data operand)."""
        sim = shared_sim()
        one = E.const(1)
        root = E.add(E.if_else(one, E.inp("x"), E.inp("y")), one)
        rng = np.random.default_rng(12)
        feeds_np = {"x": rng.integers(0, 256, 8),
                    "y": rng.integers(0, 256, 8)}
        arrays = {k: sim.array(v, 8) for k, v in feeds_np.items()}
        out = sim.run_expr(root, arrays, width=8)
        assert np.array_equal(read_unsigned(sim, out),
                              E.golden(root, feeds_np, 8))
        assert np.array_equal(read_unsigned(sim, out),
                              (feeds_np["x"] + 1) % 256)
        for arr in (out, *arrays.values()):
            arr.free()

    def test_width_mismatch_across_consumers_rejected(self):
        # x is consumed as if_else's 1-bit select and as add's w-bit
        # operand: no single operand width satisfies both.
        x = E.inp("x")
        root = E.add(E.if_else(x, E.inp("y"), E.inp("y")), x)
        with pytest.raises(OperationError, match="consumed at"):
            compile_expr(root, 8)

    def test_wrong_arity_rejected(self):
        with pytest.raises(OperationError, match="takes 2 operands"):
            E.op("add", E.inp("x"))

    def test_unknown_attr_raises(self):
        with pytest.raises(AttributeError):
            E.definitely_not_an_operation  # noqa: B018

    def test_ambit_backend_matches_golden(self):
        sim = shared_sim()
        rng = np.random.default_rng(6)
        root = E.add(E.mul(E.inp("x"), E.inp("y")), E.const(7))
        feeds_np = {"x": rng.integers(0, 16, 8),
                    "y": rng.integers(0, 16, 8)}
        arrays = {k: sim.array(v, 4) for k, v in feeds_np.items()}
        out = sim.run_expr(root, arrays, width=4, backend="ambit")
        got = read_unsigned(sim, out)
        assert np.array_equal(got, E.golden(root, feeds_np, 4))
        for arr in (out, *arrays.values()):
            arr.free()
