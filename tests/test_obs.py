"""Tests for the observability subsystem (PR "end-to-end tracing").

Three tiers:

* pure units — clock shim, span trees, noop fast path, tracer
  sampling, the metrics registry, and the Chrome/Prometheus
  exporters, all with a fake clock and no simulator;
* in-process integration — a traced :class:`SimdramService` over a
  :class:`SimdramCluster`, asserting every completed request yields
  one rooted tree crossing the documented pipeline stages;
* multi-process integration — a traced service over a
  :class:`ReplicaRouter`, asserting (a) spans recorded *inside* a
  replica child process land in the parent's trees, and (b) the
  kill-one failover drill leaves a ``retry`` span whose failed
  ``replica.transport`` child names the dead replica.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.core.framework import SimdramConfig
from repro.dram.geometry import DramGeometry
from repro.obs import clock
from repro.obs.export import (chrome_trace_dict, chrome_trace_events,
                              write_chrome_trace)
from repro.obs.metrics import (DEFAULT_BUCKETS, MetricsRegistry, Sample,
                               get_registry)
from repro.obs.tracing import (MAX_CHILDREN, NOOP_SPAN, Span, Tracer,
                               current_span, get_tracer, span, use_span)
from repro.runtime import SimdramCluster
from repro.runtime.replica import ReplicaHandle
from repro.serve import ServeConfig, SimdramService
from repro.serve.router import ReplicaRouter


def small_config() -> SimdramConfig:
    return SimdramConfig(geometry=DramGeometry.sim_small(
        cols=32, data_rows=512, banks=2))


@pytest.fixture
def fake_clock():
    """Install a manually-stepped clock; restore the real one after."""
    state = {"t": 100.0}

    def advance(dt: float) -> None:
        state["t"] += dt

    clock.set_source(lambda: state["t"])
    try:
        yield advance
    finally:
        clock.set_source(None)


class TestClock:
    def test_now_is_monotonic_nondecreasing(self):
        a = clock.now()
        b = clock.now()
        assert b >= a

    def test_fake_source_and_restore(self, fake_clock):
        t0 = clock.now()
        fake_clock(2.5)
        assert clock.now() == pytest.approx(t0 + 2.5)

    def test_wall_is_epoch_seconds(self):
        assert abs(clock.wall() - time.time()) < 5.0


class TestSpan:
    def test_context_manager_records_duration(self, fake_clock):
        with Span("root") as root:
            fake_clock(0.25)
        assert root.finished
        assert root.duration == pytest.approx(0.25)
        assert root.status == "ok"

    def test_explicit_start_finish_idempotent(self, fake_clock):
        s = Span("root")
        fake_clock(1.0)
        s.finish()
        t1 = s.t1
        fake_clock(1.0)
        s.finish()   # second finish is a no-op
        assert s.t1 == t1

    def test_children_link_both_ways(self):
        root = Span("root")
        child = root.child("stage", k=1)
        assert child.parent is root
        assert child in root.children
        assert child.attrs["k"] == 1

    def test_fail_sets_status_without_closing(self):
        s = Span("root")
        s.fail(ValueError("boom"))
        assert s.status == "error"
        assert not s.finished
        s.finish()
        assert s.finished
        assert "boom" in s.error

    def test_finish_with_error(self):
        s = Span("root").finish("died")
        assert s.status == "error" and s.error == "died"

    def test_exception_inside_with_marks_error(self):
        with pytest.raises(RuntimeError):
            with Span("root") as s:
                raise RuntimeError("bad")
        assert s.status == "error"

    def test_set_updates_attrs(self):
        s = Span("root").set(replica=3)
        assert s.attrs["replica"] == 3

    def test_adopt_reparents(self):
        a, b = Span("a"), Span("b")
        orphan = b.child("stage")
        b.children.remove(orphan)
        a.adopt(orphan)
        assert orphan.parent is a and orphan in a.children

    def test_dict_round_trip_preserves_tree(self, fake_clock):
        with Span("root", {"tenant": "t"}) as root:
            with root.child("stage", op="add") as stage:
                fake_clock(0.5)
                stage.child("leaf").finish("oops")
        clone = Span.from_dict(root.to_dict())
        assert clone.stage_names() == root.stage_names()
        assert clone.find("stage").attrs["op"] == "add"
        leaf = clone.find("leaf")
        assert leaf.status == "error" and leaf.error == "oops"
        assert leaf.parent.name == "stage"
        assert clone.find("stage").duration == pytest.approx(0.5)

    def test_copy_tree_is_independent(self):
        root = Span("root")
        root.child("stage").finish()
        root.finish()
        clone = root.copy_tree()
        clone.children[0].name = "mutated"
        assert root.children[0].name == "stage"

    def test_walk_and_find_all(self):
        root = Span("root")
        root.child("x").finish()
        root.child("x").finish()
        root.child("y").finish()
        assert len(list(root.walk())) == 4
        assert len(root.find_all("x")) == 2
        assert root.find("missing") is None

    def test_child_cap_counts_drops(self):
        root = Span("root")
        for _ in range(MAX_CHILDREN + 5):
            root.child("c")
        assert len(root.children) == MAX_CHILDREN
        assert root.n_dropped == 5


class TestNoopFastPath:
    def test_span_helper_returns_singleton_when_untraced(self):
        assert span("anything", k=1) is NOOP_SPAN

    def test_noop_absorbs_the_full_api(self):
        s = NOOP_SPAN
        assert not s.recording
        assert s.child("x") is s
        assert s.set(a=1) is s
        assert s.fail("e") is s
        assert s.finish() is s
        assert s.duration == 0.0
        with s as inner:
            assert inner is s

    def test_noop_adopt_returns_argument(self):
        real = Span("real")
        assert NOOP_SPAN.adopt(real) is real

    def test_use_span_restores_previous(self):
        outer = Span("outer")
        with use_span(outer):
            assert current_span() is outer
            with use_span(NOOP_SPAN):
                assert current_span() is NOOP_SPAN
            assert current_span() is outer
        assert current_span() is NOOP_SPAN

    def test_ambient_child_via_helper(self):
        root = Span("root")
        with use_span(root):
            child = span("stage")
        assert child.parent is root


class TestTracer:
    def test_disabled_returns_noop(self):
        tracer = Tracer(enabled=False)
        assert tracer.trace("r") is NOOP_SPAN
        assert tracer.start_detached("d") is NOOP_SPAN
        assert tracer.finished_traces() == []

    def test_finished_roots_buffered(self):
        tracer = Tracer(enabled=True)
        tracer.trace("r", i=0).finish()
        tracer.trace("r", i=1).finish()
        roots = tracer.drain()
        assert [r.attrs["i"] for r in roots] == [0, 1]
        assert tracer.finished_traces() == []

    def test_buffer_bounded_by_max_traces(self):
        tracer = Tracer(enabled=True, max_traces=3)
        for i in range(10):
            tracer.trace("r", i=i).finish()
        assert [r.attrs["i"] for r in tracer.finished_traces()] \
            == [7, 8, 9]

    def test_sampling_is_exactly_periodic(self):
        tracer = Tracer(enabled=True, sample_rate=0.25)
        kept = [tracer.trace("r") is not NOOP_SPAN for _ in range(12)]
        assert kept.count(True) == 3
        assert kept[3] and kept[7] and kept[11]
        assert tracer.n_unsampled == 9

    def test_bad_sample_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)

    def test_start_detached_not_buffered(self):
        tracer = Tracer(enabled=True)
        tracer.start_detached("dispatch").finish()
        assert tracer.finished_traces() == []

    def test_process_global_tracer_default_off(self):
        assert get_tracer().enabled is False


class TestMetricsRegistry:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_reqs_total", "requests")
        c.inc()
        c.inc(4)
        reg.gauge("repro_depth", "queue depth").set(7)
        by_name = {s.name: s for s in reg.collect()}
        assert by_name["repro_reqs_total"].value == 5
        assert by_name["repro_depth"].value == 7

    def test_labeled_series_within_one_family(self):
        reg = MetricsRegistry()
        c = reg.counter("c", "h")
        assert reg.counter("c") is c   # get-or-create by name
        c.inc(2, op="add")
        c.inc(1, op="sub")
        assert c.value(op="add") == 2
        values = {s.labels: s.value for s in c.samples()}
        assert values[(("op", "add"),)] == 2
        assert values[(("op", "sub"),)] == 1

    def test_name_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m", "h")
        with pytest.raises(ValueError):
            reg.gauge("m", "h")

    def test_counters_only_go_up(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_histogram_buckets_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_lat_seconds", "latency",
                          buckets=(0.001, 0.01, 0.1))
        for v in (0.0005, 0.005, 0.05, 5.0):
            h.observe(v)
        rows = {(s.name, dict(s.labels).get("le")): s.value
                for s in h.samples()}
        assert rows[("repro_lat_seconds_bucket", "0.001")] == 1
        assert rows[("repro_lat_seconds_bucket", "0.01")] == 2
        assert rows[("repro_lat_seconds_bucket", "0.1")] == 3
        assert rows[("repro_lat_seconds_bucket", "+Inf")] == 4
        assert rows[("repro_lat_seconds_count", None)] == 4
        assert rows[("repro_lat_seconds_sum", None)] \
            == pytest.approx(5.0555)

    def test_default_buckets_are_exponential(self):
        ratios = [b / a for a, b in zip(DEFAULT_BUCKETS,
                                        DEFAULT_BUCKETS[1:])]
        assert all(r == pytest.approx(2.0) for r in ratios)

    def test_collector_scraped_at_collect_time(self):
        reg = MetricsRegistry()
        state = {"v": 1}
        reg.register_collector(
            lambda: [Sample("repro_live", state["v"], (), "gauge", "x")],
            name="live")
        assert [s.value for s in reg.collect()
                if s.name == "repro_live"] == [1]
        state["v"] = 2
        assert [s.value for s in reg.collect()
                if s.name == "repro_live"] == [2]

    def test_collector_replaced_by_name_and_unregistered(self):
        reg = MetricsRegistry()
        reg.register_collector(
            lambda: [Sample("a", 1, (), "gauge", "")], name="x")
        reg.register_collector(
            lambda: [Sample("b", 2, (), "gauge", "")], name="x")
        names = {s.name for s in reg.collect()}
        assert "b" in names and "a" not in names
        reg.unregister_collector("x")
        assert {s.name for s in reg.collect()} == set()

    def test_broken_collector_reported_not_raised(self):
        reg = MetricsRegistry()

        def boom():
            raise RuntimeError("scrape failed")

        reg.register_collector(boom, name="broken")
        samples = reg.collect()
        errors = [s for s in samples
                  if s.name == "repro_collector_errors_total"]
        assert errors and errors[0].value >= 1

    def test_prometheus_text_layout(self):
        reg = MetricsRegistry()
        reg.counter("repro_reqs_total", "served requests") \
            .inc(3, tenant="alpha")
        reg.histogram("repro_lat_seconds", "latency",
                      buckets=(0.5,)).observe(0.1)
        text = reg.prometheus_text()
        assert "# HELP repro_reqs_total served requests" in text
        assert "# TYPE repro_reqs_total counter" in text
        assert 'repro_reqs_total{tenant="alpha"} 3' in text
        assert "# TYPE repro_lat_seconds histogram" in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 1' in text
        assert text.endswith("\n")

    def test_snapshot_is_json_ready(self):
        reg = MetricsRegistry()
        reg.gauge("g", "h").set(1.5)
        snap = reg.snapshot()
        assert json.loads(json.dumps(snap, default=float))

    def test_untouched_instruments_scrape_zero_valued(self):
        """Schema stability: registered instruments that saw no
        traffic still expose zero-valued series, so a scrape before
        first traffic carries the same metric families as one after
        (dashboards never see families pop into existence)."""
        reg = MetricsRegistry()
        reg.counter("repro_c_total", "c")
        reg.gauge("repro_g", "g")
        reg.histogram("repro_h_seconds", "h", buckets=(0.1,))
        text = reg.prometheus_text()
        assert "repro_c_total 0" in text
        assert "repro_g 0" in text
        assert 'repro_h_seconds_bucket{le="0.1"} 0' in text
        assert 'repro_h_seconds_bucket{le="+Inf"} 0' in text
        assert "repro_h_seconds_count 0" in text
        assert "repro_h_seconds_sum 0" in text
        # First real traffic replaces the zero rows in place.
        reg.counter("repro_c_total").inc(2)
        reg.histogram("repro_h_seconds").observe(0.05)
        text = reg.prometheus_text()
        assert "repro_c_total 2" in text
        assert 'repro_h_seconds_bucket{le="0.1"} 1' in text

    def test_process_global_registry_is_singleton(self):
        assert get_registry() is get_registry()


class TestChromeExport:
    def _tree(self, fake_clock):
        """A request tree with one subtree "shipped" from a replica
        child process: serialized, stamped with the child's pid, and
        re-adopted — exactly what the result-pipe path does."""
        with Span("serve.request", {"tenant": "t"}) as root:
            with root.child("serve.pack"):
                fake_clock(0.010)
            remote = Span("replica.execute", {"proc": "replica-1",
                                              "replica": 1})
            fake_clock(0.005)
            shipped = remote.finish().to_dict()
            shipped["pid"] = os.getpid() + 1   # a different process
            root.adopt(Span.from_dict(shipped))
        return root

    def test_events_are_complete_with_microseconds(self, fake_clock):
        root = self._tree(fake_clock)
        events = chrome_trace_events([root])
        x = {e["name"]: e for e in events if e["ph"] == "X"}
        assert x["serve.request"]["dur"] == pytest.approx(15000)
        assert x["serve.pack"]["dur"] == pytest.approx(10000)
        assert x["serve.pack"]["ts"] >= x["serve.request"]["ts"]
        assert x["serve.request"]["args"]["tenant"] == "t"

    def test_one_track_per_replica_process(self, fake_clock):
        events = chrome_trace_events([self._tree(fake_clock)])
        labels = {e["args"]["name"] for e in events
                  if e["ph"] == "M" and e["name"] == "process_name"}
        assert labels == {"serve", "replica-1"}
        pids = {e["name"]: e["pid"] for e in events if e["ph"] == "X"}
        assert pids["replica.execute"] != pids["serve.pack"]

    def test_write_chrome_trace_counts_trees(self, fake_clock, tmp_path):
        tracer = Tracer(enabled=True)
        for _ in range(3):
            with tracer.trace("serve.request") as root:
                root.child("serve.pack").finish()
        path = tmp_path / "trace.json"
        assert write_chrome_trace(path, tracer) == 3
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert len([e for e in doc["traceEvents"]
                    if e["ph"] == "X"]) == 6

    def test_dict_accepts_span_list(self, fake_clock):
        doc = chrome_trace_dict([self._tree(fake_clock)])
        assert {e["ph"] for e in doc["traceEvents"]} == {"X", "M"}


class TestReplicaRtt:
    def test_rtt_ema_from_ping_pong(self, fake_clock):
        handle = ReplicaHandle(0, process=None, conn=None)
        handle.note_ping(1)
        fake_clock(0.010)
        handle.note_pong(1)
        assert handle.rtt_last_s == pytest.approx(0.010)
        assert handle.rtt_avg_s == pytest.approx(0.010)
        handle.note_ping(2)
        fake_clock(0.030)
        handle.note_pong(2)
        assert handle.rtt_last_s == pytest.approx(0.030)
        assert handle.rtt_avg_s == pytest.approx(0.75 * 0.010
                                                 + 0.25 * 0.030)

    def test_unmatched_pong_ignored(self):
        handle = ReplicaHandle(0, process=None, conn=None)
        handle.note_pong(99)
        assert handle.rtt_last_s is None

    def test_outstanding_pings_bounded(self):
        handle = ReplicaHandle(0, process=None, conn=None)
        for token in range(200):
            handle.note_ping(token)
        assert len(handle._ping_sent_at) <= 64


#: The stages the tentpole requires in every completed request's tree.
PIPELINE_STAGES = ("serve.request", "serve.admit", "serve.pack",
                   "cluster.dispatch", "engine.execute", "serve.scatter")


class TestServiceTracing:
    def test_every_request_yields_one_rooted_tree(self):
        tracer = Tracer(enabled=True)
        with SimdramCluster(1, config=small_config()) as cluster, \
                SimdramService(cluster, ServeConfig(max_wait_s=0.005),
                               tracer=tracer) as service:
            handles = [service.submit("add", [i, i + 1], [1, 2], width=8)
                       for i in range(6)]
            for i, handle in enumerate(handles):
                assert np.array_equal(handle.result(120),
                                      [i + 1, i + 3])
        traces = tracer.drain()
        assert len(traces) == 6
        for root in traces:
            names = set(root.stage_names())
            missing = [s for s in PIPELINE_STAGES if s not in names]
            assert not missing, f"tree lacks stages {missing}: {names}"
            assert all(s.finished for s in root.walk())
            assert root.find("serve.scatter").t1 <= root.t1

    def test_failed_request_traced_as_error(self):
        tracer = Tracer(enabled=True)
        with SimdramCluster(1, config=small_config()) as cluster, \
                SimdramService(cluster, ServeConfig(max_wait_s=0.001),
                               tracer=tracer) as service:
            bad = service.submit("add", [1, 2], [3], width=8)
            assert bad.exception(120) is not None
        roots = tracer.drain()
        assert roots and roots[0].status == "error"

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with SimdramCluster(1, config=small_config()) as cluster, \
                SimdramService(cluster, ServeConfig(max_wait_s=0.001),
                               tracer=tracer) as service:
            assert np.array_equal(
                service.submit("add", [1], [2], width=8).result(120),
                [3])
        assert tracer.finished_traces() == []

    def test_stats_expose_unified_prometheus_text(self):
        registry = MetricsRegistry()
        with SimdramCluster(1, config=small_config()) as cluster, \
                SimdramService(cluster, ServeConfig(max_wait_s=0.001),
                               registry=registry) as service:
            service.submit("add", [1], [2], width=8).result(120)
            text = service.prometheus()
        assert "repro_serve_requests_total" in text
        assert "# TYPE" in text


class TestCrossProcessTracing:
    """One ReplicaRouter session covering both multi-process
    acceptance criteria; process spawns dominate the runtime, so the
    healthy-path check and the kill drill share it."""

    def test_replica_spans_and_retry_drill(self):
        tracer = Tracer(enabled=True)
        rng = np.random.default_rng(7)
        parent_pid = os.getpid()
        with ReplicaRouter(2, config=small_config(),
                           manifest=[("add", 8)]) as router, \
                SimdramService(router, ServeConfig(max_wait_s=0.001),
                               tracer=tracer) as service:
            # -- healthy path: child-process spans ship home --------
            cases = [(rng.integers(0, 128, 64), rng.integers(0, 128, 64))
                     for _ in range(6)]
            handles = [service.submit("add", a, b, width=8)
                       for a, b in cases]
            for (a, b), handle in zip(cases, handles):
                assert np.array_equal(handle.result(120), (a + b) % 256)
            healthy = tracer.drain()
            assert len(healthy) == 6
            for root in healthy:
                transport = root.find("replica.transport")
                assert transport is not None
                execute = root.find("replica.execute")
                assert execute is not None
                assert execute.pid != parent_pid, \
                    "span was not recorded inside the replica process"
                assert execute.parent is transport \
                    or execute.parent.parent is transport
                assert root.find("router.place") is not None

            # -- kill drill: re-homed requests carry a retry span ----
            drill = [(rng.integers(0, 128, 512),
                      rng.integers(0, 128, 512)) for _ in range(20)]
            drill_handles = [service.submit("add", a, b, width=8)
                             for a, b in drill]
            victim = 0
            deadline = time.monotonic() + 30
            while (time.monotonic() < deadline
                   and router.replicas.n_inflight(victim) == 0
                   and not all(h.done() for h in drill_handles)):
                time.sleep(0.001)
            router.kill(victim)
            for (a, b), handle in zip(drill, drill_handles):
                assert np.array_equal(handle.result(120), (a + b) % 256)

            # the router's own Prometheus rendering covers the tier
            text = router.prometheus()
            assert "repro_replica_alive" in text
            assert "repro_router_requeued_total" in text

            retried = [root for root in tracer.drain()
                       if root.find("retry") is not None]
            if router.n_requeued == 0:
                pytest.skip("victim drained before the kill landed")
            assert retried, "re-homed requests produced no retry span"
            for root in retried:
                retry = root.find("retry")
                assert retry.attrs["from_replica"] == victim
                assert victim in retry.attrs["attempts"]
                failed = [c for c in retry.children
                          if c.name == "replica.transport"
                          and c.status == "error"]
                assert failed, \
                    "retry span lacks the dead attempt as failed child"
                assert failed[0].attrs["replica"] == victim
                assert root.status == "ok"


class TestCliObservability:
    def test_stats_prints_prometheus_text(self, capsys):
        from repro.cli import main
        assert main(["stats", "--requests", "6"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_serve_requests_total counter" in out
        assert "repro_serve_request_latency_seconds_bucket" in out

    def test_stats_json_snapshot(self, capsys):
        from repro.cli import main
        assert main(["stats", "--requests", "6", "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert any(k.startswith("repro_") for k in snap)

    def test_stats_trace_out_writes_chrome_trace(self, capsys, tmp_path):
        from repro.cli import main
        path = tmp_path / "stats_trace.json"
        assert main(["stats", "--requests", "6",
                     "--trace-out", str(path)]) == 0
        capsys.readouterr()
        doc = json.loads(path.read_text())
        assert doc["otherData"]["n_traces"] == 6

    def test_serve_demo_trace_out(self, capsys, tmp_path):
        from repro.cli import main
        path = tmp_path / "trace.json"
        assert main(["serve-demo", "--requests", "8",
                     "--trace-out", str(path)]) == 0
        assert "request trees" in capsys.readouterr().out
        doc = json.loads(path.read_text())
        names = {e["name"] for e in doc["traceEvents"]
                 if e["ph"] == "X"}
        assert "serve.request" in names and "engine.execute" in names


class TestLabelEscaping:
    """Prometheus exposition: label values with backslashes, quotes
    and newlines must round-trip per the text-format escaping rules
    (backslash first, then quote, then newline)."""

    def _text_for(self, value: str) -> str:
        registry = MetricsRegistry()
        registry.counter("esc_total").inc(1.0, tenant=value)
        return registry.prometheus_text()

    def test_quote_escaped(self):
        assert r'tenant="say \"hi\""' in self._text_for('say "hi"')

    def test_backslash_escaped(self):
        assert r'tenant="c:\\temp"' in self._text_for("c:\\temp")

    def test_newline_escaped(self):
        text = self._text_for("line1\nline2")
        assert r'tenant="line1\nline2"' in text
        # The rendered text must stay one-sample-per-line parseable.
        sample_lines = [line for line in text.splitlines()
                        if line.startswith("esc_total")]
        assert len(sample_lines) == 1

    def test_backslash_before_quote_order(self):
        # A pre-escaped-looking value \" must render as \\\" — the
        # backslash pass must not re-escape the quote's new backslash.
        assert r'tenant="\\\""' in self._text_for('\\"')


class TestFailedUnfinishedSpanExport:
    def test_failed_never_finished_span_exports_open(self, fake_clock):
        """A span that was ``fail()``-ed but never ``finish()``-ed (a
        crashed worker's last span) must still export: zero duration,
        error status and an ``open`` marker."""
        root = Span("serve.request")
        fake_clock(0.5)
        child = root.child("serve.dispatch")
        child.fail("worker exploded")       # no finish() follows
        events = chrome_trace_events([root])
        (x_event,) = [e for e in events if e["ph"] == "X"
                      and e["name"] == "serve.dispatch"]
        assert x_event["dur"] == 0.0
        assert x_event["args"]["status"] == "error"
        assert x_event["args"]["error"] == "worker exploded"
        assert x_event["args"]["open"] is True
        # The unfinished root exports the same way.
        (root_event,) = [e for e in events if e["ph"] == "X"
                         and e["name"] == "serve.request"]
        assert root_event["args"]["open"] is True


class TestTracerDropCounters:
    def test_buffer_eviction_counted(self):
        tracer = Tracer(enabled=True, max_traces=2)
        for i in range(5):
            tracer.trace(f"r{i}").finish()
        assert tracer.drop_stats() == {"buffer": 3, "children": 0}

    def test_child_drops_counted(self):
        tracer = Tracer(enabled=True, max_traces=8)
        root = tracer.trace("busy")
        for i in range(MAX_CHILDREN + 7):
            root.child(f"c{i}").finish()
        root.finish()
        assert tracer.drop_stats()["children"] == 7

    def test_clear_resets_drop_counts(self):
        tracer = Tracer(enabled=True, max_traces=1)
        tracer.trace("a").finish()
        tracer.trace("b").finish()
        assert tracer.drop_stats()["buffer"] == 1
        tracer.clear()
        assert tracer.drop_stats() == {"buffer": 0, "children": 0}

    def test_service_exports_trace_dropped_total(self):
        registry = MetricsRegistry()
        tracer = Tracer(enabled=True, max_traces=2)
        with SimdramCluster(1, config=small_config()) as cluster, \
                SimdramService(cluster, ServeConfig(max_wait_s=0.001),
                               tracer=tracer,
                               registry=registry) as service:
            a = np.arange(8)
            for _ in range(4):
                service.submit("add", a, a, width=8).result(60)
            text = service.prometheus()
        assert 'repro_trace_dropped_total{reason="buffer"} 2' in text
        assert 'repro_trace_dropped_total{reason="children"}' in text

    def test_span_root_flight_recorded(self):
        from repro.obs.flightrec import get_flight_recorder
        tracer = Tracer(enabled=True, max_traces=4)
        tracer.trace("flightrec.span.marker").finish()
        roots = [e for e in get_flight_recorder().events()
                 if e["kind"] == "span.root"
                 and e.get("name") == "flightrec.span.marker"]
        assert roots and "duration_s" in roots[0]
