"""Async job scheduler: ordering, concurrency, failure propagation."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.framework import SimdramConfig
from repro.dram.geometry import DramGeometry
from repro.errors import ExecutionError, OperationError
from repro.runtime import SimdramCluster
from repro.runtime.scheduler import JobScheduler


def small_cluster(n_modules: int = 2) -> SimdramCluster:
    config = SimdramConfig(geometry=DramGeometry.sim_small(
        cols=16, data_rows=256, banks=1))
    return SimdramCluster(n_modules, config=config)


class TestRawScheduler:
    def test_results_in_subtask_order(self):
        scheduler = JobScheduler(3)
        future = scheduler.submit([(m, (lambda m=m: m * 10))
                                   for m in range(3)])
        assert future.result() == [0, 10, 20]
        scheduler.close()

    def test_finalizer_shapes_the_result(self):
        scheduler = JobScheduler(2)
        future = scheduler.submit([(0, lambda: 1), (1, lambda: 2)],
                                  finalizer=sum)
        assert future.result() == 3
        scheduler.close()

    def test_same_module_subtasks_serialize(self):
        """Two jobs on one module must never interleave."""
        scheduler = JobScheduler(1)
        active = []
        overlaps = []

        def body(tag):
            active.append(tag)
            if len(active) > 1:
                overlaps.append(list(active))
            time.sleep(0.01)
            active.remove(tag)
            return tag

        futures = [scheduler.submit([(0, (lambda t=t: body(t)))])
                   for t in range(4)]
        assert [f.result() for f in futures] == [[0], [1], [2], [3]]
        assert overlaps == []
        scheduler.close()

    def test_independent_jobs_overlap_across_modules(self):
        """Jobs on different modules run concurrently (both workers
        must be inside their bodies at the same time)."""
        scheduler = JobScheduler(2)
        barrier = threading.Barrier(2, timeout=5)

        def body():
            barrier.wait()  # deadlocks unless both run concurrently
            return True

        futures = [scheduler.submit([(m, body)]) for m in range(2)]
        assert all(f.result(timeout=5) for f in futures)
        scheduler.close()

    def test_failure_propagates_to_dependents(self):
        cluster = small_cluster()
        tensor = cluster.tensor([1, 2, 3], 8)

        def boom():
            raise RuntimeError("injected")

        failing = cluster.scheduler.submit([(0, boom)], writes=[tensor])
        dependent = cluster.scheduler.submit([(0, lambda: "ran")],
                                             reads=[tensor])
        with pytest.raises(RuntimeError, match="injected"):
            failing.result()
        with pytest.raises(ExecutionError, match="dependency failed"):
            dependent.result()
        cluster.scheduler.barrier(raise_on_error=False)
        cluster.close()

    def test_closed_scheduler_rejects_submissions(self):
        scheduler = JobScheduler(1)
        scheduler.close()
        with pytest.raises(ExecutionError, match="closed"):
            scheduler.submit([(0, lambda: None)])


class TestSchedulerLifecycle:
    def test_close_is_idempotent(self):
        scheduler = JobScheduler(2)
        scheduler.submit([(0, lambda: 1), (1, lambda: 2)]).result()
        scheduler.close()
        scheduler.close()
        scheduler.close()

    def test_close_races_are_safe(self):
        """Concurrent close() calls from many threads never error and
        leave no worker thread behind."""
        scheduler = JobScheduler(2)
        scheduler.submit([(0, lambda: time.sleep(0.01))])
        threads = [threading.Thread(target=scheduler.close)
                   for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        with pytest.raises(ExecutionError, match="closed"):
            scheduler.submit([(0, lambda: None)])

    def test_close_after_failed_job_does_not_raise(self):
        scheduler = JobScheduler(1)

        def boom():
            raise OperationError("kaboom")

        future = scheduler.submit([(0, boom)])
        with pytest.raises(OperationError):
            future.result()
        scheduler.close()   # drains without re-raising
        scheduler.close()

    def test_scheduler_context_manager(self):
        with JobScheduler(2) as scheduler:
            future = scheduler.submit([(0, lambda: 7)])
        assert future.result() == [7]
        with pytest.raises(ExecutionError, match="closed"):
            scheduler.submit([(0, lambda: None)])

    def test_cluster_context_manager_stops_workers(self):
        """``with SimdramCluster(...)`` leaks no worker threads, even
        when closed twice."""
        with small_cluster(2) as cluster:
            tensor = cluster.tensor([1, 2, 3], width=8)
            assert np.array_equal(
                cluster.run("add", tensor, tensor).to_numpy(),
                [2, 4, 6])
        cluster.close()
        workers = [t for t in threading.enumerate()
                   if t.name.startswith("simdram-mod")]
        assert all(not t.is_alive() for t in workers)


class TestTensorDependencies:
    def test_chain_of_dependent_jobs_is_ordered(self):
        """b = a+a; c = b*b; d = c+b — every link must observe its
        producer, concurrently submitted."""
        rng = np.random.default_rng(0)
        host = rng.integers(0, 16, 40)
        with small_cluster() as cluster:
            a = cluster.tensor(host, 8)
            b = cluster.submit("add", a, a).tensor
            c = cluster.submit("mul", b, b).tensor
            d = cluster.submit("add", c, b).tensor
            expected_b = (2 * host) % 256
            expected_c = (expected_b * expected_b) % 256
            expected_d = (expected_c + expected_b) % 256
            assert np.array_equal(d.to_numpy(), expected_d)
            assert np.array_equal(c.to_numpy(), expected_c)
            assert np.array_equal(b.to_numpy(), expected_b)

    def test_diamond_dependency(self):
        host = np.arange(30)
        with small_cluster() as cluster:
            a = cluster.tensor(host, 8)
            left = cluster.submit("add", a, a).tensor
            right = cluster.submit("mul", a, a).tensor
            joined = cluster.submit("add", left, right).tensor
            expected = ((2 * host) % 256 + (host * host) % 256) % 256
            assert np.array_equal(joined.to_numpy(), expected)

    def test_free_waits_for_readers(self):
        """Submitting free immediately after an op is safe: the free
        job is ordered after every job reading the tensor."""
        host = np.arange(40)
        with small_cluster() as cluster:
            a = cluster.tensor(host, 8)
            b = cluster.tensor(host, 8)
            handle = cluster.submit("add", a, b)
            a.free()
            b.free()
            assert np.array_equal(handle.result().to_numpy(),
                                  (2 * host) % 256)
            cluster.synchronize()
            for sim in cluster.modules:
                assert sim._allocator.allocated_blocks != []  # output only

    def test_many_concurrent_independent_jobs(self):
        rng = np.random.default_rng(7)
        hosts = [rng.integers(0, 256, 48) for _ in range(8)]
        with small_cluster(4) as cluster:
            tensors = [cluster.tensor(h, 8) for h in hosts]
            handles = [cluster.submit("add", t, t) for t in tensors]
            for host, handle in zip(hosts, handles):
                assert np.array_equal(handle.result().to_numpy(),
                                      (2 * host) % 256)

    def test_submit_validates_before_queueing(self):
        with small_cluster() as cluster:
            a = cluster.tensor([1, 2, 3], 8)
            b = cluster.tensor([1, 2, 3, 4], 8)
            with pytest.raises(OperationError, match="lengths differ"):
                cluster.submit("add", a, b)
            with pytest.raises(OperationError, match="takes 2 operands"):
                cluster.submit("add", a)

    def test_makespan_advances(self):
        with small_cluster() as cluster:
            a = cluster.tensor(np.arange(40), 8)
            assert cluster.run("add", a, a) is not None
            cluster.synchronize()
            assert cluster.makespan_ns() > 0
            assert all(ns > 0 for ns in cluster.busy_ns)
