"""Property test: the Step-2 scheduler is correct for *arbitrary* MIGs.

Hypothesis generates random majority-inverter graphs (random topology,
random edge polarities, random outputs); each is scheduled and executed
on the bit-accurate subarray with randomized initial contents, and the
result must equal direct MIG evaluation.  This covers scheduler corner
cases (eviction, DCC routing, install ordering, output flushing) far
beyond the hand-written cases.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from hypothesis_profiles import scaled_examples

from repro.dram.geometry import DramGeometry
from repro.dram.rows import data_row
from repro.dram.subarray import Subarray
from repro.exec.control_unit import ControlUnit
from repro.exec.layout import RowLayout
from repro.logic.mig import Mig
from repro.uprog.program import OperandSpec
from repro.uprog.scheduler import ScheduleOptions, schedule
from repro.uprog.uops import Space, URow

N_INPUTS = 5
COLS = 16


@st.composite
def random_mig_spec(draw):
    n_nodes = draw(st.integers(min_value=1, max_value=14))
    ops = []
    for index in range(n_nodes):
        pool_size = 2 + N_INPUTS + index  # consts + inputs + prior nodes
        picks = draw(st.tuples(
            st.integers(0, pool_size - 1), st.integers(0, pool_size - 1),
            st.integers(0, pool_size - 1), st.integers(0, 7)))
        ops.append(picks)
    n_outputs = draw(st.integers(min_value=1, max_value=4))
    outputs = [
        (draw(st.integers(0, 2 + N_INPUTS + n_nodes - 1)),
         draw(st.booleans()))
        for _ in range(n_outputs)
    ]
    reuse = draw(st.booleans())
    return ops, outputs, reuse


@settings(max_examples=scaled_examples(60), deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_mig_spec(), st.integers(min_value=0, max_value=2**31 - 1))
def test_scheduled_program_matches_mig_evaluation(spec, seed):
    ops, outputs, reuse = spec
    mig = Mig()
    pool = [mig.const0, mig.const1]
    pool += [mig.input(f"a{i}") for i in range(N_INPUTS)]
    for i, j, k, negs in ops:
        a, b, c = pool[i % len(pool)], pool[j % len(pool)], \
            pool[k % len(pool)]
        if negs & 1:
            a = ~a
        if negs & 2:
            b = ~b
        if negs & 4:
            c = ~c
        pool.append(mig.maj(a, b, c))
    out_names = []
    for idx, (pick, negate) in enumerate(outputs):
        ref = pool[pick % len(pool)]
        mig.set_output(f"y{idx}", ~ref if negate else ref)
        out_names.append(f"y{idx}")

    program = schedule(
        mig, op_name="random", backend="simdram", element_width=N_INPUTS,
        input_specs=[OperandSpec(Space.INPUT0, N_INPUTS)],
        output_spec=OperandSpec(Space.OUTPUT, len(out_names)),
        input_rows={f"a{i}": URow(Space.INPUT0, i)
                    for i in range(N_INPUTS)},
        output_rows={name: URow(Space.OUTPUT, i)
                     for i, name in enumerate(out_names)},
        options=ScheduleOptions(reuse=reuse))

    rng = np.random.default_rng(seed)
    input_rows = [rng.integers(0, 2, COLS).astype(bool)
                  for _ in range(N_INPUTS)]
    geometry = DramGeometry.sim_small(
        cols=COLS,
        data_rows=N_INPUTS + len(out_names) + program.n_temp_rows + 2)
    subarray = Subarray(geometry, rng=rng)
    layout = RowLayout({
        Space.INPUT0: 0,
        Space.OUTPUT: N_INPUTS,
        Space.TEMP: N_INPUTS + len(out_names),
    })
    for i, bits in enumerate(input_rows):
        subarray.write_row(data_row(i), bits)
    ControlUnit().execute(program, subarray, layout)

    expected = mig.evaluate(
        {f"a{i}": input_rows[i] for i in range(N_INPUTS)})
    for idx, name in enumerate(out_names):
        got = subarray.peek(data_row(N_INPUTS + idx))
        assert np.array_equal(got, expected[name]), (
            f"output {name} wrong for reuse={reuse}")
