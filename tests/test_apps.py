"""Tests for the seven application kernels: functional correctness on the
simulator and sanity of the op-mix performance models."""

import numpy as np
import pytest

from repro.apps import (
    BitSlicedColumn,
    KernelHarness,
    LineitemTable,
    adjust_brightness_fused,
    adjust_brightness_golden,
    adjust_brightness_simdram,
    bitweaving_kernel,
    brightness_kernel,
    conv2d_relu_simdram_fused,
    conv2d_simdram,
    filtered_sum_golden,
    filtered_sum_simdram,
    knn_classify_golden,
    knn_classify_simdram,
    knn_kernel,
    lenet_kernel,
    paper_kernels,
    range_scan_golden,
    range_scan_simdram,
    relu_simdram,
    tpch_kernel,
    vgg13_kernel,
    vgg16_kernel,
)
from repro.apps.cnn import LENET_LAYERS, VGG13_LAYERS, VGG16_LAYERS
from repro.core.framework import Simdram, SimdramConfig
from repro.dram.geometry import DramGeometry
from repro.errors import OperationError
from repro.perf.platforms import cpu_skylake


@pytest.fixture(scope="module")
def app_sim():
    config = SimdramConfig(
        geometry=DramGeometry.sim_small(cols=128, data_rows=640, banks=2))
    return Simdram(config, seed=13)


class TestBrightness:
    @pytest.mark.parametrize("delta", (60, -75, 0, 255, -255))
    def test_matches_golden(self, app_sim, delta):
        rng = np.random.default_rng(delta & 0xFF)
        image = rng.integers(0, 256, (12, 12)).astype(np.uint8)
        got = adjust_brightness_simdram(app_sim, image, delta)
        assert np.array_equal(got, adjust_brightness_golden(image, delta))

    def test_requires_uint8(self, app_sim):
        with pytest.raises(OperationError):
            adjust_brightness_simdram(app_sim,
                                      np.zeros((2, 2), dtype=np.int32), 1)

    @pytest.mark.parametrize("delta", (70, -75))
    def test_fused_matches_golden_and_unfused(self, app_sim, delta):
        """The fused scale+clamp kernel is bit-identical to the
        step-by-step pipeline, including on frames larger than the
        module's SIMD lanes (map_expr batches them)."""
        rng = np.random.default_rng(delta & 0xFF)
        shape = (3, app_sim.module.lanes // 2 + 5)  # not a lane multiple
        image = rng.integers(0, 256, shape).astype(np.uint8)
        fused = adjust_brightness_fused(app_sim, image, delta)
        assert np.array_equal(fused, adjust_brightness_golden(image, delta))
        small = image[:2, :8]
        assert np.array_equal(
            adjust_brightness_fused(app_sim, small, delta),
            adjust_brightness_simdram(app_sim, small, delta))

    def test_fused_requires_uint8(self, app_sim):
        with pytest.raises(OperationError):
            adjust_brightness_fused(app_sim,
                                    np.zeros((2, 2), dtype=np.int32), 1)


class TestTpch:
    def test_filtered_sum_matches_golden(self, app_sim):
        table = LineitemTable.synthetic(150, seed=5)
        got = filtered_sum_simdram(app_sim, table, 30)
        assert got == filtered_sum_golden(table, 30)

    def test_empty_selection(self, app_sim):
        table = LineitemTable.synthetic(100, seed=6)
        assert filtered_sum_simdram(app_sim, table, 1) == \
            filtered_sum_golden(table, 1)


class TestBitWeaving:
    def test_range_scan_matches_golden(self, app_sim):
        column = BitSlicedColumn.synthetic(200, seed=7)
        got = range_scan_simdram(app_sim, column, 500, 3500)
        assert np.array_equal(got, range_scan_golden(column, 500, 3500))

    def test_bad_range_rejected(self, app_sim):
        column = BitSlicedColumn.synthetic(10)
        with pytest.raises(OperationError):
            range_scan_simdram(app_sim, column, 10, 1 << 20)


class TestKnn:
    def test_classification_matches_golden(self, app_sim):
        rng = np.random.default_rng(8)
        references = rng.integers(0, 256, (30, 6)).astype(np.uint8)
        labels = rng.integers(0, 3, 30)
        queries = rng.integers(0, 256, (4, 6)).astype(np.uint8)
        got = knn_classify_simdram(app_sim, references, labels, queries)
        assert np.array_equal(
            got, knn_classify_golden(references, labels, queries))

    def test_label_length_checked(self, app_sim):
        with pytest.raises(OperationError):
            knn_classify_simdram(app_sim, np.zeros((4, 2), dtype=np.uint8),
                                 np.zeros(3, dtype=np.int64),
                                 np.zeros((1, 2), dtype=np.uint8))


class TestCnn:
    def test_conv2d_matches_direct_correlation(self, app_sim):
        rng = np.random.default_rng(9)
        image = rng.integers(0, 100, (8, 8))
        kernel = rng.integers(-3, 4, (3, 3))
        got = conv2d_simdram(app_sim, image, kernel)
        expected = np.zeros((6, 6), dtype=np.int64)
        for y in range(6):
            for x in range(6):
                expected[y, x] = (image[y:y + 3, x:x + 3] * kernel).sum()
        assert np.array_equal(got, expected)

    def test_fused_conv2d_relu_matches_golden(self, app_sim):
        """One fused multiply-accumulate µProgram per tap (ReLU folded
        into the last) equals the direct correlation + ReLU."""
        rng = np.random.default_rng(10)
        image = rng.integers(0, 50, (5, 5))
        kernel = rng.integers(-3, 4, (2, 2))
        got = conv2d_relu_simdram_fused(app_sim, image, kernel)
        expected = np.zeros((4, 4), dtype=np.int64)
        for y in range(4):
            for x in range(4):
                expected[y, x] = (image[y:y + 2, x:x + 2] * kernel).sum()
        assert np.array_equal(got, np.maximum(expected, 0))

    def test_cluster_conv2d_relu_matches_fused_single_module(self,
                                                             app_sim):
        """The sharded-runtime convolution is bit-identical to the
        single-module fused path, on a feature map spanning shards."""
        from repro.apps.cnn import conv2d_relu_cluster
        from repro.runtime import SimdramCluster

        rng = np.random.default_rng(11)
        image = rng.integers(0, 50, (9, 9))
        kernel = rng.integers(-3, 4, (3, 3))
        expected = conv2d_relu_simdram_fused(app_sim, image, kernel)

        config = SimdramConfig(geometry=DramGeometry.sim_small(
            cols=16, data_rows=256, banks=1))
        with SimdramCluster(2, config=config) as cluster:
            got = conv2d_relu_cluster(cluster, image, kernel)
        assert np.array_equal(got, expected)

    def test_relu_helper(self, app_sim):
        values = np.array([[-10, 4], [0, -1]])
        assert np.array_equal(relu_simdram(app_sim, values),
                              [[0, 4], [0, 0]])

    def test_kernel_larger_than_image_rejected(self, app_sim):
        with pytest.raises(OperationError):
            conv2d_simdram(app_sim, np.zeros((2, 2)), np.zeros((3, 3)))

    def test_layer_shapes(self):
        assert len(list(VGG13_LAYERS)) == 13
        assert len(list(VGG16_LAYERS)) == 16
        assert len(LENET_LAYERS) == 5

    def test_vgg16_heavier_than_vgg13(self):
        assert sum(i.n_elements for i in vgg16_kernel().invocations) > \
            sum(i.n_elements for i in vgg13_kernel().invocations)


class TestKernelModels:
    def test_seven_paper_kernels(self):
        kernels = paper_kernels()
        assert len(kernels) == 7
        names = {k.name for k in kernels}
        assert names == {"VGG-13", "VGG-16", "LeNet-5", "kNN", "TPC-H",
                         "BitWeaving", "Brightness"}

    def test_simdram_beats_ambit_on_every_kernel(self):
        harness = KernelHarness()
        for kernel in paper_kernels():
            simdram = harness.measure_pim(kernel, "simdram", 16)
            ambit = harness.measure_pim(kernel, "ambit", 16)
            assert simdram.time_ms < ambit.time_ms, kernel.name
            assert simdram.energy_mj < ambit.energy_mj, kernel.name

    def test_simdram_beats_cpu_on_every_kernel(self):
        harness = KernelHarness()
        cpu = cpu_skylake()
        for kernel in paper_kernels():
            simdram = harness.measure_pim(kernel, "simdram", 16)
            host = harness.measure_host(kernel, cpu)
            assert simdram.time_ms < host.time_ms, kernel.name

    def test_bank_scaling_reduces_time(self):
        harness = KernelHarness()
        kernel = tpch_kernel(1_000_000)
        one = harness.measure_pim(kernel, "simdram", 1)
        sixteen = harness.measure_pim(kernel, "simdram", 16)
        assert sixteen.time_ms < one.time_ms

    def test_kernel_invocation_validation(self):
        from repro.apps.common import OpInvocation
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            OpInvocation("add", 8, 0)

    def test_kernel_scales(self):
        small = knn_kernel(n_references=100, n_queries=1)
        large = knn_kernel(n_references=1000, n_queries=1)
        harness = KernelHarness()
        assert harness.measure_pim(large).time_ms > \
            harness.measure_pim(small).time_ms

    def test_bitweaving_has_no_transposition_cost(self):
        assert bitweaving_kernel().transposed_bits == 0

    def test_brightness_kernel_element_counts(self):
        kernel = brightness_kernel(width=100, height=10)
        assert all(inv.n_elements == 1000 for inv in kernel.invocations)
