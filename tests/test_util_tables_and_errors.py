"""Tests for table formatting and the exception hierarchy."""

import pytest

import repro.errors as errors
from repro.util.tables import format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("a ")
        assert all(len(line) == len(lines[0]) or "-" in line
                   for line in lines)

    def test_title_and_separator(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert "=" in text.splitlines()[1]

    def test_float_formatting(self):
        text = format_table(["v"], [[0.000123], [1234567.0], [3.14159],
                                    [0.0]])
        assert "0.000123" in text
        assert "3.14" in text
        assert "0" in text

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text


class TestErrorHierarchy:
    @pytest.mark.parametrize("name", [
        "GeometryError", "AddressError", "CommandError", "SynthesisError",
        "SchedulingError", "AllocationError", "IsaError", "ExecutionError",
        "OperationError", "ConfigError",
    ])
    def test_all_derive_from_simdram_error(self, name):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.SimdramError)
        assert issubclass(cls, Exception)

    def test_one_except_clause_catches_everything(self):
        try:
            raise errors.SchedulingError("boom")
        except errors.SimdramError as exc:
            assert "boom" in str(exc)


class TestPublicApi:
    def test_top_level_exports(self):
        import repro
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        import repro
        assert repro.__version__.count(".") == 2

    def test_subpackage_exports(self):
        import repro.dram
        import repro.exec
        import repro.logic
        import repro.perf
        import repro.uprog
        for module in (repro.dram, repro.exec, repro.logic, repro.perf,
                       repro.uprog):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)
