"""Tests for the streaming executor (vectors larger than the module)."""

import numpy as np
import pytest

from repro.errors import OperationError


class TestMap:
    def test_exceeds_lane_count(self, sim):
        n = sim.module.lanes * 3 + 17  # forces four batches
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, n)
        b = rng.integers(0, 256, n)
        got = sim.map("add", a, b, width=8)
        assert np.array_equal(got, (a + b) % 256)

    def test_single_batch(self, sim):
        a = np.array([1, 2, 3])
        b = np.array([4, 5, 6])
        assert np.array_equal(sim.map("add", a, b, width=8),
                              [5, 7, 9])

    def test_unary_operation(self, sim):
        n = sim.module.lanes + 5
        a = np.random.default_rng(1).integers(0, 256, n)
        got = sim.map("bitcount", a, width=8)
        expected = np.array([bin(v).count("1") for v in a])
        assert np.array_equal(got, expected)

    def test_ternary_with_fixed_width_select(self, sim):
        n = sim.module.lanes * 2
        rng = np.random.default_rng(2)
        sel = rng.integers(0, 2, n)
        a = rng.integers(0, 256, n)
        b = rng.integers(0, 256, n)
        got = sim.map("if_else", sel, a, b, width=8)
        assert np.array_equal(got, np.where(sel, a, b))

    def test_rows_released_after_map(self, sim):
        before = sim._allocator.free_rows()
        n = sim.module.lanes * 2
        sim.map("add", np.zeros(n, dtype=int), np.ones(n, dtype=int),
                width=8)
        assert sim._allocator.free_rows() == before

    def test_wrong_arity_rejected(self, sim):
        with pytest.raises(OperationError):
            sim.map("add", np.array([1]))

    def test_length_mismatch_rejected(self, sim):
        with pytest.raises(OperationError):
            sim.map("add", np.array([1, 2]), np.array([1]))

    def test_empty_rejected(self, sim):
        with pytest.raises(OperationError):
            sim.map("add", np.array([]), np.array([]))

    def test_ambit_backend(self, sim):
        a = np.array([10, 20])
        b = np.array([1, 2])
        got = sim.map("sub", a, b, width=8, backend="ambit")
        assert np.array_equal(got, [9, 18])


class TestDdr3Variant:
    def test_ddr3_slower_than_ddr4(self):
        from repro.dram.timing import DramTiming
        ddr3 = DramTiming.ddr3_1600()
        ddr4 = DramTiming.ddr4_2400()
        assert ddr3.aap_ns > ddr4.aap_ns
        assert ddr3.channel_gbps < ddr4.channel_gbps

    def test_timing_sensitivity_on_throughput(self):
        from repro.core.compiler import compile_cached
        from repro.dram.energy import DramEnergy
        from repro.dram.geometry import DramGeometry
        from repro.dram.timing import DramTiming
        from repro.perf.model import PimSystemModel
        program = compile_cached("add", 16)
        ddr4 = PimSystemModel.paper().measure(program, 1)
        ddr3 = PimSystemModel(
            DramGeometry.paper(), DramTiming.ddr3_1600(),
            DramEnergy.ddr4()).measure(program, 1)
        assert ddr4.throughput_gops > ddr3.throughput_gops
