"""Spill/fill accounting under the serving path.

A packed serve dispatch reserves operand/output/temp rows on each
module; on an over-capacity cluster that reservation must page out
resident :class:`~repro.runtime.DeviceTensor` shards (counted in
``CommandStats.n_spills``/``spill_bits``), the dispatch must still
produce bit-exact results, and reading the evicted tensors afterwards
must fault them back in (``n_fills``/``fill_bits``) with their values
intact.
"""

from __future__ import annotations

import numpy as np

from repro.core.framework import SimdramConfig
from repro.dram.geometry import DramGeometry
from repro.runtime import SimdramCluster
from repro.serve import ServeConfig, SimdramService

WIDTH = 8
COLS = 32
BANKS = 2
LANES = COLS * BANKS


def tiny_cluster(data_rows: int = 64) -> SimdramCluster:
    """One module with so few D-rows that serving must page."""
    config = SimdramConfig(geometry=DramGeometry.sim_small(
        cols=COLS, data_rows=data_rows, banks=BANKS))
    return SimdramCluster(1, config=config, seed=9)


class TestServePagingCounters:
    def test_packed_dispatch_pages_and_counts(self):
        """Packed serving on a nearly-full module evicts resident
        shards, counts the traffic, and stays bit-exact."""
        rng = np.random.default_rng(4)
        with tiny_cluster(data_rows=64) as cluster:
            # Fill most of the 64 D-rows with resident tensors
            # (6 x 8 rows = 48), leaving too little for the serve
            # dispatch's operand + output + temp reservation.
            hosts = [rng.integers(0, 256, LANES) for _ in range(6)]
            residents = [cluster.tensor(h, WIDTH) for h in hosts]
            cluster.synchronize()
            assert cluster.paging_stats().n_spills == 0

            with SimdramService(
                    cluster,
                    ServeConfig(max_wait_s=30.0)) as service:
                requests = []
                for _ in range(4):
                    a = rng.integers(0, 256, 16)
                    b = rng.integers(0, 256, 16)
                    requests.append(
                        (service.submit("add", a, b, width=WIDTH),
                         (a + b) % 256))
                service.flush()
                for handle, golden in requests:
                    assert np.array_equal(handle.result(60), golden)

                stats = service.stats()
                # One packed dispatch carried all four requests...
                assert stats["packing"]["dispatches"] == 1
                assert stats["packing"]["packed_requests"] == 4
                # ...and its row reservation had to evict residents.
                paging = stats["paging"]
                assert paging["n_spills"] > 0
                assert paging["spill_bits"] == paging["n_spills"] \
                    * LANES * WIDTH

            # Gathers serve spilled shards straight from the host
            # copy (no fill)...
            for host, tensor in zip(hosts, residents):
                assert np.array_equal(tensor.to_numpy(), host)
            assert cluster.paging_stats().n_fills == 0
            # ...but *computing* on an evicted tensor faults it back
            # in, bit-exactly, and counts the fill traffic.
            doubled = cluster.run("add", residents[0], residents[0])
            assert np.array_equal(doubled.to_numpy(),
                                  (2 * hosts[0]) % 256)
            paging = cluster.paging_stats()
            assert paging.n_fills > 0
            assert paging.fill_bits == paging.n_fills * LANES * WIDTH
            doubled.free()
            for tensor in residents:
                tensor.free()

    def test_unpressured_serving_never_spills(self):
        """The same workload with ample rows pages nothing (the
        counter baseline for the over-capacity case)."""
        rng = np.random.default_rng(4)
        with tiny_cluster(data_rows=512) as cluster:
            residents = [cluster.tensor(rng.integers(0, 256, LANES),
                                        WIDTH) for _ in range(6)]
            with SimdramService(
                    cluster,
                    ServeConfig(max_wait_s=30.0)) as service:
                a = rng.integers(0, 256, 16)
                b = rng.integers(0, 256, 16)
                handle = service.submit("add", a, b, width=WIDTH)
                service.flush()
                assert np.array_equal(handle.result(60),
                                      (a + b) % 256)
                paging = service.stats()["paging"]
                assert paging["n_spills"] == 0
                assert paging["n_fills"] == 0
            for tensor in residents:
                tensor.free()
