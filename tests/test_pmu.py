"""Tests for the device PMU (per-bank counters, utilization timeline,
tenant/kernel attribution and the ``repro_pmu_*`` registry export).

Unit tests drive a private :class:`DevicePmu` directly (fake clock for
the windowed timeline); the integration tests run a real
:class:`Simdram` end to end and assert the hook sites in
``dram/bank.py``, ``exec/control_unit.py`` and ``runtime/cluster.py``
feed the process-global PMU with internally-consistent numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.framework import Simdram, SimdramConfig
from repro.dram.commands import CommandStats
from repro.dram.geometry import DramGeometry
from repro.obs import clock
from repro.obs.metrics import MetricsRegistry
from repro.obs.pmu import DevicePmu, get_pmu
from repro.runtime import SimdramCluster


@pytest.fixture
def fake_clock():
    state = {"t": 100.0}

    def advance(dt: float) -> None:
        state["t"] += dt

    clock.set_source(lambda: state["t"])
    try:
        yield advance
    finally:
        clock.set_source(None)


def one_dispatch_delta() -> CommandStats:
    delta = CommandStats()
    delta.record_ap(3)
    delta.record_aap(2, 1)
    delta.record_aap(1, 1)
    return delta


class TestDevicePmuUnits:
    def test_register_module_ids_are_unique(self):
        pmu = DevicePmu()
        first = pmu.register_module(2, 32)
        second = pmu.register_module(4, 64)
        assert first != second
        snap = pmu.snapshot()["modules"]
        assert snap[first]["n_banks"] == 2
        assert snap[second]["lanes"] == 64

    def test_dispatch_applies_lockstep_delta_to_participants(self):
        pmu = DevicePmu()
        mid = pmu.register_module(4, 32)
        pmu.record_dispatch(mid, 3, one_dispatch_delta(),
                            kernel="add@8", latency_ns=50.0,
                            energy_nj=7.0)
        row = pmu.snapshot()["modules"][mid]
        assert row["dispatches"] == 1
        assert row["energy_nj"] == 7.0
        # Banks run in lockstep: the first 3 banks get the same delta,
        # the 4th did not participate.
        for bank in row["banks"][:3]:
            assert bank["n_ap"] == 1 and bank["n_aap"] == 2
            assert bank["activations"] == 1 + 2 * 2
            assert bank["busy_ns"] == 50.0
        assert row["banks"][3]["activations"] == 0

    def test_duty_cycle_is_mean_participation(self):
        pmu = DevicePmu()
        mid = pmu.register_module(4, 32)
        delta = one_dispatch_delta()
        pmu.record_dispatch(mid, 4, delta)
        pmu.record_dispatch(mid, 2, delta)
        # (4 + 2) participating banks over 2 dispatches x 4 banks.
        assert pmu.snapshot()["modules"][mid]["duty_cycle"] == \
            pytest.approx(6 / 8)

    def test_kernel_attribution_accumulates(self):
        pmu = DevicePmu()
        mid = pmu.register_module(2, 32)
        delta = one_dispatch_delta()
        pmu.record_dispatch(mid, 2, delta, kernel="add@8")
        pmu.record_dispatch(mid, 2, delta, kernel="add@8")
        cell = pmu.snapshot()["kernels"]["add@8"]
        assert cell["dispatches"] == 2
        assert cell["activations"] == 2 * delta.n_activations * 2

    def test_transposition_traffic_counted(self):
        pmu = DevicePmu()
        mid = pmu.register_module(2, 32)
        pmu.record_transposition(mid, 256)
        pmu.record_transposition(mid, 128)
        assert pmu.snapshot()["modules"][mid]["transposition_bits"] == 384

    def test_unknown_module_is_ignored(self):
        pmu = DevicePmu()
        pmu.record_dispatch(999, 2, one_dispatch_delta())
        pmu.record_transposition(999, 64)
        pmu.record_boundary(999, 100.0)
        assert pmu.snapshot()["modules"] == {}

    def test_windowed_utilization(self, fake_clock):
        pmu = DevicePmu(window_s=1.0, n_windows=8)
        mid = pmu.register_module(2, 32)
        # 0.5e9 busy ns inside the current 1 s window over a 4-window
        # lookback = 12.5% utilization.
        pmu.record_boundary(mid, 0.5e9)
        assert pmu.utilization(lookback=4)[mid] == pytest.approx(0.125)
        # Ancient windows age out of the lookback.
        fake_clock(10.0)
        assert pmu.utilization(lookback=4)[mid] == 0.0

    def test_timeline_windows_are_bounded(self, fake_clock):
        pmu = DevicePmu(window_s=1.0, n_windows=3)
        mid = pmu.register_module(1, 8)
        for _ in range(6):
            pmu.record_boundary(mid, 1000.0)
            fake_clock(1.0)
        timeline = [e for e in pmu.timeline() if e["module"] == mid]
        assert len(timeline) == 3            # oldest windows evicted
        assert timeline == sorted(timeline, key=lambda e: e["t0"])

    def test_boundary_same_window_folds(self, fake_clock):
        pmu = DevicePmu(window_s=1.0)
        mid = pmu.register_module(1, 8)
        pmu.record_boundary(mid, 100.0)
        pmu.record_boundary(mid, 150.0)
        (entry,) = [e for e in pmu.timeline() if e["module"] == mid]
        assert entry["busy_ns"] == 250.0

    def test_tenant_attribution(self):
        pmu = DevicePmu()
        pmu.attribute("alpha", "add", lanes=32, energy_nj=5.0)
        pmu.attribute("alpha", "add", lanes=16)
        cell = pmu.snapshot()["tenants"]["alpha/add"]
        assert cell == {"requests": 2.0, "lanes": 48.0, "energy_nj": 5.0}

    def test_samples_export_all_series(self):
        pmu = DevicePmu()
        mid = pmu.register_module(2, 32)
        pmu.record_dispatch(mid, 2, one_dispatch_delta(),
                            kernel="add@8", energy_nj=3.0)
        pmu.attribute("alpha", "add", lanes=8)
        names = {s.name for s in pmu.samples()}
        assert names == {
            "repro_pmu_dispatches_total",
            "repro_pmu_transposition_bits_total",
            "repro_pmu_energy_nj_total",
            "repro_pmu_lane_duty_cycle",
            "repro_pmu_window_utilization",
            "repro_pmu_row_activations_total",
            "repro_pmu_commands_total",
            "repro_pmu_kernel_dispatches_total",
            "repro_pmu_kernel_activations_total",
            "repro_pmu_tenant_requests_total",
            "repro_pmu_tenant_lanes_total",
            "repro_pmu_tenant_energy_nj_total",
        }
        kinds = {dict(s.labels).get("kind") for s in pmu.samples()
                 if s.name == "repro_pmu_commands_total"}
        assert kinds == {"ap", "aap"}

    def test_register_attaches_named_collector(self):
        registry = MetricsRegistry()
        pmu = DevicePmu()
        mid = pmu.register_module(1, 8)
        pmu.record_dispatch(mid, 1, one_dispatch_delta())
        pmu.register(registry)
        pmu.register(registry)   # named: replaces, does not stack
        text = registry.prometheus_text()
        assert text.count("# TYPE repro_pmu_dispatches_total") == 1
        assert f'repro_pmu_dispatches_total{{module="{mid}"}} 1' in text

    def test_reset_zeroes_but_keeps_registrations(self):
        pmu = DevicePmu()
        mid = pmu.register_module(2, 32)
        pmu.record_dispatch(mid, 2, one_dispatch_delta(), kernel="k")
        pmu.attribute("t", "k")
        pmu.reset()
        snap = pmu.snapshot()
        assert snap["modules"][mid]["dispatches"] == 0
        assert snap["modules"][mid]["banks"][0]["n_ap"] == 0
        assert snap["kernels"] == {} and snap["tenants"] == {}


class TestPmuHooks:
    """The real hook sites feed the process-global PMU."""

    def make_sim(self) -> Simdram:
        config = SimdramConfig(geometry=DramGeometry.sim_small(
            cols=32, data_rows=512, banks=2))
        return Simdram(config, seed=7)

    def test_end_to_end_run_is_internally_consistent(self):
        sim = self.make_sim()
        pmu_id = sim.module.pmu_id
        before = get_pmu().snapshot()["modules"][pmu_id]
        a = sim.array(np.arange(16), width=8)
        b = sim.array(np.arange(16) * 3, width=8)
        out = sim.run("add", a, b)
        assert np.array_equal(sim.read(out), (np.arange(16) * 4) & 0xFF)
        after = get_pmu().snapshot()["modules"][pmu_id]

        assert after["dispatches"] > before["dispatches"]
        # Transposition port saw the operand writes and the result read.
        assert after["transposition_bits"] > before["transposition_bits"]
        bank0 = after["banks"][0]
        # One AAP activates two rows, an AP one: the activation count
        # must be consistent with the recorded command mix.
        d_ap = bank0["n_ap"] - before["banks"][0]["n_ap"]
        d_aap = bank0["n_aap"] - before["banks"][0]["n_aap"]
        d_act = (bank0["activations"]
                 - before["banks"][0]["activations"])
        assert d_act == d_ap + 2 * d_aap > 0
        # Lockstep: both banks advanced identically.
        assert after["banks"][0] == after["banks"][1]

    def test_kernel_identity_recorded(self):
        sim = self.make_sim()
        kernels_before = dict(get_pmu().snapshot()["kernels"])
        a = sim.array(np.arange(8), width=8)
        b = sim.array(np.arange(8), width=8)
        sim.run("min", a, b)
        cell = get_pmu().snapshot()["kernels"]["min@8"]
        before = kernels_before.get("min@8", {"dispatches": 0})
        assert cell["dispatches"] == before["dispatches"] + 1

    def test_cluster_boundary_feeds_timeline(self):
        config = SimdramConfig(geometry=DramGeometry.sim_small(
            cols=32, data_rows=256, banks=2))
        with SimdramCluster(2, config=config) as cluster:
            pmu_ids = [sim.module.pmu_id for sim in cluster.modules]
            n = cluster.lanes
            a = np.arange(n) % 17
            b = np.arange(n) % 11
            out = cluster.run("add", cluster.tensor(a, 8),
                              cluster.tensor(b, 8))
            np.testing.assert_array_equal(out.to_numpy(), (a + b) & 0xFF)
            timeline_modules = {e["module"] for e in get_pmu().timeline()}
            assert set(pmu_ids) <= timeline_modules
