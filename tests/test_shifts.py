"""Tests for in-DRAM bit shifts (paper §2: shifts are row copies)."""

import numpy as np
import pytest

from repro.errors import OperationError


@pytest.fixture
def values():
    return np.arange(1, 41, dtype=np.int64) * 5 % 256


class TestShiftLeft:
    @pytest.mark.parametrize("amount", (0, 1, 3, 7))
    def test_matches_numpy(self, sim, values, amount):
        array = sim.array(values, 8)
        shifted = sim.shift_left(array, amount)
        assert np.array_equal(shifted.to_numpy(),
                              (values << amount) & 0xFF)
        array.free()
        shifted.free()

    def test_shift_beyond_width_gives_zero(self, sim, values):
        array = sim.array(values, 8)
        shifted = sim.shift_left(array, 8)
        assert not shifted.to_numpy().any()

    def test_shift_is_pure_row_copies(self, sim, values):
        """A shift issues exactly one AAP per bit row and zero APs."""
        array = sim.array(values, 8)
        before = sim.module.total_stats()
        sim.shift_left(array, 2)
        after = sim.module.total_stats()
        banks = sim.config.geometry.banks
        assert after.n_aap - before.n_aap == 8 * banks
        assert after.n_ap == before.n_ap


class TestShiftRight:
    @pytest.mark.parametrize("amount", (0, 1, 4))
    def test_matches_numpy(self, sim, values, amount):
        array = sim.array(values, 8)
        shifted = sim.shift_right(array, amount)
        assert np.array_equal(shifted.to_numpy(), values >> amount)

    def test_negative_amount_rejected(self, sim, values):
        array = sim.array(values, 8)
        with pytest.raises(OperationError):
            sim.shift_right(array, -1)

    def test_shift_composes_with_operations(self, sim, values):
        """(a >> 1) + a works: shifted outputs are normal operands."""
        array = sim.array(values, 8)
        halved = sim.shift_right(array, 1)
        total = sim.run("add", halved, array)
        assert np.array_equal(total.to_numpy(),
                              ((values >> 1) + values) % 256)


class TestSignedness:
    """Result signedness of in-DRAM copy/shift is explicit: copy and
    left shift preserve the source's interpretation; right shift
    matches the operand's encoding — logical on unsigned, arithmetic
    (sign-plane fill) on signed — unless overridden."""

    def test_copy_preserves_signedness(self, sim):
        array = sim.array([-3, 5, -128, 127], 8, signed=True)
        clone = sim.copy(array)
        assert clone.signed
        assert np.array_equal(clone.to_numpy(), [-3, 5, -128, 127])

    def test_copy_signedness_override(self, sim):
        array = sim.array([-1, -2], 8, signed=True)
        as_unsigned = sim.copy(array, signed=False)
        assert not as_unsigned.signed
        assert np.array_equal(as_unsigned.to_numpy(), [255, 254])

    def test_shift_left_preserves_signedness(self, sim):
        array = sim.array([-3, 5, -60], 8, signed=True)
        shifted = sim.shift_left(array, 1)
        assert shifted.signed
        # Left shift is *2 mod 2^8 under two's complement as well.
        assert np.array_equal(shifted.to_numpy(), [-6, 10, -120])

    def test_shift_left_unsigned_source_stays_unsigned(self, sim):
        array = sim.array([200], 8)
        shifted = sim.shift_left(array, 1)
        assert not shifted.signed
        assert np.array_equal(shifted.to_numpy(), [144])  # (400 % 256)

    def test_shift_right_signed_source_is_arithmetic(self, sim):
        """A signed source shifts arithmetically by default: -2
        (0b11111110) >> 1 is -1, with the sign preserved — numpy's
        ``>>`` semantics, not a silent logical shift."""
        array = sim.array([-2, -128, 6], 8, signed=True)
        shifted = sim.shift_right(array, 1)
        assert shifted.signed
        assert np.array_equal(shifted.to_numpy(), [-1, -64, 3])

    def test_shift_right_unsigned_source_is_logical(self, sim):
        array = sim.array([254, 128], 8)
        shifted = sim.shift_right(array, 1)
        assert not shifted.signed
        assert np.array_equal(shifted.to_numpy(), [127, 64])

    def test_shift_right_logical_override_on_signed(self, sim):
        """``signed=False`` forces the old logical behaviour: the sign
        bit is discarded and the result reads as unsigned."""
        array = sim.array([-2, -128], 8, signed=True)
        shifted = sim.shift_right(array, 1, signed=False)
        assert not shifted.signed
        assert np.array_equal(shifted.to_numpy(), [127, 64])

    def test_shift_right_arithmetic_override_on_unsigned(self, sim):
        """``signed=True`` reinterprets unsigned bits as two's
        complement and shifts arithmetically."""
        array = sim.array([254], 8)  # bits of -2
        shifted = sim.shift_right(array, 1, signed=True)
        assert shifted.signed
        assert np.array_equal(shifted.to_numpy(), [-1])

    def test_shift_right_beyond_width_saturates_to_sign(self, sim):
        """Shifting a signed value past its width leaves all-sign
        planes: -1 for negatives, 0 for non-negatives."""
        array = sim.array([-2, -128, 6], 8, signed=True)
        shifted = sim.shift_right(array, 8)
        assert np.array_equal(shifted.to_numpy(), [-1, -1, 0])


class TestShiftRightDifferential:
    """Differential check vs numpy ``>>`` across widths and
    signedness (the ISSUE-7 shift_right bugfix gate)."""

    @pytest.mark.parametrize("width", (4, 8, 16))
    @pytest.mark.parametrize("signed", (False, True))
    def test_matches_numpy_shift(self, sim, width, signed):
        rng = np.random.default_rng(width * 2 + signed)
        lo, hi = ((-(1 << (width - 1)), 1 << (width - 1)) if signed
                  else (0, 1 << width))
        values = rng.integers(lo, hi, size=48, dtype=np.int64)
        # Always include the boundary values where sign-fill matters.
        values[:4] = (lo, hi - 1, -1 if signed else 0, 1)
        array = sim.array(values, width, signed=signed)
        for amount in (0, 1, width // 2, width - 1):
            shifted = sim.shift_right(array, amount)
            assert shifted.signed == signed
            assert np.array_equal(shifted.to_numpy(),
                                  values >> amount), (
                f"width={width} signed={signed} amount={amount}")
            shifted.free()
