"""Unit tests for the bit packing/transposition helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import OperationError
from repro.util.bitops import (
    bits_to_ints,
    ints_to_bits,
    mask_for_width,
    to_signed,
    to_unsigned,
)


class TestMask:
    @pytest.mark.parametrize("width,expected", [
        (1, 1), (2, 3), (8, 255), (16, 65535), (32, 2**32 - 1),
    ])
    def test_mask_values(self, width, expected):
        assert mask_for_width(width) == expected

    @pytest.mark.parametrize("width", [0, -1, -8])
    def test_invalid_width_rejected(self, width):
        with pytest.raises(OperationError):
            mask_for_width(width)


class TestSignedness:
    def test_to_unsigned_wraps_negatives(self):
        out = to_unsigned(np.array([-1, -128, 127]), 8)
        assert list(out) == [255, 128, 127]

    def test_to_signed_reinterprets(self):
        out = to_signed(np.array([255, 128, 127, 0]), 8)
        assert list(out) == [-1, -128, 127, 0]

    def test_roundtrip_signed_unsigned(self):
        values = np.arange(-128, 128)
        assert np.array_equal(to_signed(to_unsigned(values, 8), 8), values)

    @given(st.integers(min_value=1, max_value=32),
           st.integers(min_value=-2**31, max_value=2**31 - 1))
    def test_unsigned_always_in_range(self, width, value):
        out = to_unsigned(np.array([value]), width)
        assert 0 <= out[0] <= mask_for_width(width)


class TestTranspose:
    def test_ints_to_bits_lsb_first(self):
        bits = ints_to_bits(np.array([6]), 4)  # 0b0110
        assert bits.shape == (4, 1)
        assert list(bits[:, 0]) == [False, True, True, False]

    def test_roundtrip_unsigned(self):
        rng = np.random.default_rng(0)
        for width in (1, 3, 8, 17, 32):
            values = rng.integers(0, 1 << width, 50)
            assert np.array_equal(
                bits_to_ints(ints_to_bits(values, width)), values)

    def test_roundtrip_signed(self):
        values = np.array([-5, 5, -128, 127, 0])
        bits = ints_to_bits(values, 8)
        assert np.array_equal(bits_to_ints(bits, signed=True), values)

    def test_bits_to_ints_rejects_wrong_rank(self):
        with pytest.raises(OperationError):
            bits_to_ints(np.zeros(8, dtype=bool))

    @given(st.integers(min_value=1, max_value=24),
           st.lists(st.integers(min_value=0, max_value=2**24 - 1),
                    min_size=1, max_size=20))
    def test_roundtrip_property(self, width, raw_values):
        values = np.array(raw_values, dtype=np.int64) & mask_for_width(width)
        assert np.array_equal(
            bits_to_ints(ints_to_bits(values, width)), values)
