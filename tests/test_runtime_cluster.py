"""Differential verification of the sharded multi-module runtime.

The acceptance bar of the runtime subsystem: sharded (and async)
execution must be **bit-identical** to the single-module sequential
paths — ``Simdram.run``/``map``/``run_expr`` — for every catalog
operation at widths {4, 8, 16}, including runs that force eviction and
concurrently submitted dependent jobs.  The reference system uses the
same per-module geometry, so any divergence in sharding, scheduling,
paging or program adoption shows up as a bit mismatch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import expr
from repro.core.framework import Simdram, SimdramConfig
from repro.core.operations import CATALOG, get_operation
from repro.dram.geometry import DramGeometry
from repro.runtime import SimdramCluster

from tests.conftest import edge_and_random_values

WIDTHS = (4, 8, 16)
N_ELEMENTS = 44  # 3 shards over 2 modules; 3 batches on the reference


def small_config(data_rows: int = 512) -> SimdramConfig:
    return SimdramConfig(geometry=DramGeometry.sim_small(
        cols=16, data_rows=data_rows, banks=1))


def operand_vectors(op_name: str, width: int,
                    n: int = N_ELEMENTS) -> list[np.ndarray]:
    spec = get_operation(op_name)
    rng = np.random.default_rng(hash((op_name, width)) % 2**32)
    return [edge_and_random_values(rng, in_width, n)
            for in_width in spec.in_widths(width)]


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("op_name", sorted(CATALOG))
def test_catalog_op_matches_single_module(op_name, width):
    """cluster.run (device tensors) and cluster.map (streaming) both
    reproduce the single-module sequential result bit for bit."""
    spec = get_operation(op_name)
    vectors = operand_vectors(op_name, width)
    reference = Simdram(small_config())
    expected = reference.map(op_name, *vectors, width=width)

    with SimdramCluster(2, config=small_config()) as cluster:
        tensors = [cluster.tensor(v, w) for v, w in
                   zip(vectors, spec.in_widths(width))]
        out = cluster.run(op_name, *tensors)
        assert out.signed == spec.signed
        assert np.array_equal(out.to_numpy(), expected), (
            f"{op_name}@{width}: sharded tensor run diverged")

        streamed = cluster.map(op_name, *vectors, width=width)
        assert np.array_equal(streamed, expected), (
            f"{op_name}@{width}: sharded map diverged")


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("op_name", ["add", "mul", "max", "if_else"])
def test_catalog_op_matches_under_eviction(op_name, width):
    """Same differential with a module too small to keep the working
    set resident: spill/fill churn must not change a single bit."""
    spec = get_operation(op_name)
    vectors = operand_vectors(op_name, width)
    reference = Simdram(small_config())
    expected = reference.map(op_name, *vectors, width=width)

    with SimdramCluster(2, config=small_config(data_rows=72)) as cluster:
        tensors = [cluster.tensor(v, w) for v, w in
                   zip(vectors, spec.in_widths(width))]
        # Pressure tensors make eviction of the operands certain.
        rng = np.random.default_rng(1)
        pressure = [cluster.tensor(rng.integers(0, 1 << 16, N_ELEMENTS),
                                   16) for _ in range(2)]
        cluster.synchronize()
        out = cluster.run(op_name, *tensors)
        got = out.to_numpy()
        if width == 16:
            assert cluster.paging_stats().n_spills > 0
        assert np.array_equal(got, expected), (
            f"{op_name}@{width}: eviction changed the result")
        for tensor in pressure:
            tensor.free()


@pytest.mark.parametrize("width", WIDTHS)
def test_fused_expression_matches_single_module(width):
    """run_expr/map_expr across shards == single-module map_expr."""
    x, w, b = expr.inp("x"), expr.inp("w"), expr.inp("b")
    dag = expr.relu(expr.add(expr.mul(x, w), b))
    rng = np.random.default_rng(width)
    feeds = {name: rng.integers(0, 1 << width, N_ELEMENTS)
             for name in ("x", "w", "b")}

    reference = Simdram(small_config())
    expected = reference.map_expr(dag, feeds, width=width)

    with SimdramCluster(2, config=small_config()) as cluster:
        tensors = {name: cluster.tensor(v, width)
                   for name, v in feeds.items()}
        out = cluster.run_expr(dag, tensors, width=width)
        assert np.array_equal(out.to_numpy(), expected)

        streamed = cluster.map_expr(dag, feeds, width=width)
        assert np.array_equal(streamed, expected)


@pytest.mark.parametrize("width", WIDTHS)
def test_async_dependent_chain_matches_sequential(width):
    """Concurrently submitted dependent jobs == the same pipeline run
    sequentially on one module (same per-module geometry)."""
    rng = np.random.default_rng(width + 100)
    a_host = rng.integers(0, 1 << width, N_ELEMENTS)
    b_host = rng.integers(0, 1 << width, N_ELEMENTS)

    reference = Simdram(small_config())
    step1 = reference.map("add", a_host, b_host, width=width)
    step2 = reference.map("mul", step1, a_host, width=width)
    expected = reference.map("max", step2, b_host, width=width)

    with SimdramCluster(2, config=small_config()) as cluster:
        a = cluster.tensor(a_host, width)
        b = cluster.tensor(b_host, width)
        # Submit the whole dependent chain without waiting in between,
        # plus unrelated jobs that may interleave on the same modules.
        h1 = cluster.submit("add", a, b)
        noise = [cluster.submit("add", b, b) for _ in range(3)]
        h2 = cluster.submit("mul", h1.tensor, a)
        h3 = cluster.submit("max", h2.tensor, b)
        got = h3.result().to_numpy()
        # max is signed; compare in the two's-complement bit domain.
        assert np.array_equal(got, expected)
        for handle in noise:
            handle.result()


def test_uneven_tail_shard():
    """Lengths that don't divide the lane count exercise the partial
    tail shard on every path."""
    for n in (1, 15, 17, 33):
        vectors = [np.arange(n) % 256, (np.arange(n) * 3) % 256]
        reference = Simdram(small_config())
        expected = reference.map("add", *vectors, width=8)
        with SimdramCluster(3, config=small_config()) as cluster:
            a = cluster.tensor(vectors[0], 8)
            b = cluster.tensor(vectors[1], 8)
            assert np.array_equal(cluster.run("add", a, b).to_numpy(),
                                  expected)
            assert np.array_equal(
                cluster.map("add", *vectors, width=8), expected)


def test_tensor_snapshots_host_values():
    """Mutating the host array after tensor() returns must not change
    what was loaded: the async load works on a snapshot."""
    host = np.arange(40) % 256
    with SimdramCluster(2, config=small_config()) as cluster:
        tensor = cluster.tensor(host, 8)
        host[:] = 0
        assert np.array_equal(tensor.to_numpy(), np.arange(40) % 256)


def test_map_expr_rejects_unexpected_feeds():
    from repro.errors import OperationError
    dag = expr.add(expr.inp("x"), expr.inp("y"))
    feeds = {"x": np.arange(8), "y": np.arange(8),
             "bias": np.arange(8)}
    with SimdramCluster(2, config=small_config()) as cluster:
        with pytest.raises(OperationError, match="unexpected"):
            cluster.map_expr(dag, feeds, width=8)


def test_modeled_scaling_across_modules():
    """4 modules shard the same work; modeled makespan shrinks close
    to 4x (modules are independent channels)."""
    vectors = [np.arange(256) % 256, np.arange(256) % 256]
    makespans = {}
    for n_modules in (1, 4):
        with SimdramCluster(n_modules,
                            config=small_config()) as cluster:
            cluster.map("add", *vectors, width=8)
            makespans[n_modules] = cluster.makespan_ns()
    assert makespans[1] > 0 and makespans[4] > 0
    speedup = makespans[1] / makespans[4]
    assert speedup >= 2.5, f"modeled scaling only {speedup:.2f}x"
