"""Tests for the process-variation reliability study."""

import numpy as np
import pytest

from repro.core.compiler import compile_cached
from repro.errors import ConfigError
from repro.reliability.charge_sharing import (
    TraAnalogModel,
    operation_failure_probability,
)
from repro.reliability.variation import (
    TECHNOLOGY_NODES,
    count_tras,
    sweep_technology,
    sweep_variation,
)


class TestChargeSharing:
    def test_deviation_sign_follows_majority(self):
        model = TraAnalogModel()
        caps = np.full((2, 3), model.cell_cap_ff)
        bits = np.array([[True, True, False], [False, False, True]])
        deviation = model.deviation_mv(bits, caps)
        assert deviation[0] > 0  # majority 1 pulls the bitline up
        assert deviation[1] < 0

    def test_deviation_magnitude_reasonable(self):
        model = TraAnalogModel()
        caps = np.full((1, 3), model.cell_cap_ff)
        bits = np.array([[True, True, False]])
        # ~ (VDD/2) * C / (Cbl + 3C) = 600mV * 22/143 = ~92mV.
        assert 60 < model.deviation_mv(bits, caps)[0] < 120

    def test_no_variation_no_failures(self):
        model = TraAnalogModel(sense_offset_mv=0.0)
        assert model.failure_probability(0.0, n_trials=10_000) == 0.0

    def test_failure_rate_monotonic_in_variation(self):
        model = TraAnalogModel()
        rng = np.random.default_rng(0)
        rates = [model.failure_probability(sigma, n_trials=100_000,
                                           rng=rng)
                 for sigma in (0.05, 0.15, 0.25, 0.35)]
        assert rates == sorted(rates)
        assert rates[0] < 1e-4      # reliable at realistic variation
        assert rates[-1] > 1e-3     # fails under extreme variation

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigError):
            TraAnalogModel().failure_probability(-0.1)

    def test_invalid_model_rejected(self):
        with pytest.raises(ConfigError):
            TraAnalogModel(cell_cap_ff=0.0)


class TestOperationFailure:
    def test_compounds_over_tras(self):
        assert operation_failure_probability(0.0, 100) == 0.0
        single = operation_failure_probability(1e-3, 1)
        many = operation_failure_probability(1e-3, 100)
        assert single == pytest.approx(1e-3)
        assert many > 50 * single * 0.9

    def test_bad_probability_rejected(self):
        with pytest.raises(ConfigError):
            operation_failure_probability(1.5, 1)
        with pytest.raises(ConfigError):
            operation_failure_probability(0.5, -1)


class TestSweeps:
    def test_count_tras_counts_fused_forms(self):
        program = compile_cached("add", 8)
        n = count_tras(program)
        # Every MAJ node becomes exactly one TRA (AP or fused AAP).
        assert n >= 3 * 8  # 3 TRAs per full adder

    def test_variation_sweep_shape(self):
        points = sweep_variation(n_trials=20_000,
                                 sigmas=(0.0, 0.1, 0.3))
        assert [p.sigma_fraction for p in points] == [0.0, 0.1, 0.3]
        assert points[0].p_tra <= points[-1].p_tra

    def test_technology_sweep_correct_at_all_nodes(self):
        """The paper's conclusion: correct operation as nodes shrink."""
        program = compile_cached("add", 16)
        points = sweep_technology(program, n_trials=50_000)
        assert [p.node_nm for p in points] == sorted(
            TECHNOLOGY_NODES, reverse=True)
        for point in points:
            assert point.p_operation < 0.01, (
                f"{point.node_nm} nm unexpectedly unreliable")

    def test_technology_nodes_monotone_scaling(self):
        scales = [TECHNOLOGY_NODES[nm][0]
                  for nm in sorted(TECHNOLOGY_NODES, reverse=True)]
        sigmas = [TECHNOLOGY_NODES[nm][1]
                  for nm in sorted(TECHNOLOGY_NODES, reverse=True)]
        assert scales == sorted(scales, reverse=True)
        assert sigmas == sorted(sigmas)
