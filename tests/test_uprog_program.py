"""Unit tests for µOps and the µProgram container."""

import pytest

from repro.dram.energy import DramEnergy
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTiming
from repro.errors import SchedulingError
from repro.uprog.program import MicroProgram, OperandSpec
from repro.uprog.uops import Space, UAap, UAp, URow


class TestURow:
    def test_str(self):
        assert str(URow(Space.INPUT0, 3)) == "in0[3]"

    def test_negative_index_rejected(self):
        with pytest.raises(SchedulingError):
            URow(Space.TEMP, -1)

    def test_ctrl_index_bounds(self):
        URow(Space.CTRL, 1)
        with pytest.raises(SchedulingError):
            URow(Space.CTRL, 2)

    def test_bgroup_index_bounds(self):
        URow(Space.BGROUP, 15)
        with pytest.raises(SchedulingError):
            URow(Space.BGROUP, 16)

    def test_wordline_counts(self):
        assert URow(Space.BGROUP, 12).n_wordlines == 3
        assert URow(Space.BGROUP, 10).n_wordlines == 2
        assert URow(Space.BGROUP, 0).n_wordlines == 1
        assert URow(Space.INPUT1, 5).n_wordlines == 1

    def test_is_input(self):
        assert Space.INPUT0.is_input
        assert Space.INPUT2.is_input
        assert not Space.OUTPUT.is_input


class TestUAp:
    def test_requires_triple(self):
        UAp(URow(Space.BGROUP, 14))
        with pytest.raises(SchedulingError):
            UAp(URow(Space.BGROUP, 0))
        with pytest.raises(SchedulingError):
            UAp(URow(Space.TEMP, 0))


def _program():
    uops = [
        UAap(URow(Space.INPUT0, 0), URow(Space.BGROUP, 0)),
        UAap(URow(Space.INPUT1, 0), URow(Space.BGROUP, 1)),
        UAap(URow(Space.CTRL, 0), URow(Space.BGROUP, 2)),
        UAp(URow(Space.BGROUP, 12)),
        UAap(URow(Space.BGROUP, 0), URow(Space.OUTPUT, 0)),
    ]
    return MicroProgram(
        op_name="and1", backend="simdram", element_width=1,
        inputs=[OperandSpec(Space.INPUT0, 1), OperandSpec(Space.INPUT1, 1)],
        output=OperandSpec(Space.OUTPUT, 1), uops=uops, n_temp_rows=0)


class TestMicroProgram:
    def test_counts(self):
        program = _program()
        assert program.n_aap == 4
        assert program.n_ap == 1
        assert program.n_commands == 5

    def test_stats_wordlines(self):
        stats = _program().stats()
        assert stats.n_ap == 1
        assert stats.ap_wordlines == 3

    def test_latency_matches_timing(self):
        timing = DramTiming.ddr4_2400()
        program = _program()
        assert program.latency_ns(timing) == pytest.approx(
            4 * timing.aap_ns + timing.ap_ns)

    def test_energy_positive(self):
        program = _program()
        energy = program.energy_nj(DramTiming.ddr4_2400(),
                                   DramGeometry.paper(), DramEnergy.ddr4())
        assert energy > 0

    def test_rows_touched(self):
        assert _program().rows_touched() == 3

    def test_serialization_roundtrip(self):
        program = _program()
        clone = MicroProgram.from_dict(program.to_dict())
        assert clone.uops == program.uops
        assert clone.op_name == program.op_name
        assert clone.inputs == program.inputs
        assert clone.output == program.output

    def test_listing_truncates(self):
        text = _program().listing(max_ops=2)
        assert "3 more" in text
        assert "and1" in text

    def test_output_space_enforced(self):
        with pytest.raises(SchedulingError):
            MicroProgram(op_name="bad", backend="simdram", element_width=1,
                         inputs=[], output=OperandSpec(Space.TEMP, 1))

    def test_duplicate_input_space_rejected(self):
        with pytest.raises(SchedulingError):
            MicroProgram(
                op_name="bad", backend="simdram", element_width=1,
                inputs=[OperandSpec(Space.INPUT0, 1),
                        OperandSpec(Space.INPUT0, 1)],
                output=OperandSpec(Space.OUTPUT, 1))

    def test_operand_width_validated(self):
        with pytest.raises(SchedulingError):
            OperandSpec(Space.INPUT0, 0)
