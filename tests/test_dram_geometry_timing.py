"""Unit tests for DRAM geometry, timing and energy models."""

import pytest

from repro.dram.commands import CommandStats
from repro.dram.energy import DramEnergy
from repro.dram.geometry import DramGeometry, N_BITWISE_ROWS, N_CONTROL_ROWS
from repro.dram.timing import DramTiming
from repro.errors import ConfigError, GeometryError


class TestGeometry:
    def test_paper_defaults(self):
        g = DramGeometry.paper()
        assert g.cols == 65536
        assert g.banks == 16
        assert g.row_bytes == 8192

    def test_rows_include_reserved_groups(self):
        g = DramGeometry(data_rows=1014)
        assert g.rows_per_subarray == 1014 + N_BITWISE_ROWS + N_CONTROL_ROWS

    def test_lanes_scale_with_banks(self):
        g = DramGeometry.paper()
        assert g.lanes(1) == 65536
        assert g.lanes(16) == 65536 * 16
        assert g.lanes() == g.lanes(16)

    @pytest.mark.parametrize("n_banks", [0, 17, -1])
    def test_lanes_bank_bounds(self, n_banks):
        with pytest.raises(GeometryError):
            DramGeometry.paper().lanes(n_banks)

    @pytest.mark.parametrize("kwargs", [
        {"cols": 0}, {"data_rows": 0}, {"banks": 0},
        {"subarrays_per_bank": 0}, {"chips_per_rank": 0},
    ])
    def test_invalid_geometry_rejected(self, kwargs):
        with pytest.raises(GeometryError):
            DramGeometry(**kwargs)

    def test_sim_small_is_small(self):
        g = DramGeometry.sim_small()
        assert g.cols < DramGeometry.paper().cols


class TestTiming:
    def test_ddr4_2400_derived_latencies(self):
        t = DramTiming.ddr4_2400()
        assert t.ap_ns == pytest.approx(t.t_ras_ns + t.t_rp_ns)
        assert t.aap_ns == pytest.approx(2 * t.t_ras_ns + t.t_rp_ns)
        assert t.aap_ns > t.ap_ns
        assert t.t_rc_ns == pytest.approx(45.32, abs=0.01)

    def test_io_rate(self):
        t = DramTiming.ddr4_2400()
        assert t.io_ns_per_byte() == pytest.approx(1 / 19.2)

    def test_invalid_timing_rejected(self):
        with pytest.raises(ConfigError):
            DramTiming(t_ras_ns=0)


class TestEnergy:
    def test_act_pre_energy_positive_and_small(self):
        e = DramEnergy.ddr4()
        per_chip = e.act_pre_nj_chip(DramTiming.ddr4_2400())
        assert 0.1 < per_chip < 5.0  # nJ, sanity band for DDR4

    def test_rank_energy_scales_with_chips(self):
        e = DramEnergy.ddr4()
        t = DramTiming.ddr4_2400()
        g8 = DramGeometry.paper()
        g4 = DramGeometry(chips_per_rank=4)
        assert e.act_pre_nj(t, g8) == pytest.approx(
            2 * e.act_pre_nj(t, g4))

    def test_extra_wordlines_cost_more(self):
        e = DramEnergy.ddr4()
        t = DramTiming.ddr4_2400()
        g = DramGeometry.paper()
        assert e.ap_nj(t, g, n_wordlines=3) > e.act_pre_nj(t, g, 1)

    def test_io_energy(self):
        assert DramEnergy.ddr4().io_nj(1000) == pytest.approx(7.0)

    def test_invalid_energy_rejected(self):
        with pytest.raises(ConfigError):
            DramEnergy(idd0_ma=10.0, idd3n_ma=42.0)


class TestCommandStats:
    def test_latency_accumulates(self):
        stats = CommandStats()
        stats.record_ap(3)
        stats.record_aap(1, 1)
        t = DramTiming.ddr4_2400()
        assert stats.latency_ns(t) == pytest.approx(t.ap_ns + t.aap_ns)
        assert stats.n_commands == 2
        assert stats.n_activations == 3

    def test_merge_and_scale(self):
        a = CommandStats(n_ap=1, n_aap=2, ap_wordlines=3,
                         aap_src_wordlines=2, aap_dst_wordlines=2)
        b = a.merged_with(a)
        assert b.n_ap == 2 and b.n_aap == 4
        c = a.scaled(3)
        assert c.n_ap == 3 and c.n_aap == 6

    def test_energy_includes_io(self):
        t = DramTiming.ddr4_2400()
        g = DramGeometry.paper()
        e = DramEnergy.ddr4()
        quiet = CommandStats(n_ap=1, ap_wordlines=3)
        noisy = CommandStats(n_ap=1, ap_wordlines=3, host_bits_read=8000)
        assert noisy.energy_nj(t, g, e) > quiet.energy_nj(t, g, e)

    def test_energy_matches_model_for_single_commands(self):
        t = DramTiming.ddr4_2400()
        g = DramGeometry.paper()
        e = DramEnergy.ddr4()
        ap = CommandStats()
        ap.record_ap(3)
        assert ap.energy_nj(t, g, e) == pytest.approx(e.ap_nj(t, g, 3))
        aap = CommandStats()
        aap.record_aap(1, 2)
        assert aap.energy_nj(t, g, e) == pytest.approx(
            e.aap_nj(t, g, 1, 2))
