"""Tests for the execution layer: layout binding, control unit, memory
allocator and transposition unit."""

import numpy as np
import pytest

from repro.dram.bank import DramModule
from repro.dram.geometry import DramGeometry
from repro.dram.rows import b_row, ctrl_row, data_row
from repro.dram.subarray import Subarray
from repro.errors import AllocationError, ExecutionError, OperationError
from repro.exec.control_unit import ControlUnit, ProgramKey
from repro.exec.layout import RowLayout
from repro.exec.memory import RowBlock, VerticalAllocator
from repro.exec.transposition import TranspositionUnit
from repro.uprog.program import MicroProgram, OperandSpec
from repro.uprog.uops import Space, UAap, UAp, URow


def and_program():
    uops = [
        UAap(URow(Space.INPUT0, 0), URow(Space.BGROUP, 0)),
        UAap(URow(Space.INPUT1, 0), URow(Space.BGROUP, 1)),
        UAap(URow(Space.CTRL, 0), URow(Space.BGROUP, 2)),
        UAp(URow(Space.BGROUP, 12)),
        UAap(URow(Space.BGROUP, 0), URow(Space.OUTPUT, 0)),
    ]
    return MicroProgram(
        op_name="and1", backend="simdram", element_width=1,
        inputs=[OperandSpec(Space.INPUT0, 1), OperandSpec(Space.INPUT1, 1)],
        output=OperandSpec(Space.OUTPUT, 1), uops=uops)


class TestRowLayout:
    def test_resolve_spaces(self):
        layout = RowLayout({Space.INPUT0: 10, Space.OUTPUT: 20})
        assert layout.resolve(URow(Space.INPUT0, 3)) == data_row(13)
        assert layout.resolve(URow(Space.OUTPUT, 0)) == data_row(20)
        assert layout.resolve(URow(Space.CTRL, 1)) == ctrl_row(1)
        assert layout.resolve(URow(Space.BGROUP, 12)) == b_row(12)

    def test_unbound_space_rejected(self):
        layout = RowLayout({})
        with pytest.raises(AllocationError):
            layout.resolve(URow(Space.TEMP, 0))

    def test_output_overlapping_input_rejected(self):
        program = and_program()
        layout = RowLayout({Space.INPUT0: 0, Space.INPUT1: 1,
                            Space.OUTPUT: 1})
        with pytest.raises(AllocationError):
            layout.check(program, DramGeometry.sim_small())

    def test_aliased_inputs_allowed(self):
        """Using one vector as both sources is a legal read-only alias."""
        program = and_program()
        layout = RowLayout({Space.INPUT0: 0, Space.INPUT1: 0,
                            Space.OUTPUT: 5})
        layout.check(program, DramGeometry.sim_small())

    def test_check_out_of_range_rejected(self):
        program = and_program()
        geometry = DramGeometry.sim_small(data_rows=4)
        layout = RowLayout({Space.INPUT0: 0, Space.INPUT1: 1,
                            Space.OUTPUT: 99})
        with pytest.raises(AllocationError):
            layout.check(program, geometry)

    def test_check_accepts_valid_layout(self):
        program = and_program()
        layout = RowLayout({Space.INPUT0: 0, Space.INPUT1: 1,
                            Space.OUTPUT: 2})
        layout.check(program, DramGeometry.sim_small())


class TestControlUnit:
    def test_execute_and(self):
        geometry = DramGeometry.sim_small(cols=16, data_rows=8)
        subarray = Subarray(geometry, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        a = rng.integers(0, 2, 16).astype(bool)
        b = rng.integers(0, 2, 16).astype(bool)
        subarray.write_row(data_row(0), a)
        subarray.write_row(data_row(1), b)
        layout = RowLayout({Space.INPUT0: 0, Space.INPUT1: 1,
                            Space.OUTPUT: 2})
        stats = ControlUnit().execute(and_program(), subarray, layout)
        assert np.array_equal(subarray.peek(data_row(2)), a & b)
        assert stats.n_aap == 4
        assert stats.n_ap == 1

    def test_install_lookup_roundtrip(self):
        cu = ControlUnit()
        key = cu.install(and_program())
        assert cu.lookup(key).op_name == "and1"
        assert key in cu.installed

    def test_lookup_missing_rejected(self):
        with pytest.raises(ExecutionError):
            ControlUnit().lookup(ProgramKey("nope", 8, "simdram"))

    def test_scratchpad_capacity_enforced(self):
        cu = ControlUnit(scratchpad_uops=3)
        with pytest.raises(ExecutionError):
            cu.install(and_program())  # 5 µOps > 3

    def test_reinstall_replaces_not_accumulates(self):
        cu = ControlUnit(scratchpad_uops=10)
        cu.install(and_program())
        cu.install(and_program())  # same key: replaces
        assert cu.used_uops() == 5

    def test_execute_on_module_broadcasts(self):
        geometry = DramGeometry.sim_small(cols=8, data_rows=8, banks=3)
        module = DramModule(geometry)
        layout = RowLayout({Space.INPUT0: 0, Space.INPUT1: 1,
                            Space.OUTPUT: 2})
        ones = np.ones(module.lanes, dtype=bool)
        module.write_striped(data_row(0), ones)
        module.write_striped(data_row(1), ones)
        stats = ControlUnit().execute_on_module(and_program(), module,
                                                layout)
        assert stats.n_aap == 4 * 3  # every bank executed the stream
        assert module.read_striped(data_row(2)).all()


class TestVerticalAllocator:
    def test_alloc_first_fit(self):
        allocator = VerticalAllocator(DramGeometry.sim_small(data_rows=32))
        a = allocator.alloc(8)
        b = allocator.alloc(8)
        assert a.base == 0 and b.base == 8
        assert allocator.free_rows() == 16

    def test_free_and_coalesce(self):
        allocator = VerticalAllocator(DramGeometry.sim_small(data_rows=32))
        a = allocator.alloc(8)
        b = allocator.alloc(8)
        allocator.free(a)
        allocator.free(b)
        assert allocator.free_rows() == 32
        big = allocator.alloc(32)  # only possible if extents coalesced
        assert big.base == 0

    def test_out_of_rows_rejected(self):
        allocator = VerticalAllocator(DramGeometry.sim_small(data_rows=8))
        allocator.alloc(8)
        with pytest.raises(AllocationError):
            allocator.alloc(1)

    def test_double_free_rejected(self):
        allocator = VerticalAllocator(DramGeometry.sim_small(data_rows=8))
        block = allocator.alloc(4)
        allocator.free(block)
        with pytest.raises(AllocationError):
            allocator.free(block)

    def test_zero_width_rejected(self):
        allocator = VerticalAllocator(DramGeometry.sim_small())
        with pytest.raises(AllocationError):
            allocator.alloc(0)

    def test_allocated_blocks_listing(self):
        allocator = VerticalAllocator(DramGeometry.sim_small(data_rows=32))
        allocator.alloc(4)
        allocator.alloc(4)
        assert [b.base for b in allocator.allocated_blocks] == [0, 4]


class TestTranspositionUnit:
    def test_roundtrip_through_module(self):
        geometry = DramGeometry.sim_small(cols=16, data_rows=40, banks=2)
        module = DramModule(geometry)
        unit = TranspositionUnit()
        rng = np.random.default_rng(2)
        values = rng.integers(0, 256, 20)
        block = RowBlock(4, 8)
        unit.host_to_vertical(module, block, values, 8)
        out = unit.vertical_to_host(module, block, 20, 8)
        assert np.array_equal(out, values)

    def test_signed_readback(self):
        geometry = DramGeometry.sim_small(cols=8, data_rows=16, banks=1)
        module = DramModule(geometry)
        unit = TranspositionUnit()
        values = np.array([-3, 5, -128, 127])
        block = RowBlock(0, 8)
        unit.host_to_vertical(module, block, values, 8)
        out = unit.vertical_to_host(module, block, 4, 8, signed=True)
        assert np.array_equal(out, values)

    def test_too_many_elements_rejected(self):
        geometry = DramGeometry.sim_small(cols=4, data_rows=16, banks=1)
        module = DramModule(geometry)
        unit = TranspositionUnit()
        with pytest.raises(OperationError):
            unit.host_to_vertical(module, RowBlock(0, 8),
                                  np.arange(99), 8)

    def test_block_too_narrow_rejected(self):
        geometry = DramGeometry.sim_small(cols=4, data_rows=16, banks=1)
        module = DramModule(geometry)
        unit = TranspositionUnit()
        with pytest.raises(OperationError):
            unit.host_to_vertical(module, RowBlock(0, 4),
                                  np.arange(4), 8)

    def test_cost_scales_with_volume(self):
        unit = TranspositionUnit()
        small = unit.transpose_cost(1000, 8)
        large = unit.transpose_cost(2000, 8)
        assert large.latency_ns == pytest.approx(2 * small.latency_ns)
        assert large.energy_nj == pytest.approx(2 * small.energy_nj)
        assert small.bytes_moved == 1000
