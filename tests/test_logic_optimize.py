"""Tests for the MIG optimizer (Step 1 logic minimization)."""

import numpy as np
import pytest

from repro.core.operations import PAPER_OPERATIONS, get_operation
from repro.logic import library
from repro.logic.circuit import Circuit
from repro.logic.mig import Mig
from repro.logic.optimize import optimize, rebuild
from repro.util.bitops import bits_to_ints, ints_to_bits


def _adder_mig(width=6, style="maj"):
    c = Circuit()
    av = [c.input(f"a{i}") for i in range(width)]
    bv = [c.input(f"b{i}") for i in range(width)]
    total, _ = library.ripple_add(c, av, bv, style=style)
    for i, net in enumerate(total):
        c.set_output(f"y{i}", net)
    return Mig.from_circuit(c), width


class TestRebuild:
    def test_preserves_interface(self):
        mig, _ = _adder_mig()
        out = rebuild(mig)
        assert out.input_names == mig.input_names
        assert [name for name, _ in out.outputs] == [
            name for name, _ in mig.outputs]

    def test_never_increases_nodes(self):
        for style in ("maj", "classic"):
            mig, _ = _adder_mig(style=style)
            assert rebuild(mig).n_nodes <= mig.n_nodes

    def test_removes_dead_nodes(self):
        m = Mig()
        a, b, c = m.input("a"), m.input("b"), m.input("c")
        m.and_(a, b)  # dead
        m.set_output("y", m.or_(a, c))
        assert rebuild(m).n_nodes == 1

    def test_constant_output_preserved(self):
        m = Mig()
        a = m.input("a")
        m.set_output("y", m.and_(a, ~a))  # constant 0
        out = rebuild(m)
        assert bool(out.evaluate({"a": np.array([True])})["y"][0]) is False

    def test_passthrough_output_preserved(self):
        m = Mig()
        a = m.input("a")
        m.set_output("y", ~a)
        out = rebuild(m)
        assert bool(out.evaluate({"a": np.array([True])})["y"][0]) is False


class TestOptimize:
    def test_reaches_fixpoint(self):
        mig, _ = _adder_mig()
        optimized, stats = optimize(mig)
        again, stats2 = optimize(optimized)
        assert again.n_nodes == optimized.n_nodes
        assert stats.nodes_after <= stats.nodes_before

    def test_stats_fields_consistent(self):
        mig, _ = _adder_mig()
        optimized, stats = optimize(mig)
        assert stats.nodes_before == mig.n_nodes
        assert stats.nodes_after == optimized.n_nodes
        assert 0 <= stats.node_reduction <= 1
        assert stats.passes >= 1

    def test_equivalence_after_optimization(self):
        mig, width = _adder_mig()
        optimized, _ = optimize(mig)
        rng = np.random.default_rng(0)
        a = rng.integers(0, 2**width, 64)
        b = rng.integers(0, 2**width, 64)
        abits, bbits = ints_to_bits(a, width), ints_to_bits(b, width)
        inputs = {f"a{i}": abits[i] for i in range(width)}
        inputs |= {f"b{i}": bbits[i] for i in range(width)}
        got = bits_to_ints(np.stack(
            [optimized.evaluate(inputs)[f"y{i}"] for i in range(width)]))
        assert np.array_equal(got, (a + b) % 2**width)

    @pytest.mark.parametrize("op_name", PAPER_OPERATIONS)
    def test_equivalence_for_every_catalog_operation(self, op_name):
        """Optimizing any catalog operation's MIG keeps it bit-exact."""
        width = 4
        spec = get_operation(op_name)
        circuit = spec.build_circuit(width, "maj")
        mig = Mig.from_circuit(circuit)
        optimized, _ = optimize(mig)

        rng = np.random.default_rng(1)
        n = 48
        inputs = {}
        raw = []
        for prefix, in_width in zip(spec.operand_names(),
                                    spec.in_widths(width)):
            values = rng.integers(0, 2**in_width, n)
            if op_name == "div" and prefix == "b":
                values = np.maximum(values, 1)
            raw.append(values)
            bits = ints_to_bits(values, in_width)
            inputs.update({f"{prefix}{i}": bits[i]
                           for i in range(in_width)})
        out_width = spec.out_width(width)
        got = bits_to_ints(np.stack(
            [optimized.evaluate(inputs)[f"y{i}"]
             for i in range(out_width)]))
        assert np.array_equal(got, spec.golden(raw, width)), op_name

    def test_xor_chain_shrinks(self):
        # XOR-heavy logic benefits most from rebuilding + hashing.
        m = Mig()
        x = m.input("x0")
        for i in range(1, 8):
            x = m.xor(x, m.input(f"x{i}"))
        m.set_output("y", x)
        optimized, stats = optimize(m)
        assert optimized.n_nodes <= m.n_nodes
