"""Hypothesis profiles: fast PR runs vs. thorough nightly sweeps.

Imported by ``tests/conftest.py`` at collection time, so the profiles
are registered before any test module loads.  Select a profile with
``pytest --hypothesis-profile=ci`` (what PR CI uses), the
``HYPOTHESIS_PROFILE`` environment variable, or leave the default
``dev``.  Suites that pin their own example budgets scale them through
:func:`scaled_examples`, so one switch drives the whole suite.

Lives in its own module (not ``conftest.py``) because the repo has two
conftests — ``tests/`` and ``benchmarks/`` — and ``import conftest``
resolves to whichever pytest registered first.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

_SUPPRESS = [HealthCheck.too_slow, HealthCheck.data_too_large]

#: max_examples the ``dev`` profile runs; :func:`scaled_examples`
#: treats a suite's pinned budget as calibrated against this profile.
DEV_EXAMPLES = 30

settings.register_profile("ci", max_examples=10, deadline=None,
                          suppress_health_check=_SUPPRESS)
settings.register_profile("dev", max_examples=DEV_EXAMPLES, deadline=None,
                          suppress_health_check=_SUPPRESS)
settings.register_profile("thorough", max_examples=4 * DEV_EXAMPLES,
                          deadline=None, suppress_health_check=_SUPPRESS)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def scaled_examples(base: int) -> int:
    """Scale a suite-specific example budget by the active profile.

    ``base`` is the budget the suite wants under the ``dev`` profile;
    the ``ci`` profile shrinks it proportionally (fast PR feedback) and
    ``thorough`` grows it (nightly sweeps).
    """
    return max(1, base * settings().max_examples // DEV_EXAMPLES)


#: Skip marker for sweeps that only the scheduled nightly CI job runs
#: (set NIGHTLY=1 to run them locally).
nightly = pytest.mark.skipif(
    os.environ.get("NIGHTLY") != "1",
    reason="nightly-only full sweep (set NIGHTLY=1 to run)")
