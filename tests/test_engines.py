"""The execution-engine registry and the compiled backends.

Covers the registry contract (duplicate names, unknown strings,
``available()`` gating, the ``"auto"`` resolver), the typed
:class:`~repro.errors.EngineError` paths in the control unit, engine
instances riding through the cluster's :class:`JobScheduler` worker
threads, compiled-callable cache accounting, and bit-exactness of
every registered engine on the cluster and serve paths (the module
path is swept exhaustively in ``test_exec_plan.py``).
"""

import threading
import warnings

import numpy as np
import pytest

from repro.core.expr import inp, op
from repro.core.framework import Simdram, SimdramConfig
from repro.dram.geometry import DramGeometry
from repro.errors import EngineError, ExecutionError
from repro.exec import engines as engines_mod
from repro.exec.engines import (
    AUTO,
    CompiledEngine,
    NumbaEngine,
    VectorizedEngine,
    get_engine,
    list_engines,
    register_engine,
    resolve_engine,
    unregister_engine,
)
from repro.lazy import LazyDevice
from repro.runtime.cluster import SimdramCluster
from repro.serve import ServeConfig, SimdramService

GEOMETRY = DramGeometry.sim_small(cols=32, data_rows=512, banks=2)

#: Engines runnable in this process (compiled-numba joins in the CI
#: leg that installs numba).
AVAILABLE = tuple(list_engines(available_only=True))


def _make_sim(trace: bool = False) -> Simdram:
    return Simdram(SimdramConfig(geometry=GEOMETRY), trace=trace,
                   seed=9)


class _FakeEngine:
    """A registrable test double."""

    vectorizable_only = True
    executes_plans = True

    def __init__(self, name: str, priority: int = 99,
                 is_available: bool = True) -> None:
        self.name = name
        self.priority = priority
        self.is_available = is_available
        self.compiled: list = []

    def available(self) -> bool:
        return self.is_available

    def compile(self, plan):
        self.compiled.append(plan)
        return plan.execute


@pytest.fixture
def fake_engine():
    """Register a throwaway engine; always unregistered afterwards."""
    registered: list[str] = []

    def factory(name: str, **kwargs) -> _FakeEngine:
        engine = _FakeEngine(name, **kwargs)
        register_engine(engine)
        registered.append(name)
        return engine

    yield factory
    for name in registered:
        unregister_engine(name)


# ---------------------------------------------------------------------------
# the registry contract
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        names = list_engines()
        for name in ("per_bank", "vectorized", "compiled",
                     "compiled-numba"):
            assert name in names
        assert "auto" not in names  # the resolver, not an engine

    def test_priority_order(self):
        names = list_engines()
        assert names.index("compiled") < names.index("vectorized")
        assert names.index("vectorized") < names.index("per_bank")

    def test_duplicate_name_raises(self, fake_engine):
        fake_engine("dup-engine")
        with pytest.raises(EngineError, match="already registered"):
            register_engine(_FakeEngine("dup-engine"))

    def test_replace_substitutes(self, fake_engine):
        fake_engine("swap-engine")
        replacement = _FakeEngine("swap-engine")
        register_engine(replacement, replace=True)
        assert get_engine("swap-engine") is replacement

    def test_auto_name_not_registrable(self):
        with pytest.raises(EngineError):
            register_engine(_FakeEngine("auto"))

    def test_get_engine_passes_instances_through(self):
        engine = CompiledEngine()
        assert get_engine(engine) is engine
        assert get_engine("auto") is AUTO

    def test_unknown_string_raises_typed_error(self):
        with pytest.raises(EngineError, match="registered engines"):
            get_engine("warp")

    def test_unknown_string_warns_once_per_process(self, monkeypatch):
        monkeypatch.setattr(engines_mod, "_WARNED_UNKNOWN", False)
        with pytest.warns(DeprecationWarning, match="list_engines"):
            with pytest.raises(EngineError):
                get_engine("warp")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second time: silent
            with pytest.raises(EngineError):
                get_engine("warp")

    def test_auto_skips_unavailable(self, fake_engine):
        fake_engine("ghost-engine", priority=999, is_available=False)
        assert resolve_engine("auto").name != "ghost-engine"

    def test_auto_prefers_highest_available_priority(self, fake_engine):
        engine = fake_engine("eager-engine", priority=999)
        assert resolve_engine("auto") is engine

    def test_auto_nonvectorizable_falls_to_per_bank(self):
        assert resolve_engine("auto", vectorizable=False).name \
            == "per_bank"

    def test_explicit_unavailable_engine_raises(self, fake_engine):
        fake_engine("ghost-engine", is_available=False)
        with pytest.raises(EngineError, match="unavailable"):
            resolve_engine("ghost-engine")

    def test_numba_gated_by_importability(self):
        engine = NumbaEngine()
        try:
            import numba  # noqa: F401
            assert engine.available()
        except ImportError:
            assert not engine.available()
            with pytest.raises(EngineError, match="numba"):
                engine.compile(None)


# ---------------------------------------------------------------------------
# control-unit error paths (satellite: typed EngineError + auto fallback)
# ---------------------------------------------------------------------------
class TestControlUnitErrorPaths:
    @pytest.mark.parametrize("engine", ["vectorized", "compiled"])
    def test_vectorizable_only_on_traced_module_raises_typed(
            self, engine):
        sim = _make_sim(trace=True)
        a = sim.array([1, 2], width=8)
        b = sim.array([3, 4], width=8)
        with pytest.raises(EngineError, match="traced"):
            sim.run("add", a, b, engine=engine)

    def test_engine_instance_on_traced_module_raises_typed(self):
        sim = _make_sim(trace=True)
        a = sim.array([1, 2], width=8)
        b = sim.array([3, 4], width=8)
        with pytest.raises(EngineError):
            sim.run("add", a, b, engine=VectorizedEngine())

    def test_engine_error_is_execution_error(self):
        # Legacy callers catch ExecutionError; the typed subclass must
        # stay inside that net.
        assert issubclass(EngineError, ExecutionError)

    def test_auto_silently_falls_back_on_traced_module(self):
        sim = _make_sim(trace=True)
        a = sim.array([1, 2, 3], width=8)
        b = sim.array([10, 20, 30], width=8)
        out = sim.run("add", a, b, engine="auto")  # must not raise
        assert np.array_equal(out.to_numpy(), [11, 22, 33])

    def test_unknown_engine_string_raises_before_dispatch(self):
        sim = _make_sim()
        a = sim.array([1], width=8)
        b = sim.array([2], width=8)
        with pytest.raises(EngineError):
            sim.run("add", a, b, engine="warp")


# ---------------------------------------------------------------------------
# engine instances through every public entry point
# ---------------------------------------------------------------------------
class TestInstanceEntryPoints:
    def test_module_run_and_map_accept_instances(self):
        sim = _make_sim()
        engine = CompiledEngine()
        a = sim.array([5, 6, 7], width=8)
        b = sim.array([1, 2, 3], width=8)
        out = sim.run("sub", a, b, engine=engine)
        assert np.array_equal(out.to_numpy(), [4, 4, 4])
        mapped = sim.map("add", np.arange(100), np.arange(100),
                         width=8, engine=engine)
        assert np.array_equal(mapped, np.arange(100) * 2)

    def test_module_expr_entry_points_accept_instances(self):
        sim = _make_sim()
        engine = CompiledEngine()
        root = op("add", op("mul", inp("a"), inp("w")), inp("b"))
        feeds = {"a": sim.array([2, 3], width=8),
                 "w": sim.array([4, 5], width=8),
                 "b": sim.array([1, 1], width=8)}
        out = sim.run_expr(root, feeds, width=8, engine=engine)
        assert np.array_equal(out.to_numpy(), [9, 16])
        mapped = sim.map_expr(
            root, {"a": np.array([2, 3]), "w": np.array([4, 5]),
                   "b": np.array([1, 1])}, width=8, engine=engine)
        assert np.array_equal(mapped, [9, 16])

    def test_lazy_tensor_evaluate_accepts_engine(self):
        device = LazyDevice(_make_sim())
        x = device.array([1, 2, 3], width=8)
        y = device.array([4, 5, 6], width=8)
        total = (x + y).evaluate(engine=CompiledEngine())
        assert np.array_equal(total.numpy(), [5, 7, 9])

    def test_lazy_evaluate_accepts_engine_name(self):
        device = LazyDevice(_make_sim())
        x = device.array([7, 8], width=8)
        y = device.array([1, 2], width=8)
        [out] = device.evaluate([x * y], engine="compiled")
        assert np.array_equal(out, [7, 16])


# ---------------------------------------------------------------------------
# cluster: resolved instance on the job, worker-thread safety
# ---------------------------------------------------------------------------
class TestClusterEngines:
    def test_job_handle_carries_resolved_engine(self):
        with SimdramCluster(n_modules=2,
                            config=SimdramConfig(geometry=GEOMETRY)
                            ) as cluster:
            a = cluster.tensor(np.arange(8), width=8)
            b = cluster.tensor(np.arange(8), width=8)
            job = cluster.submit("add", a, b, engine="compiled")
            assert job.engine is get_engine("compiled")
            job.result()
            auto_job = cluster.submit("add", a, b)
            assert auto_job.engine is AUTO
            auto_job.result()

    @pytest.mark.parametrize("engine", AVAILABLE)
    def test_cluster_bit_exact_per_engine(self, engine):
        rng = np.random.default_rng(17)
        a = rng.integers(0, 200, 100)
        b = rng.integers(0, 200, 100)
        with SimdramCluster(n_modules=2,
                            config=SimdramConfig(geometry=GEOMETRY)
                            ) as cluster:
            ta = cluster.tensor(a, width=8)
            tb = cluster.tensor(b, width=8)
            out = cluster.run("add", ta, tb, engine=engine)
            assert np.array_equal(cluster.read_tensor(out),
                                  (a + b) % 256)
            mapped = cluster.map("mul", a, b, width=8, engine=engine)
            assert np.array_equal(mapped, (a * b) % 256)

    def test_one_instance_shared_across_worker_threads(self):
        """One CompiledEngine instance serves concurrent jobs on every
        scheduler worker; compiles happen under the per-module control
        unit lock, so results stay bit-exact with no duplicated or
        torn codegen state."""
        engine = CompiledEngine()
        rng = np.random.default_rng(23)
        vectors = [(rng.integers(0, 100, 64), rng.integers(0, 100, 64))
                   for _ in range(12)]
        with SimdramCluster(n_modules=4,
                            config=SimdramConfig(geometry=GEOMETRY)
                            ) as cluster:
            jobs = []
            for a, b in vectors:
                ta = cluster.tensor(a, width=8)
                tb = cluster.tensor(b, width=8)
                jobs.append((a, b, cluster.submit("add", ta, tb,
                                                  engine=engine)))
            for a, b, job in jobs:
                out = job.result()
                assert np.array_equal(cluster.read_tensor(out),
                                      (a + b) % 256)

    def test_engine_compile_is_plan_pure(self):
        """compile() twice on one plan returns independent executors —
        no mutable state shared through the engine instance."""
        sim = _make_sim()
        a = sim.array([1, 2], width=8)
        b = sim.array([3, 4], width=8)
        sim.run("add", a, b, engine="compiled").free()
        (plan,) = sim.control._plan_cache.values()
        engine = CompiledEngine()
        first, second = engine.compile(plan), engine.compile(plan)
        assert first is not second
        lock = threading.Lock()
        errors = []

        def replay(executor):
            try:
                data, planes = sim.module.vector_state(2)
                with lock:  # state is shared; codegen paths are not
                    executor(data, planes)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=replay, args=(fn,))
                   for fn in (first, second)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


# ---------------------------------------------------------------------------
# cache accounting
# ---------------------------------------------------------------------------
class TestCompiledCacheAccounting:
    def test_kernel_cache_counts_compiled_callables(self):
        sim = _make_sim()
        a = sim.array([1, 2], width=8)
        b = sim.array([3, 4], width=8)
        before = sim.kernel_cache_size
        sim.run("add", a, b, engine="compiled").free()
        # +1 µProgram, +1 compiled executor on its cached plan.
        assert sim.kernel_cache_size == before + 2
        assert sim.control.compiled_cache_size() == 1
        # Replaying hits both caches: nothing new is compiled.
        sim.run("add", a, b, engine="compiled").free()
        assert sim.kernel_cache_size == before + 2
        # A second engine adds its own executor to the same plan.
        sim.run("add", a, b, engine="vectorized").free()
        assert sim.control.compiled_cache_size() == 2
        assert sim.kernel_cache_size == before + 3

    def test_executors_evicted_with_their_plan(self):
        sim = _make_sim()
        sim.control.plan_cache_size = 1
        a = sim.array([1, 2], width=8)
        b = sim.array([3, 4], width=8)
        sim.run("add", a, b, engine="compiled").free()
        assert sim.control.compiled_cache_size() == 1
        # A different layout compiles a second plan; the LRU bound
        # evicts the first plan and its executor with it.
        c = sim.run("add", a, b, engine="compiled")
        sim.run("add", c, b, engine="compiled").free()
        assert sim.control.compiled_cache_size() == 1

    def test_warm_executor_precompiles(self):
        sim = _make_sim()
        program = sim.compile("add", 8)
        before = sim.control.compiled_cache_size()
        sim.warm_executor(program, (8, 8), 8, engine="compiled")
        assert sim.control.compiled_cache_size() == before + 1
        # The warmed layout is the one map() binds: no new compiles.
        sim.map("add", [1, 2, 3], [4, 5, 6], width=8,
                engine="compiled")
        assert sim.control.compiled_cache_size() == before + 1


# ---------------------------------------------------------------------------
# serve path: every engine bit-exact end to end
# ---------------------------------------------------------------------------
class TestServeEngines:
    @pytest.mark.parametrize("engine", AVAILABLE)
    def test_serve_bit_exact_per_engine(self, engine):
        rng = np.random.default_rng(31)
        a = rng.integers(0, 200, 48)
        b = rng.integers(0, 200, 48)
        sim = _make_sim()
        with SimdramService(sim) as service:
            handle = service.submit("add", a, b, width=8,
                                    engine=engine)
            assert np.array_equal(handle.result(60), (a + b) % 256)

    def test_serve_accepts_engine_instance_and_config_default(self):
        sim = _make_sim()
        config = ServeConfig(engine=CompiledEngine())
        with SimdramService(sim, config) as service:
            handle = service.submit("mul", [3, 4], [5, 6], width=8)
            assert np.array_equal(handle.result(60), [15, 24])
            explicit = service.submit("add", [1], [2], width=8,
                                      engine=VectorizedEngine())
            assert np.array_equal(explicit.result(60), [3])

    def test_packing_keys_by_resolved_engine_name(self):
        """Same kernel at different engines must not share a pack."""
        sim = _make_sim()
        with SimdramService(
                sim, ServeConfig(max_lanes=64,
                                 max_wait_s=30.0)) as service:
            h1 = service.submit("add", [1], [2], width=8,
                                engine="compiled")
            h2 = service.submit("add", [3], [4], width=8,
                                engine="vectorized")
            service.flush()
            assert np.array_equal(h1.result(60), [3])
            assert np.array_equal(h2.result(60), [7])
            assert service.stats()["packing"]["dispatches"] == 2
