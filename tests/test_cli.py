"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_op_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compile", "frobnicate", "8"])

    def test_backend_choices(self):
        args = build_parser().parse_args(
            ["compile", "add", "8", "--backend", "ambit"])
        assert args.backend == "ambit"


class TestCommands:
    def test_ops_lists_catalog(self, capsys):
        assert main(["ops"]) == 0
        out = capsys.readouterr().out
        assert "add" in out and "xor_red" in out
        assert "paper" in out and "extension" in out

    def test_compile_prints_listing(self, capsys):
        assert main(["compile", "add", "8"]) == 0
        out = capsys.readouterr().out
        assert "AAP" in out and "latency" in out

    def test_compile_full_listing(self, capsys):
        assert main(["compile", "gt", "4", "--full"]) == 0
        out = capsys.readouterr().out
        assert "more)" not in out

    def test_compare_prints_platforms(self, capsys):
        assert main(["compare", "add", "8"]) == 0
        out = capsys.readouterr().out
        for platform in ("CPU", "GPU", "Ambit:1", "SIMDRAM:16"):
            assert platform in out

    def test_demo_runs_green(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "verified against numpy" in out

    def test_cluster_runs_green(self, capsys):
        assert main(["cluster", "--modules", "2", "--op", "add",
                     "--n", "200", "--cols", "32", "--data-rows", "64",
                     "--banks", "1"]) == 0
        out = capsys.readouterr().out
        assert "2-module cluster" in out
        assert "OK" in out and "MISMATCH" not in out

    def test_cluster_paging_path(self, capsys):
        """Tiny D-group forces the CLI run through spill/fill."""
        assert main(["cluster", "--modules", "1", "--op", "mul",
                     "--n", "64", "--width", "4", "--cols", "16",
                     "--data-rows", "48", "--banks", "1"]) == 0
        out = capsys.readouterr().out
        assert "MISMATCH" not in out

    def test_serve_demo_runs_green(self, capsys):
        """The serving load generator verifies every request."""
        assert main(["serve-demo", "--requests", "24",
                     "--modules", "2", "--cols", "32",
                     "--max-request-lanes", "4"]) == 0
        out = capsys.readouterr().out
        assert "24 / 24" in out
        assert "lane occupancy" in out
        assert "tenant 'pro'" in out

    def test_serve_stream_runs_green(self, capsys):
        """Both scheduling modes verify every stream against the
        numpy fold, and the comparison table shows both columns."""
        assert main(["serve-stream", "--streams", "2", "--steps", "3",
                     "--lanes", "4"]) == 0
        out = capsys.readouterr().out
        assert "4 / 4" in out
        assert "continuous" in out and "drain-between-steps" in out
        assert "goodput" in out

    def test_stats_zero_traffic_scrape_is_schema_stable(self, capsys):
        """``stats --requests 0`` runs no traffic at all, yet the
        scrape still exposes every serve metric family (zero-valued),
        including the SLO and energy series."""
        assert main(["stats", "--requests", "0"]) == 0
        out = capsys.readouterr().out
        assert 'repro_serve_requests_total{state="submitted"} 0' in out
        assert "repro_serve_goodput 0" in out
        assert "repro_serve_deadline_shed_total 0" in out
        assert "repro_request_energy_joules_count 0" in out
        assert "repro_serve_request_latency_seconds_count 0" in out

    def test_stats_reports_slo_traffic(self, capsys):
        """The default stats workload carries deadlines: one request
        is intentionally lapsed (shed), the rest complete."""
        assert main(["stats", "--requests", "9"]) == 0
        out = capsys.readouterr().out
        assert 'repro_serve_requests_total{state="shed"} 1' in out
        assert 'repro_serve_slo_requests_total{state="on_time"} 2' \
            in out
        assert "repro_request_energy_joules_count 8" in out


class TestObservabilityCommands:
    def test_stats_watch_reprints_scrapes(self, capsys):
        assert main(["stats", "--requests", "6", "--watch", "0.01",
                     "--frames", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("# TYPE repro_serve_requests_total counter") == 3

    def test_top_steady_renders_dashboard(self, capsys):
        assert main(["top", "--scenario", "steady", "--plain",
                     "--frames", "2", "--interval", "0.01",
                     "--batch", "2"]) == 0
        out = capsys.readouterr().out
        assert "repro top · steady:steady" in out
        assert "serving   submitted" in out
        assert "pmu m" in out and "bank 0" in out
        assert "none firing (4 rules armed)" in out

    def test_top_collapse_fires_and_resolves_goodput_alert(self, capsys):
        """The acceptance scenario: a synthetic goodput collapse fires
        a burn-rate alert on screen and recovery resolves it."""
        assert main(["top", "--scenario", "collapse", "--plain",
                     "--frames", "12", "--interval", "0.01",
                     "--batch", "2"]) == 0
        out = capsys.readouterr().out
        assert "ALERT FIRING  goodput_floor" in out
        assert "[FIRING] goodput_floor" in out
        assert "[RESOLVED] goodput_floor" in out

    def test_serve_cluster_postmortem_dump(self, capsys, tmp_path):
        import json
        path = tmp_path / "postmortem.json"
        assert main(["serve-cluster", "--replicas", "2", "--requests",
                     "6", "--lanes", "8", "--kill-one",
                     "--postmortem", str(path)]) == 0
        assert str(path) in capsys.readouterr().out
        dump = json.loads(path.read_text())
        assert dump["reason"] == "serve-cluster drill"
        assert any(source.startswith("replica-")
                   for source in dump["segments"])
        assert any(e["kind"] == "replica.death" for e in dump["events"])
