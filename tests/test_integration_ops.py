"""End-to-end functional verification of every catalog operation.

For every operation x width x backend, the compiled µProgram is executed
on the bit-accurate simulator (randomized initial DRAM contents) through
the full facade — transposition in, bbop dispatch, multi-bank lockstep
execution, transposition out — and compared against the golden model on
inputs mixing edge cases with random values.  This is the reproduction's
master correctness gate.
"""

import numpy as np
import pytest

from repro.core.framework import Simdram, SimdramConfig
from repro.core.operations import PAPER_OPERATIONS, get_operation
from repro.dram.geometry import DramGeometry
from repro.util.bitops import to_signed, to_unsigned

from tests.conftest import edge_and_random_values

WIDTHS = (4, 8)
BACKENDS = ("simdram", "ambit")


def make_sim(seed=5):
    config = SimdramConfig(
        geometry=DramGeometry.sim_small(cols=32, data_rows=900, banks=2))
    return Simdram(config, seed=seed)


def run_op(sim, op_name, width, backend, rng):
    spec = get_operation(op_name)
    n = 60  # spans both banks
    raw_inputs = []
    arrays = []
    for operand_index, in_width in enumerate(spec.in_widths(width)):
        values = edge_and_random_values(rng, in_width, n)
        if op_name == "div" and operand_index == 1:
            values = np.maximum(values, 1)
        raw_inputs.append(to_unsigned(values, in_width))
        arrays.append(sim.array(values, in_width))
    out = sim.run(op_name, *arrays, backend=backend)
    got = out.to_numpy()
    expected = spec.golden(raw_inputs, width)
    if spec.signed:
        expected = to_signed(expected, spec.out_width(width))
    for array in arrays:
        array.free()
    out.free()
    return got, expected


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("op_name", PAPER_OPERATIONS)
def test_operation_end_to_end(op_name, width, backend):
    sim = make_sim()
    rng = np.random.default_rng(hash((op_name, width, backend)) % 2**32)
    got, expected = run_op(sim, op_name, width, backend, rng)
    assert np.array_equal(got, expected), (
        f"{op_name} w={width} backend={backend}: {got} != {expected}")


@pytest.mark.parametrize("op_name", ("add", "gt", "relu", "and_red"))
def test_cheap_operations_at_width_16(op_name):
    sim = make_sim(seed=9)
    rng = np.random.default_rng(123)
    got, expected = run_op(sim, op_name, 16, "simdram", rng)
    assert np.array_equal(got, expected)


def test_division_by_zero_end_to_end():
    """The hardware divider's div-by-zero contract survives end to end."""
    sim = make_sim(seed=11)
    a = sim.array(np.array([17, 0, 255, 3]), 8)
    b = sim.array(np.array([0, 0, 5, 0]), 8)
    out = sim.run("div", a, b)
    assert list(out.to_numpy()) == [255, 255, 51, 255]


def test_simdram_beats_ambit_on_command_counts():
    """The framework's core claim: MAJ/NOT lowers activation counts."""
    sim = make_sim()
    wins = 0
    for op_name in PAPER_OPERATIONS:
        simdram = sim.compile(op_name, 8, backend="simdram")
        ambit = sim.compile(op_name, 8, backend="ambit")
        assert simdram.n_commands <= ambit.n_commands, op_name
        if simdram.n_commands < ambit.n_commands:
            wins += 1
    # Strictly better on (at least) 15 of 16; relu may tie because its
    # single shared complement is re-materialized per TRA either way.
    assert wins >= 15


def test_chained_operations_share_memory():
    """Outputs are first-class operands for subsequent operations."""
    sim = make_sim(seed=21)
    a = sim.array(np.arange(40), 8)
    b = sim.array(np.full(40, 3), 8)
    total = sim.run("add", a, b)          # a + 3
    doubled = sim.run("add", total, total)  # 2a + 6
    capped = sim.run("min", doubled,
                     sim.array(np.full(40, 50), 8, signed=True))
    got = capped.to_numpy()
    expected = np.minimum(2 * np.arange(40) + 6, 50)
    assert np.array_equal(got, expected)


def test_multibank_striping_preserves_alignment():
    """Elements in the second bank compute exactly like the first."""
    sim = make_sim(seed=31)
    lanes = sim.module.lanes
    values = np.arange(lanes) % 251
    a = sim.array(values, 8)
    b = sim.array(np.flip(values), 8)
    out = sim.run("add", a, b)
    assert np.array_equal(out.to_numpy(),
                          (values + np.flip(values)) % 256)
