"""Row-lifecycle leak tests for the fused execution entry points.

Regression cover for the PR-1 temp-row-leak class, extended to the
fused paths: after any ``run_expr``/``map_expr`` — successful, rejected
up front (bad operand width, wrong feed names, mismatched lengths) or
failing mid-pipeline (injected executor fault, traced-vectorized
conflict) — the allocator's free-row count and the tracker's announced
object count must return exactly to their pre-call values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import expr as E
from repro.core.framework import Simdram, SimdramConfig
from repro.dram.geometry import DramGeometry
from repro.errors import ExecutionError, OperationError

GEOMETRY = DramGeometry.sim_small(cols=32, data_rows=512, banks=2)


def make_sim(**kwargs) -> Simdram:
    return Simdram(SimdramConfig(geometry=GEOMETRY), seed=17, **kwargs)


def mad_relu():
    return E.relu(E.add(E.mul(E.inp("x"), E.inp("w")), E.inp("b")))


class Balance:
    """Asserts allocator/tracker balance around a code span."""

    def __init__(self, sim: Simdram) -> None:
        self.sim = sim

    def __enter__(self) -> "Balance":
        self.free_before = self.sim._allocator.free_rows()
        self.tracked_before = len(self.sim.tracker)
        return self

    def __exit__(self, *exc) -> bool:
        assert self.sim._allocator.free_rows() == self.free_before, \
            "allocator rows leaked"
        assert len(self.sim.tracker) == self.tracked_before, \
            "announced vertical objects leaked"
        return False


class TestRunExprLifecycle:
    def test_successful_run_expr_balances_after_free(self):
        sim = make_sim()
        rng = np.random.default_rng(1)
        with Balance(sim):
            feeds = {name: sim.array(rng.integers(0, 256, 8), 8)
                     for name in ("x", "w", "b")}
            out = sim.run_expr(mad_relu(), feeds, width=8)
            out.free()
            for arr in feeds.values():
                arr.free()

    def test_bad_operand_width_releases_everything(self):
        """The issue's injected failure: one operand at the wrong bit
        width must reject the dispatch without consuming any rows."""
        sim = make_sim()
        sim.compile_expr(mad_relu(), 8)  # compile ok; execution must not
        feeds = {"x": sim.array([1, 2], 8), "w": sim.array([3, 4], 4),
                 "b": sim.array([5, 6], 8)}
        with Balance(sim):
            with pytest.raises(OperationError, match="must be 8-bit"):
                sim.run_expr(mad_relu(), feeds, width=8)
        for arr in feeds.values():
            arr.free()

    def test_wrong_feed_names_release_everything(self):
        sim = make_sim()
        arr = sim.array([1, 2, 3], 8)
        with Balance(sim):
            with pytest.raises(OperationError, match="missing"):
                sim.run_expr(mad_relu(), {"x": arr}, width=8)
            with pytest.raises(OperationError, match="unexpected"):
                sim.run_expr(E.relu(E.inp("x")),
                             {"x": arr, "bogus": arr}, width=8)
        arr.free()

    def test_mismatched_lengths_release_everything(self):
        sim = make_sim()
        a = sim.array([1, 2, 3], 8)
        b = sim.array([4, 5], 8)
        with Balance(sim):
            with pytest.raises(OperationError, match="lengths differ"):
                sim.run_expr(E.add(E.inp("x"), E.inp("y")),
                             {"x": a, "y": b}, width=8)
        a.free()
        b.free()

    def test_mid_pipeline_executor_fault_releases_temp_and_output(self):
        """A fault after the output/temp reservations (the historical
        PR-1 leak point) must still balance."""
        sim = make_sim()
        sim.compile_expr(mad_relu(), 8)
        rng = np.random.default_rng(2)
        feeds = {name: sim.array(rng.integers(0, 256, 4), 8)
                 for name in ("x", "w", "b")}

        def boom(*args, **kwargs):
            raise ExecutionError("injected mid-execution failure")

        with Balance(sim):
            original = sim.control.execute_on_module
            sim.control.execute_on_module = boom
            try:
                with pytest.raises(ExecutionError):
                    sim.run_expr(mad_relu(), feeds, width=8)
            finally:
                sim.control.execute_on_module = original
        for arr in feeds.values():
            arr.free()

    def test_traced_vectorized_conflict_releases_rows(self):
        """Same property through a real (non-monkeypatched) failure:
        tracing forbids the vectorized engine."""
        sim = make_sim(trace=True)
        arr = sim.array([1, 2, 3], 8)
        with Balance(sim):
            with pytest.raises(ExecutionError):
                sim.run_expr(E.relu(E.inp("x")), {"x": arr}, width=8,
                             engine="vectorized")
        arr.free()


class TestMapExprLifecycle:
    def test_successful_map_expr_balances(self):
        sim = make_sim()
        root = E.add(E.inp("x"), E.const(5))
        values = np.arange(sim.module.lanes * 2 + 3)
        with Balance(sim):
            got = sim.map_expr(root, {"x": values}, width=8)
        assert np.array_equal(got, (values + 5) % 256)

    def test_failing_map_expr_releases_all_blocks(self):
        sim = make_sim()
        root = E.add(E.inp("x"), E.inp("y"))
        sim.compile_expr(root, 8)

        def boom(*args, **kwargs):
            raise ExecutionError("injected mid-map failure")

        with Balance(sim):
            original = sim.control.execute_on_module
            sim.control.execute_on_module = boom
            try:
                with pytest.raises(ExecutionError):
                    sim.map_expr(root, {"x": np.arange(10),
                                        "y": np.arange(10)}, width=8)
            finally:
                sim.control.execute_on_module = original

    def test_empty_and_mismatched_feeds_release_everything(self):
        sim = make_sim()
        root = E.add(E.inp("x"), E.inp("y"))
        with Balance(sim):
            with pytest.raises(OperationError, match="at least one"):
                sim.map_expr(root, {"x": np.array([]),
                                    "y": np.array([])}, width=8)
            with pytest.raises(OperationError, match="lengths differ"):
                sim.map_expr(root, {"x": np.arange(4),
                                    "y": np.arange(5)}, width=8)

    def test_repeated_map_expr_does_not_fragment(self):
        """Batched reuse must not slowly consume the D-group: many
        calls leave the allocator exactly where it started."""
        sim = make_sim()
        root = E.relu(E.sub(E.inp("x"), E.const(9)))
        with Balance(sim):
            for length in (1, 7, sim.module.lanes, sim.module.lanes + 1):
                sim.map_expr(root, {"x": np.arange(length)}, width=8)
