"""Additional coverage: command traces, serialization errors, wide-width
compilation, and cross-layer consistency checks."""

import json

import numpy as np
import pytest

from repro.core.compiler import compile_cached
from repro.dram.commands import CommandTrace, TraceEntry
from repro.dram.geometry import DramGeometry
from repro.dram.rows import b_row, ctrl_row, data_row
from repro.dram.subarray import Subarray
from repro.dram.timing import DramTiming
from repro.errors import SchedulingError
from repro.uprog.program import MicroProgram


class TestCommandTrace:
    def test_trace_records_commands(self):
        sa = Subarray(DramGeometry.sim_small(cols=8, data_rows=4),
                      trace=True)
        sa.aap(ctrl_row(1), data_row(0))
        sa.aap(data_row(0), b_row(0))
        sa.aap(ctrl_row(1), b_row(1))
        sa.aap(ctrl_row(0), b_row(2))
        sa.ap(b_row(12))
        assert len(sa.trace) == 5
        kinds = [entry.kind for entry in sa.trace]
        assert kinds == ["AAP", "AAP", "AAP", "AAP", "AP"]

    def test_trace_str_readable(self):
        entry = TraceEntry("AAP", ctrl_row(0), data_row(3))
        assert str(entry) == "AAP(C0 -> D3)"
        assert str(TraceEntry("AP", b_row(12))) == "AP(B12(T0+T1+T2))"

    def test_trace_clear(self):
        trace = CommandTrace()
        trace.record(TraceEntry("AP", b_row(12)))
        trace.clear()
        assert len(trace) == 0

    def test_trace_off_by_default(self):
        sa = Subarray(DramGeometry.sim_small(cols=8, data_rows=4))
        assert sa.trace is None


class TestSerializationRobustness:
    def test_json_roundtrip_through_text(self):
        program = compile_cached("gt", 8)
        text = json.dumps(program.to_dict())
        clone = MicroProgram.from_dict(json.loads(text))
        assert clone.uops == program.uops
        assert clone.stats().n_aap == program.stats().n_aap

    def test_unknown_uop_kind_rejected(self):
        data = compile_cached("gt", 4).to_dict()
        data["uops"][0] = ["ZAP", ["ctl", 0]]
        with pytest.raises(SchedulingError):
            MicroProgram.from_dict(data)

    def test_installed_program_survives_reinstall_from_json(self):
        from repro.exec.control_unit import ControlUnit
        cu = ControlUnit()
        program = compile_cached("eq", 8)
        restored = MicroProgram.from_dict(program.to_dict())
        key = cu.install(restored)
        assert cu.lookup(key).n_commands == program.n_commands


class TestWideWidths:
    @pytest.mark.parametrize("op_name", ("add", "gt", "relu"))
    def test_width_32_compiles_and_scales(self, op_name):
        narrow = compile_cached(op_name, 8)
        wide = compile_cached(op_name, 32)
        assert wide.element_width == 32
        # Linear-cost ops grow roughly 4x from 8 to 32 bits.
        ratio = wide.n_commands / narrow.n_commands
        assert 2.0 < ratio < 6.0

    def test_mul_grows_quadratically(self):
        mul8 = compile_cached("mul", 8)
        mul16 = compile_cached("mul", 16)
        ratio = mul16.n_commands / mul8.n_commands
        assert 3.0 < ratio < 5.0  # ~4x for 2x the width

    def test_width_1_degenerate_ops(self):
        program = compile_cached("and_red", 1)
        assert program.output.width == 1
        assert program.n_commands >= 1


class TestCrossLayerConsistency:
    def test_program_latency_equals_stats_latency(self):
        timing = DramTiming.ddr4_2400()
        program = compile_cached("max", 8)
        assert program.latency_ns(timing) == pytest.approx(
            program.stats().latency_ns(timing))

    def test_executed_stats_match_static_stats(self, sim):
        """The simulator must issue exactly the commands the µProgram
        declares (per bank)."""
        a = sim.array(np.arange(10), 8)
        b = sim.array(np.arange(10), 8)
        sim.run("sub", a, b)
        program = sim.compile("sub", 8)
        banks = sim.config.geometry.banks
        assert sim.last_stats.n_aap == program.n_aap * banks
        assert sim.last_stats.n_ap == program.n_ap * banks

    def test_tra_count_at_most_ap_plus_aap(self):
        from repro.reliability.variation import count_tras
        program = compile_cached("min", 8)
        assert count_tras(program) <= program.n_commands

    def test_temp_rows_fit_small_subarray(self):
        """Every catalog op at 8 bits fits the paper's subarray."""
        from repro.core.operations import CATALOG
        geometry = DramGeometry.paper()
        for name in CATALOG:
            program = compile_cached(name, 8)
            assert program.rows_touched() <= geometry.data_rows, name
