"""End-to-end tests for the extension operations (beyond the paper's 16)
and the transposition-unit object tracker."""

import numpy as np
import pytest

from repro.core.operations import CATALOG, PAPER_OPERATIONS, get_operation
from repro.errors import AllocationError, OperationError
from repro.exec.tracker import ObjectTracker
from repro.isa.instructions import OPCODES

EXTENSION_OPS = ("ne", "lt", "le", "gt_u", "add_sat")


class TestExtensionCatalog:
    def test_extensions_registered(self):
        for name in EXTENSION_OPS:
            assert name in CATALOG
            assert name not in PAPER_OPERATIONS
            assert name in OPCODES

    def test_golden_models(self):
        a = np.array([5, 200, 200, 0])
        b = np.array([5, 100, 250, 1])
        assert list(get_operation("ne").golden([a, b], 8)) == [0, 1, 1, 1]
        # signed: 200 = -56, 100 = 100, 250 = -6.
        assert list(get_operation("lt").golden([a, b], 8)) == [0, 1, 1, 1]
        assert list(get_operation("le").golden([a, b], 8)) == [1, 1, 1, 1]
        assert list(get_operation("gt_u").golden([a, b], 8)) == \
            [0, 1, 0, 0]
        assert list(get_operation("add_sat").golden([a, b], 8)) == \
            [10, 255, 255, 1]


@pytest.mark.parametrize("op_name", EXTENSION_OPS)
@pytest.mark.parametrize("backend", ("simdram", "ambit"))
def test_extension_op_end_to_end(sim, op_name, backend):
    rng = np.random.default_rng(hash((op_name, backend)) % 2**32)
    spec = get_operation(op_name)
    a_host = rng.integers(0, 256, 50)
    b_host = rng.integers(0, 256, 50)
    a = sim.array(a_host, 8)
    b = sim.array(b_host, 8)
    out = sim.run(op_name, a, b, backend=backend)
    expected = spec.golden([a_host, b_host], 8)
    assert np.array_equal(out.to_numpy(), expected)
    a.free()
    b.free()
    out.free()


class TestObjectTracker:
    def test_register_lookup_release(self):
        tracker = ObjectTracker()
        obj = tracker.register(10, 100, 8)
        assert tracker.lookup(10) is obj
        assert tracker.is_tracked(10)
        assert list(obj.rows) == list(range(10, 18))
        tracker.release(10)
        assert not tracker.is_tracked(10)

    def test_double_register_rejected(self):
        tracker = ObjectTracker()
        tracker.register(0, 10, 8)
        with pytest.raises(AllocationError):
            tracker.register(0, 10, 8)

    def test_lookup_untracked_rejected(self):
        with pytest.raises(OperationError):
            ObjectTracker().lookup(99)

    def test_release_untracked_rejected(self):
        with pytest.raises(AllocationError):
            ObjectTracker().release(99)

    def test_capacity_enforced(self):
        tracker = ObjectTracker(capacity=2)
        tracker.register(0, 1, 1)
        tracker.register(1, 1, 1)
        with pytest.raises(AllocationError):
            tracker.register(2, 1, 1)

    def test_objects_sorted(self):
        tracker = ObjectTracker()
        tracker.register(20, 1, 4)
        tracker.register(5, 1, 4)
        assert [o.base_row for o in tracker.objects] == [5, 20]


class TestTrackerFrameworkIntegration:
    def test_arrays_announce_trsp_init(self, sim):
        before = len([i for i in sim.issued if i.op == "trsp_init"])
        array = sim.array([1, 2, 3], 8)
        inits = [i for i in sim.issued if i.op == "trsp_init"]
        assert len(inits) == before + 1
        assert inits[-1].dst == array.block.base
        assert sim.tracker.is_tracked(array.block.base)
        array.free()
        assert not sim.tracker.is_tracked(array.block.base)

    def test_run_rejects_freed_operand(self, sim):
        a = sim.array([1, 2], 8)
        b = sim.array([3, 4], 8)
        a.free()
        with pytest.raises(OperationError):
            sim.run("add", a, b)
